#!/usr/bin/env python3
"""Black-box smoke test of the serving endpoint (stdlib-only).

Boots ``python -m repro.serve --demo`` as a real subprocess, waits for
its "listening on" line, then drives N concurrent TCP clients through
the JSON-lines protocol: each client pings, runs the full-preference
demo skyline and a subset-preference variant, and verifies that

* every response is well-formed and ``ok``;
* all clients get identical rows per query;
* the subset query is eventually answered from the dominance-aware
  result cache (``cache_hit``) with the same rows as its cold run.

``--inject-faults`` additionally boots a second server on the process
backend with a seeded ``REPRO_FAULT_PLAN`` in its environment, so
process-pool workers really die mid-stage (``os._exit``), and asserts
the crash-then-recover contract: the faulted server's answers are
bit-identical to the clean server's, its stats report at least one
worker-crash pool recovery, and it keeps serving afterwards -- all
without a restart.

Usage: ``PYTHONPATH=src python tools/serve_smoke.py [--clients 8]
[--inject-faults]``
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys

FULL = ("SELECT * FROM hotels "
        "SKYLINE OF price MIN, rating MAX, distance MIN")
SUBSET = "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX"


async def request(host: str, port: int, payloads: list[dict]
                  ) -> list[dict]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        responses = []
        for payload in payloads:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
        return responses
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def drive(host: str, port: int, clients: int) -> None:
    async def one_client(index: int) -> "tuple[list, list, bool]":
        pong, full, subset = await request(host, port, [
            {"op": "ping"},
            {"op": "query", "sql": FULL, "tenant": f"tenant-{index}"},
            {"op": "query", "sql": SUBSET, "tenant": f"tenant-{index}"},
        ])
        assert pong.get("pong"), f"bad ping response: {pong}"
        for response in (full, subset):
            assert response.get("ok"), f"query failed: {response}"
        return (sorted(map(tuple, full["rows"])),
                sorted(map(tuple, subset["rows"])),
                bool(subset["cache_hit"]))

    results = await asyncio.gather(*(one_client(i)
                                     for i in range(clients)))
    full_answers = {tuple(map(tuple, r[0])) for r in results}
    subset_answers = {tuple(map(tuple, r[1])) for r in results}
    assert len(full_answers) == 1, \
        f"clients disagree on the full skyline: {full_answers}"
    assert len(subset_answers) == 1, \
        f"clients disagree on the subset skyline: {subset_answers}"
    assert any(r[2] for r in results), \
        "no client was served the subset query from the result cache"

    (stats,) = await request(host, port, [{"op": "stats"}])
    cache = stats["service"]["result_cache"]
    assert cache["stores"] >= 1 and cache["refilter_hits"] >= 1, \
        f"unexpected cache counters: {cache}"
    print(f"serve smoke OK: {clients} clients, "
          f"{len(next(iter(full_answers)))} full-skyline rows, "
          f"cache {cache}")


def boot(extra_args: "list[str]", extra_env: "dict | None" = None
         ) -> "tuple[subprocess.Popen, str, int]":
    """Start ``python -m repro.serve`` and wait for its bound address."""
    env = os.environ.copy()
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--demo", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    if not match:
        proc.terminate()
        raise SystemExit(f"server did not start: {line!r}")
    return proc, match.group(1), int(match.group(2))


async def drive_faulted(clean: "tuple[str, int]",
                        faulted: "tuple[str, int]") -> None:
    """Crash-then-recover: identical answers, recovery counted, and the
    faulted server stays up -- no restart."""
    for sql in (FULL, SUBSET):
        (reference,) = await request(*clean, [
            {"op": "query", "sql": sql}])
        (under_test,) = await request(*faulted, [
            {"op": "query", "sql": sql}])
        assert reference.get("ok"), f"clean server failed: {reference}"
        assert under_test.get("ok"), \
            f"faulted server failed: {under_test}"
        assert sorted(map(tuple, reference["rows"])) == \
            sorted(map(tuple, under_test["rows"])), \
            f"faulted server's rows differ for {sql!r}"

    (stats,) = await request(*faulted, [{"op": "stats"}])
    faults = stats["service"]["faults"]
    assert faults["crash_recoveries"] >= 1, \
        f"no worker-crash recovery was exercised: {faults}"
    assert faults["retries"] >= 1, f"no task retries recorded: {faults}"

    # The pool was rebuilt in place: the same server instance keeps
    # answering queries.
    (again,) = await request(*faulted, [{"op": "query", "sql": FULL}])
    assert again.get("ok"), f"faulted server died after recovery: {again}"
    print(f"fault-injection smoke OK: identical answers, "
          f"{faults['crash_recoveries']} pool recoveries, "
          f"{faults['retries']} task retries")


def run_fault_injection(timeout: float, crash_p: float, seed: int) -> None:
    """Boot clean + faulted servers (process backend) and compare."""
    shape = ["--backend", "process", "--workers", "2",
             "--partitions", "6", "--demo-rows", "1500"]
    clean_proc, clean_host, clean_port = boot(shape)
    faulted_proc, faulted_host, faulted_port = boot(
        shape, {"REPRO_FAULT_PLAN": f"seed={seed},crash_p={crash_p}"})
    try:
        asyncio.run(asyncio.wait_for(
            drive_faulted((clean_host, clean_port),
                          (faulted_host, faulted_port)), timeout))
    finally:
        for proc in (clean_proc, faulted_proc):
            proc.terminate()
            proc.wait(timeout=10)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--inject-faults", action="store_true",
                        help="also run the crash-then-recover black-box "
                             "check on the process backend")
    parser.add_argument("--crash-p", type=float, default=0.2,
                        help="injected per-task crash probability for "
                             "--inject-faults")
    parser.add_argument("--fault-seed", type=int, default=11,
                        help="fault-plan seed for --inject-faults")
    args = parser.parse_args(argv)

    proc, host, port = boot([])
    try:
        asyncio.run(asyncio.wait_for(
            drive(host, port, args.clients), args.timeout))
    finally:
        proc.terminate()
        proc.wait(timeout=10)
    if args.inject_faults:
        run_fault_injection(max(args.timeout, 60.0), args.crash_p,
                            args.fault_seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
