#!/usr/bin/env python3
"""Black-box smoke test of the serving endpoint (stdlib-only).

Boots ``python -m repro.serve --demo`` as a real subprocess, waits for
its "listening on" line, then drives N concurrent TCP clients through
the JSON-lines protocol: each client pings, runs the full-preference
demo skyline and a subset-preference variant, and verifies that

* every response is well-formed and ``ok``;
* all clients get identical rows per query;
* the subset query is eventually answered from the dominance-aware
  result cache (``cache_hit``) with the same rows as its cold run.

Usage: ``PYTHONPATH=src python tools/serve_smoke.py [--clients 8]``
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys

FULL = ("SELECT * FROM hotels "
        "SKYLINE OF price MIN, rating MAX, distance MIN")
SUBSET = "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX"


async def request(host: str, port: int, payloads: list[dict]
                  ) -> list[dict]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        responses = []
        for payload in payloads:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
        return responses
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def drive(host: str, port: int, clients: int) -> None:
    async def one_client(index: int) -> "tuple[list, list, bool]":
        pong, full, subset = await request(host, port, [
            {"op": "ping"},
            {"op": "query", "sql": FULL, "tenant": f"tenant-{index}"},
            {"op": "query", "sql": SUBSET, "tenant": f"tenant-{index}"},
        ])
        assert pong.get("pong"), f"bad ping response: {pong}"
        for response in (full, subset):
            assert response.get("ok"), f"query failed: {response}"
        return (sorted(map(tuple, full["rows"])),
                sorted(map(tuple, subset["rows"])),
                bool(subset["cache_hit"]))

    results = await asyncio.gather(*(one_client(i)
                                     for i in range(clients)))
    full_answers = {tuple(map(tuple, r[0])) for r in results}
    subset_answers = {tuple(map(tuple, r[1])) for r in results}
    assert len(full_answers) == 1, \
        f"clients disagree on the full skyline: {full_answers}"
    assert len(subset_answers) == 1, \
        f"clients disagree on the subset skyline: {subset_answers}"
    assert any(r[2] for r in results), \
        "no client was served the subset query from the result cache"

    (stats,) = await request(host, port, [{"op": "stats"}])
    cache = stats["service"]["result_cache"]
    assert cache["stores"] >= 1 and cache["refilter_hits"] >= 1, \
        f"unexpected cache counters: {cache}"
    print(f"serve smoke OK: {clients} clients, "
          f"{len(next(iter(full_answers)))} full-skyline rows, "
          f"cache {cache}")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--demo", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=os.environ.copy())
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if not match:
            raise SystemExit(f"server did not start: {line!r}")
        host, port = match.group(1), int(match.group(2))
        asyncio.run(asyncio.wait_for(
            drive(host, port, args.clients), args.timeout))
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
