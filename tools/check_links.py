#!/usr/bin/env python3
"""Markdown link checker (offline, stdlib-only).

Usage: ``python tools/check_links.py README.md docs [more paths...]``

Checks every ``[text](target)`` link in the given markdown files (or
all ``*.md`` under given directories):

* relative file targets must exist on disk (``path#anchor`` also
  verifies the anchor against the target file's headings);
* bare ``#anchor`` targets must match a heading of the same file;
* ``http(s)://`` targets are skipped (no network in CI), as are
  GitHub-relative targets escaping the repository (``../../actions/...``
  badge links).

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style slug of a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_in(path: pathlib.Path) -> set[str]:
    return {anchor_of(h) for h in HEADING.findall(
        path.read_text(encoding="utf-8"))}


def check_file(path: pathlib.Path, repo_root: pathlib.Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("../"):
            # GitHub-relative (e.g. CI badge) -- escapes the checkout.
            continue
        base, _, anchor = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            try:
                resolved.relative_to(repo_root)
            except ValueError:
                continue  # outside the repository: not checkable
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
            if anchor and resolved.suffix == ".md" and \
                    anchor_of(anchor) not in anchors_in(resolved):
                errors.append(f"{path}: missing anchor -> {target}")
        elif anchor:
            if anchor_of(anchor) not in anchors_in(path):
                errors.append(f"{path}: missing anchor -> #{anchor}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    repo_root = pathlib.Path.cwd().resolve()
    files: list[pathlib.Path] = []
    for arg in argv:
        path = pathlib.Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
