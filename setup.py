"""Legacy setup shim.

Allows ``pip install -e .`` in offline environments whose setuptools
lacks PEP-517 editable-wheel support; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
