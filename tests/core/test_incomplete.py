"""Incomplete-data skyline computation (Section 5.7, Appendix A)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BoundDimension, DimensionKind, DominanceStats,
                        dominates_incomplete, flagged_global_skyline,
                        gulzar_global_skyline, local_skylines_incomplete,
                        partition_by_null_bitmap)
from tests.conftest import skyline_oracle

DIMS3 = [BoundDimension(i, DimensionKind.MIN) for i in range(3)]
DIMS2 = [BoundDimension(i, DimensionKind.MIN) for i in range(2)]

maybe_int = st.one_of(st.none(), st.integers(0, 6))
rows_with_nulls = st.lists(st.tuples(maybe_int, maybe_int, maybe_int),
                           max_size=40)

# The cyclic counterexample of Section 3 / Appendix A.
CYCLE_A = (1, None, 10)
CYCLE_B = (3, 2, None)
CYCLE_C = (None, 5, 3)


class TestBitmapPartitioning:
    def test_rows_grouped_by_null_pattern(self):
        rows = [(1, 2, 3), (4, 5, 6), (None, 1, 1), (None, 2, 2),
                (1, None, None)]
        partitions = partition_by_null_bitmap(rows, DIMS3)
        assert sorted(partitions.keys()) == [0b000, 0b001, 0b110]
        assert partitions[0b000] == [(1, 2, 3), (4, 5, 6)]
        assert partitions[0b001] == [(None, 1, 1), (None, 2, 2)]
        assert partitions[0b110] == [(1, None, None)]

    def test_counterexample_tuples_land_in_distinct_partitions(self):
        partitions = partition_by_null_bitmap([CYCLE_A, CYCLE_B, CYCLE_C],
                                              DIMS3)
        assert len(partitions) == 3
        assert all(len(p) == 1 for p in partitions.values())

    @given(rows_with_nulls)
    @settings(max_examples=50, deadline=None)
    def test_partitioning_is_lossless(self, rows):
        partitions = partition_by_null_bitmap(rows, DIMS3)
        recovered = [row for p in partitions.values() for row in p]
        assert sorted(recovered, key=repr) == sorted(rows, key=repr)


class TestLocalSkylines:
    def test_dominance_detected_within_partition(self):
        rows = [(None, 1, 1), (None, 2, 2)]
        assert local_skylines_incomplete(rows, DIMS3) == [(None, 1, 1)]

    def test_no_elimination_across_partitions(self):
        # a dominates b but they live in different bitmap partitions, so
        # the local stage must keep both.
        result = local_skylines_incomplete([CYCLE_A, CYCLE_B], DIMS3)
        assert sorted(result, key=repr) == sorted([CYCLE_A, CYCLE_B],
                                                  key=repr)

    def test_partition_sizes_recorded(self):
        stats = DominanceStats()
        local_skylines_incomplete([CYCLE_A, CYCLE_B, CYCLE_C], DIMS3,
                                  stats=stats)
        assert sorted(stats.partition_sizes) == [1, 1, 1]


class TestFlaggedGlobalSkyline:
    def test_cycle_yields_empty_skyline(self):
        # Every tuple is dominated by another: the correct result is {}.
        result = flagged_global_skyline([CYCLE_A, CYCLE_B, CYCLE_C], DIMS3)
        assert result == []

    def test_complete_rows_behave_classically(self):
        rows = [(1, 1, 1), (2, 2, 2), (0, 3, 3)]
        result = flagged_global_skyline(rows, DIMS3)
        assert sorted(result) == [(0, 3, 3), (1, 1, 1)]

    def test_dominated_witness_still_eliminates(self):
        # q is dominated by r, but q is the only witness against p:
        # deleting q before it eliminates p would be wrong.
        r = (1, None)     # r ≺ q on dim 0
        q = (2, 1)        # q ≺ p on both dims
        p = (3, 2)
        result = flagged_global_skyline([p, q, r], DIMS2)
        assert sorted(result, key=repr) == sorted([r], key=repr)

    def test_distinct_deduplicates_on_dimensions(self):
        rows = [(1, 1, "x"), (1, 1, "y")]
        dims = DIMS2
        result = flagged_global_skyline(rows, dims, distinct=True)
        assert len(result) == 1

    @given(rows_with_nulls)
    @settings(max_examples=100, deadline=None)
    def test_matches_definition_oracle(self, rows):
        result = flagged_global_skyline(rows, DIMS3)
        expected = skyline_oracle(rows, DIMS3, complete=False)
        assert sorted(result, key=repr) == sorted(expected, key=repr)


class TestLemma51:
    """Lemma 5.1: local bitmap skylines preserve the global skyline."""

    @given(rows_with_nulls)
    @settings(max_examples=100, deadline=None)
    def test_pipeline_equals_direct_global(self, rows):
        local = local_skylines_incomplete(rows, DIMS3)
        via_pipeline = flagged_global_skyline(local, DIMS3)
        direct = skyline_oracle(rows, DIMS3, complete=False)
        assert sorted(via_pipeline, key=repr) == sorted(direct, key=repr)

    @given(rows_with_nulls)
    @settings(max_examples=60, deadline=None)
    def test_every_eliminated_tuple_has_surviving_dominator(self, rows):
        local = local_skylines_incomplete(rows, DIMS3)
        local_set = {id(r) for r in local}
        for p in rows:
            in_global = not any(
                dominates_incomplete(q, p, DIMS3) for q in rows)
            if in_global:
                continue
            # Lemma 5.1: p is either gone locally or dominated by a
            # member of the local union.
            if id(p) in local_set or p in local:
                assert any(dominates_incomplete(q, p, DIMS3)
                           for q in local)


class TestGulzarCounterexample:
    """Appendix A: the algorithm of [20] is incorrect under cycles."""

    def test_returns_wrong_nonempty_skyline_on_cycle(self):
        clusters = [[CYCLE_A], [CYCLE_B], [CYCLE_C]]
        result = gulzar_global_skyline(clusters, DIMS3)
        # The buggy algorithm keeps c although c is dominated by b.
        assert result == [CYCLE_C]
        # Whereas the correct algorithm returns the empty skyline.
        assert flagged_global_skyline(
            [CYCLE_A, CYCLE_B, CYCLE_C], DIMS3) == []

    def test_agrees_with_correct_algorithm_without_cycles(self):
        clusters = [[(1, 1, 1)], [(2, 2, 2), (0, 3, 3)]]
        rows = [row for cluster in clusters for row in cluster]
        assert sorted(gulzar_global_skyline(clusters, DIMS3)) == \
            sorted(flagged_global_skyline(rows, DIMS3))
