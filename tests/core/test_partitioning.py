"""Partitioning schemes (random / grid / angle, Section 7 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (angle_partitions, bnl_skyline, grid_partitions,
                        make_dimensions, partition_rows,
                        prune_dominated_cells, random_partitions)
from tests.conftest import skyline_oracle

MIN2 = make_dimensions([(0, "min"), (1, "min")])
MINMAX = make_dimensions([(0, "min"), (1, "max")])

rows_2d = st.lists(
    st.tuples(st.floats(0, 10, allow_nan=False),
              st.floats(0, 10, allow_nan=False)), max_size=50)


def union(partitions):
    if isinstance(partitions, dict):
        partitions = partitions.values()
    return [row for p in partitions for row in p]


class TestRandomPartitions:
    def test_round_robin(self):
        rows = [(i, i) for i in range(7)]
        parts = random_partitions(rows, 3)
        assert [len(p) for p in parts] == [3, 2, 2]

    def test_validates_count(self):
        with pytest.raises(ValueError):
            random_partitions([], 0)


class TestGridPartitions:
    def test_four_corners_land_in_distinct_cells(self):
        rows = [(0.0, 0.0), (9.9, 0.0), (0.0, 9.9), (9.9, 9.9)]
        cells = grid_partitions(rows, MIN2, cells_per_dimension=2)
        assert len(cells) == 4

    def test_constant_dimension_collapses(self):
        rows = [(1.0, 5.0), (2.0, 5.0)]
        cells = grid_partitions(rows, MIN2, cells_per_dimension=3)
        # Second dimension constant -> only the first splits.
        assert all(coord[1] == 0 for coord in cells)

    def test_orientation_of_max_dimensions(self):
        # For a MAX dimension, big values should map to low (good) cells.
        rows = [(1.0, 9.0), (1.0, 1.0)]
        cells = grid_partitions(rows, MINMAX, cells_per_dimension=2)
        good = [coord for coord, members in cells.items()
                if (1.0, 9.0) in members]
        bad = [coord for coord, members in cells.items()
               if (1.0, 1.0) in members]
        assert good[0][1] < bad[0][1]

    @given(rows_2d)
    @settings(max_examples=40, deadline=None)
    def test_lossless(self, rows):
        cells = grid_partitions(rows, MIN2, 3)
        assert sorted(union(cells)) == sorted(rows)


class TestCellPruning:
    def test_strictly_dominated_cell_removed(self):
        cells = {(0, 0): [(1.0, 1.0)], (2, 2): [(8.0, 8.0)],
                 (0, 2): [(1.0, 8.0)]}
        survivors = prune_dominated_cells(cells)
        assert (2, 2) not in survivors
        assert (0, 0) in survivors and (0, 2) in survivors

    def test_pruning_preserves_skyline(self):
        rows = [(float(i % 10), float(i // 10)) for i in range(100)]
        cells = grid_partitions(rows, MIN2, 4)
        pruned = prune_dominated_cells(cells)
        assert sorted(bnl_skyline(union(pruned), MIN2)) == \
            sorted(bnl_skyline(rows, MIN2))

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_pruning_never_loses_skyline_members(self, rows):
        cells = grid_partitions(rows, MIN2, 3)
        pruned = prune_dominated_cells(cells)
        expected = skyline_oracle(rows, MIN2)
        remaining = union(pruned)
        for member in expected:
            assert member in remaining

    def test_empty_grid(self):
        assert prune_dominated_cells({}) == {}

    def test_single_cell_survives(self):
        cells = {(3, 3): [(9.0, 9.0)]}
        assert prune_dominated_cells(cells) == cells

    def test_all_cells_dominated_by_best_corner(self):
        # A diagonal chain: (0,0) strictly dominates every other cell,
        # so only it survives.
        cells = {(i, i): [(float(i), float(i))] for i in range(4)}
        survivors = prune_dominated_cells(cells)
        assert list(survivors) == [(0, 0)]

    def test_incomparable_cells_all_survive(self):
        # Anti-diagonal cells never strictly dominate each other.
        cells = {(0, 2): [(0.0, 8.0)], (1, 1): [(4.0, 4.0)],
                 (2, 0): [(8.0, 0.0)]}
        assert prune_dominated_cells(cells) == cells

    def test_mismatched_coordinate_lengths_never_dominate(self):
        cells = {(0,): [(1.0,)], (1, 1): [(2.0, 2.0)]}
        assert prune_dominated_cells(cells) == cells

    def test_equal_cells_do_not_self_dominate(self):
        # Equality on every coordinate is not strict dominance.
        cells = {(1, 1): [(2.0, 2.0)]}
        assert prune_dominated_cells(cells) == cells

    def test_vectorized_false_forces_scalar_pruning(self, monkeypatch):
        # Regression: a vectorized=False session pins the scalar kernels
        # everywhere -- including cell pruning on grids large enough to
        # dispatch to NumPy.
        import repro.core.vectorized as V

        def boom(cells):
            raise AssertionError("NumPy pruning ran despite "
                                 "vectorized=False")

        monkeypatch.setattr(V, "prune_dominated_cells_vec", boom)
        cells = {(i, j): [(float(i), float(j))]
                 for i in range(8) for j in range(8)}
        survivors = prune_dominated_cells(cells, vectorized=False)
        # Only the axis cells survive (a cell dies iff another is
        # strictly smaller on *every* coordinate).
        assert set(survivors) == {(i, j) for i in range(8)
                                  for j in range(8) if i == 0 or j == 0}


class TestAnglePartitions:
    def test_partition_count_respected(self):
        rows = [(float(i), float(50 - i)) for i in range(50)]
        parts = angle_partitions(rows, MIN2, 5)
        assert len(parts) == 5
        assert sorted(union(parts)) == sorted(rows)

    def test_falls_back_on_one_dimension(self):
        rows = [(1.0,), (2.0,)]
        dims = make_dimensions([(0, "min")])
        parts = angle_partitions(rows, dims, 2)
        assert sorted(union(parts)) == sorted(rows)

    def test_anticorrelated_data_spreads_over_partitions(self):
        # Anti-correlated band: angles vary, so several partitions fill.
        rows = [(float(i), float(100 - i)) for i in range(100)]
        parts = angle_partitions(rows, MIN2, 4)
        non_empty = sum(1 for p in parts if p)
        assert non_empty >= 3


class TestPartitionRowsFrontDoor:
    @pytest.mark.parametrize("scheme", ["random", "grid", "angle"])
    @given(rows=rows_2d)
    @settings(max_examples=25, deadline=None)
    def test_local_global_pipeline_correct(self, scheme, rows):
        partitions = partition_rows(rows, MIN2, scheme, 4,
                                    prune_cells=(scheme == "grid"))
        local_union = []
        for partition in partitions:
            local_union.extend(bnl_skyline(partition, MIN2))
        result = bnl_skyline(local_union, MIN2)
        assert sorted(result) == sorted(skyline_oracle(rows, MIN2))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            partition_rows([], MIN2, "hexagonal", 2)


class TestPartitionIndices:
    """The index-returning twin used by the batch-native shuffle: row
    placement must be provably identical to partition_rows."""

    @pytest.mark.parametrize("scheme", ["random", "grid", "angle"])
    @given(rows=rows_2d)
    @settings(max_examples=25, deadline=None)
    def test_placement_matches_partition_rows(self, scheme, rows):
        from repro.core.partitioning import partition_indices
        expected = partition_rows(rows, MIN2, scheme, 4)
        index_lists = partition_indices(rows, MIN2, scheme, 4)
        rebuilt = [[tuple(rows[i]) for i in part] for part in index_lists]
        assert rebuilt == [[tuple(r) for r in part] for part in expected]

    def test_indices_form_a_permutation(self):
        from repro.core.partitioning import partition_indices
        rows = [(float(i % 5), float(i % 3)) for i in range(30)]
        index_lists = partition_indices(rows, MIN2, "grid", 4)
        flat = sorted(i for part in index_lists for i in part)
        assert flat == list(range(len(rows)))

    def test_empty_input(self):
        from repro.core.partitioning import partition_indices
        assert all(part == [] for part in
                   partition_indices([], MIN2, "random", 3))
