"""The four evaluated algorithm strategies (Section 6.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (Algorithm, BoundDimension, DimensionKind,
                        distributed_complete, distributed_incomplete,
                        make_dimensions, non_distributed_complete,
                        reference, sfs_complete, skyline)
from tests.conftest import skyline_oracle

MIN2 = make_dimensions([(0, "min"), (1, "min")])
MINMAX = make_dimensions([(0, "min"), (1, "max")])

rows_2d = st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                   max_size=60)
maybe_int = st.one_of(st.none(), st.integers(0, 6))
rows_with_nulls = st.lists(st.tuples(maybe_int, maybe_int), max_size=40)


def _partition(rows, k):
    return [rows[i::k] for i in range(k)] if rows else [[]]


class TestMakeDimensions:
    def test_builds_bound_dimensions(self):
        dims = make_dimensions([(3, "min"), (1, DimensionKind.MAX)])
        assert dims[0] == BoundDimension(3, DimensionKind.MIN)
        assert dims[1] == BoundDimension(1, DimensionKind.MAX)


class TestAlgorithmEnum:
    def test_of_by_value_and_name(self):
        assert Algorithm.of("reference") is Algorithm.REFERENCE
        assert Algorithm.of("DISTRIBUTED_COMPLETE") is \
            Algorithm.DISTRIBUTED_COMPLETE
        assert Algorithm.of(Algorithm.REFERENCE) is Algorithm.REFERENCE

    def test_of_rejects_unknown(self):
        with pytest.raises(ValueError):
            Algorithm.of("quantum")


class TestCompleteAlgorithmsAgree:
    @given(rows_2d, st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_all_complete_strategies_match_oracle(self, rows, k):
        partitions = _partition(rows, k)
        expected = sorted(skyline_oracle(rows, MIN2))
        assert sorted(distributed_complete(partitions, MIN2)) == expected
        assert sorted(non_distributed_complete(partitions, MIN2)) == \
            expected
        assert sorted(reference(partitions, MIN2)) == expected
        assert sorted(sfs_complete(partitions, MIN2)) == expected

    @given(rows_2d, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_incomplete_algorithm_correct_on_complete_data(self, rows, k):
        # Section 5.7: the incomplete algorithm is also correct (if slow)
        # on complete data.
        partitions = _partition(rows, k)
        assert sorted(distributed_incomplete(partitions, MIN2)) == \
            sorted(skyline_oracle(rows, MIN2))

    @given(rows_2d)
    @settings(max_examples=50, deadline=None)
    def test_partitioning_does_not_change_result(self, rows):
        one = distributed_complete(_partition(rows, 1), MIN2)
        many = distributed_complete(_partition(rows, 7), MIN2)
        assert sorted(one) == sorted(many)


class TestIncompleteAlgorithm:
    @given(rows_with_nulls, st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_matches_incomplete_oracle(self, rows, k):
        partitions = _partition(rows, k)
        result = distributed_incomplete(partitions, MIN2)
        expected = skyline_oracle(rows, MIN2, complete=False)
        assert sorted(result, key=repr) == sorted(expected, key=repr)

    def test_complete_data_degenerates_to_single_partition(self):
        # With no nulls there is exactly one bitmap partition, so the
        # local stage cannot parallelize (Section 5.7's warning).
        from repro.core import partition_by_null_bitmap
        rows = [(1, 2), (3, 4), (5, 6)]
        assert len(partition_by_null_bitmap(rows, MIN2)) == 1


class TestReference:
    def test_incomplete_mode_uses_null_aware_dominance(self):
        rows = [(1, None), (2, 5)]
        result = reference([rows], MIN2, complete=False)
        assert result == [(1, None)]

    def test_distinct_deduplicates(self):
        rows = [(1, 1, "a"), (1, 1, "b")]
        assert len(reference([rows], MIN2, distinct=True)) == 1


class TestSkylineFrontDoor:
    def test_accepts_algorithm_names(self):
        rows = [(2, 2), (1, 1), (1, 3)]
        for name in ("distributed complete", "non-distributed complete",
                     "distributed incomplete", "reference"):
            assert sorted(skyline(rows, MIN2, algorithm=name)) == [(1, 1)]

    def test_num_partitions_validation(self):
        with pytest.raises(ValueError):
            skyline([(1, 1)], MIN2, num_partitions=0)

    def test_minmax_example(self):
        hotels = [(120.0, 4.5), (90.0, 4.0), (150.0, 3.0), (80.0, 3.5)]
        result = skyline(hotels, MINMAX, num_partitions=2)
        assert sorted(result) == [(80.0, 3.5), (90.0, 4.0), (120.0, 4.5)]

    @given(rows_2d, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle_for_all_strategies(self, rows, k):
        expected = sorted(skyline_oracle(rows, MIN2))
        for algorithm in Algorithm:
            result = skyline(rows, MIN2, algorithm=algorithm,
                             num_partitions=k)
            assert sorted(result) == expected
