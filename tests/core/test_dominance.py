"""Dominance semantics (Definition 3.1 and the incomplete variant)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (BoundDimension, DimensionKind, DominanceStats,
                        compare, dominates, dominates_incomplete,
                        equal_on_dimensions, has_null_dimension,
                        null_bitmap)

MIN2 = [BoundDimension(0, DimensionKind.MIN),
        BoundDimension(1, DimensionKind.MIN)]
MINMAX = [BoundDimension(0, DimensionKind.MIN),
          BoundDimension(1, DimensionKind.MAX)]


class TestDimensionKind:
    def test_of_accepts_strings_case_insensitively(self):
        assert DimensionKind.of("min") is DimensionKind.MIN
        assert DimensionKind.of("MAX") is DimensionKind.MAX
        assert DimensionKind.of("Diff") is DimensionKind.DIFF

    def test_of_passes_through_members(self):
        assert DimensionKind.of(DimensionKind.MIN) is DimensionKind.MIN

    def test_of_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown skyline dimension"):
            DimensionKind.of("median")


class TestCompleteDominance:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1), (2, 2), MIN2)

    def test_equal_in_one_better_in_other(self):
        assert dominates((1, 1), (1, 2), MIN2)

    def test_equal_tuples_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2), MIN2)

    def test_incomparable_tuples(self):
        assert not dominates((1, 3), (2, 1), MIN2)
        assert not dominates((2, 1), (1, 3), MIN2)

    def test_max_direction(self):
        # Second dimension is MAX: higher is better.
        assert dominates((1, 5), (1, 4), MINMAX)
        assert not dominates((1, 4), (1, 5), MINMAX)

    def test_hotel_example(self):
        # price MIN, rating MAX (Figure 1 of the paper).
        cheap_good = (90.0, 4.5)
        pricey_bad = (120.0, 4.0)
        assert dominates(cheap_good, pricey_bad, MINMAX)
        assert not dominates(pricey_bad, cheap_good, MINMAX)

    def test_diff_dimension_blocks_dominance_when_unequal(self):
        dims = [BoundDimension(0, DimensionKind.MIN),
                BoundDimension(1, DimensionKind.DIFF)]
        assert not dominates((1, "red"), (2, "blue"), dims)
        assert dominates((1, "red"), (2, "red"), dims)

    def test_all_diff_dimensions_never_dominate(self):
        # With only DIFF dimensions there is no "strictly better".
        dims = [BoundDimension(0, DimensionKind.DIFF)]
        assert not dominates((1,), (1,), dims)
        assert not dominates((1,), (2,), dims)

    def test_short_circuits_on_worse_dimension(self):
        # No exception even though index 1 would be compared if reached:
        # (3,?) loses in dim 0 first.
        assert not dominates((3, 0), (1, 1), MIN2)

    def test_dimension_subset_only(self):
        # Dimensions outside the bound set are ignored (extra dims).
        dims = [BoundDimension(1, DimensionKind.MIN)]
        assert dominates(("zzz", 1), ("aaa", 2), dims)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=2, max_size=2))
    def test_antisymmetry(self, rows):
        r, s = rows
        assert not (dominates(r, s, MIN2) and dominates(s, r, MIN2))

    @given(st.tuples(st.integers(0, 5), st.integers(0, 5)),
           st.tuples(st.integers(0, 5), st.integers(0, 5)),
           st.tuples(st.integers(0, 5), st.integers(0, 5)))
    def test_transitivity_on_complete_data(self, a, b, c):
        if dominates(a, b, MIN2) and dominates(b, c, MIN2):
            assert dominates(a, c, MIN2)

    @given(st.tuples(st.integers(0, 5), st.integers(0, 5)))
    def test_irreflexive(self, a):
        assert not dominates(a, a, MIN2)


class TestIncompleteDominance:
    DIMS3 = [BoundDimension(i, DimensionKind.MIN) for i in range(3)]

    def test_comparison_restricted_to_common_non_null(self):
        # Section 3: compare only where both are non-null.
        assert dominates_incomplete((1, None), (2, 5), MIN2)
        assert not dominates_incomplete((2, None), (1, 5), MIN2)

    def test_no_common_dimensions_means_incomparable(self):
        assert not dominates_incomplete((1, None), (None, 5), MIN2)
        assert not dominates_incomplete((None, 5), (1, None), MIN2)

    def test_paper_cycle_example(self):
        # a ≺ b ≺ c ≺ a with all MIN (Section 3 / Appendix A).
        a = (1, None, 10)
        b = (3, 2, None)
        c = (None, 5, 3)
        assert dominates_incomplete(a, b, self.DIMS3)
        assert dominates_incomplete(b, c, self.DIMS3)
        assert dominates_incomplete(c, a, self.DIMS3)
        # And transitivity fails: a does not dominate c.
        assert not dominates_incomplete(a, c, self.DIMS3)

    def test_matches_complete_semantics_without_nulls(self):
        assert dominates_incomplete((1, 2), (2, 2), MIN2) == \
            dominates((1, 2), (2, 2), MIN2)
        assert dominates_incomplete((2, 1), (1, 2), MIN2) == \
            dominates((2, 1), (1, 2), MIN2)

    def test_diff_with_nulls_ignored(self):
        dims = [BoundDimension(0, DimensionKind.MIN),
                BoundDimension(1, DimensionKind.DIFF)]
        # DIFF dimension null on one side: restriction skips it.
        assert dominates_incomplete((1, None), (2, "x"), dims)
        assert not dominates_incomplete((1, "y"), (2, "x"), dims)

    @given(st.tuples(*[st.one_of(st.none(), st.integers(0, 4))] * 2),
           st.tuples(*[st.one_of(st.none(), st.integers(0, 4))] * 2))
    def test_antisymmetry_still_holds(self, r, s):
        assert not (dominates_incomplete(r, s, MIN2)
                    and dominates_incomplete(s, r, MIN2))


class TestCompare:
    def test_three_way_results(self):
        assert compare((1, 1), (2, 2), MIN2) == -1
        assert compare((2, 2), (1, 1), MIN2) == 1
        assert compare((1, 2), (2, 1), MIN2) == 0

    def test_incomplete_mode(self):
        assert compare((1, None), (2, 5), MIN2, complete=False) == -1


class TestNullBitmap:
    def test_bit_positions_follow_dimension_order(self):
        dims = [BoundDimension(2, DimensionKind.MIN),
                BoundDimension(0, DimensionKind.MAX)]
        # Bit 0 corresponds to dims[0] (row index 2).
        assert null_bitmap((1, 2, None), dims) == 0b01
        assert null_bitmap((None, 2, 3), dims) == 0b10
        assert null_bitmap((None, 2, None), dims) == 0b11
        assert null_bitmap((1, 2, 3), dims) == 0

    def test_has_null_dimension(self):
        assert has_null_dimension((None, 1), MIN2)
        assert not has_null_dimension((0, 1), MIN2)
        # Nulls outside the skyline dimensions do not count.
        dims = [BoundDimension(0, DimensionKind.MIN)]
        assert not has_null_dimension((0, None), dims)


class TestEqualOnDimensions:
    def test_equality_is_dimension_restricted(self):
        assert equal_on_dimensions((1, 2, "x"), (1, 2, "y"), MIN2)
        assert not equal_on_dimensions((1, 2), (1, 3), MIN2)


class TestDominanceStats:
    def test_note_window_keeps_maximum(self):
        stats = DominanceStats()
        stats.note_window(3)
        stats.note_window(1)
        assert stats.window_peak == 3

    def test_merge_accumulates(self):
        a = DominanceStats(comparisons=5, window_peak=2,
                           partition_sizes=[10])
        b = DominanceStats(comparisons=7, window_peak=4,
                           partition_sizes=[20])
        a.merge(b)
        assert a.comparisons == 12
        assert a.window_peak == 4
        assert a.partition_sizes == [10, 20]
