"""Block-Nested-Loop skyline (Section 5.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BoundDimension, DimensionKind, DominanceStats,
                        bnl_skyline, bnl_skyline_incremental, dominates)
from tests.conftest import skyline_oracle

MIN2 = [BoundDimension(0, DimensionKind.MIN),
        BoundDimension(1, DimensionKind.MIN)]
MINMAX = [BoundDimension(0, DimensionKind.MIN),
          BoundDimension(1, DimensionKind.MAX)]

rows_2d = st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   max_size=60)


class TestBnlBasics:
    def test_empty_input(self):
        assert bnl_skyline([], MIN2) == []

    def test_single_tuple(self):
        assert bnl_skyline([(1, 2)], MIN2) == [(1, 2)]

    def test_dominated_tuple_removed(self):
        assert bnl_skyline([(1, 1), (2, 2)], MIN2) == [(1, 1)]

    def test_dominator_arriving_late_evicts_window(self):
        assert bnl_skyline([(2, 2), (1, 1)], MIN2) == [(1, 1)]

    def test_incomparable_tuples_all_kept(self):
        rows = [(1, 3), (2, 2), (3, 1)]
        assert sorted(bnl_skyline(rows, MIN2)) == rows

    def test_duplicates_kept_without_distinct(self):
        rows = [(1, 1), (1, 1)]
        assert bnl_skyline(rows, MIN2) == rows

    def test_distinct_keeps_single_representative(self):
        rows = [(1, 1, "first"), (1, 1, "second")]
        result = bnl_skyline(rows, MIN2, distinct=True)
        assert result == [(1, 1, "first")]

    def test_distinct_still_removes_dominated(self):
        rows = [(2, 2), (1, 1), (1, 1)]
        assert bnl_skyline(rows, MIN2, distinct=True) == [(1, 1)]

    def test_minmax_directions(self):
        rows = [(90.0, 4.0), (120.0, 4.5), (150.0, 3.0), (80.0, 3.5)]
        result = set(bnl_skyline(rows, MINMAX))
        assert result == {(90.0, 4.0), (120.0, 4.5), (80.0, 3.5)}

    def test_stats_recorded(self):
        stats = DominanceStats()
        bnl_skyline([(1, 3), (2, 2), (3, 1), (4, 4)], MIN2, stats=stats)
        assert stats.comparisons > 0
        assert stats.window_peak == 3


class TestBnlAgainstOracle:
    @given(rows_2d)
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, rows):
        result = bnl_skyline(rows, MIN2)
        expected = skyline_oracle(rows, MIN2)
        assert sorted(result) == sorted(expected)

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_minmax_matches_brute_force(self, rows):
        result = bnl_skyline(rows, MINMAX)
        expected = skyline_oracle(rows, MINMAX)
        assert sorted(result) == sorted(expected)

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_result_is_subset_with_no_internal_dominance(self, rows):
        result = bnl_skyline(rows, MIN2)
        assert all(r in rows for r in result)
        for r in result:
            assert not any(dominates(s, r, MIN2) for s in result)

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, rows):
        once = bnl_skyline(rows, MIN2)
        twice = bnl_skyline(once, MIN2)
        assert sorted(once) == sorted(twice)

    @given(rows_2d, st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_input_order_invariant(self, rows, rng):
        shuffled = list(rows)
        rng.shuffle(shuffled)
        assert sorted(bnl_skyline(rows, MIN2)) == \
            sorted(bnl_skyline(shuffled, MIN2))


class TestIncrementalBnl:
    def test_streaming_matches_batch(self):
        rows = [(3, 3), (1, 4), (4, 1), (2, 2), (5, 5)]
        add, current = bnl_skyline_incremental(MIN2)
        for row in rows:
            add(row)
        assert sorted(current()) == sorted(bnl_skyline(rows, MIN2))

    def test_intermediate_window_is_prefix_skyline(self):
        rows = [(3, 3), (2, 2), (1, 1)]
        add, current = bnl_skyline_incremental(MIN2)
        add(rows[0])
        assert current() == [(3, 3)]
        add(rows[1])
        assert current() == [(2, 2)]
        add(rows[2])
        assert current() == [(1, 1)]

    def test_current_returns_copy(self):
        add, current = bnl_skyline_incremental(MIN2)
        add((1, 1))
        snapshot = current()
        snapshot.append((0, 0))
        assert current() == [(1, 1)]


class TestDeadlineCallback:
    def test_deadline_called_and_can_abort(self):
        calls = {"n": 0}

        def deadline():
            calls["n"] += 1
            if calls["n"] > 2:
                raise TimeoutError

        rows = [(i, 1000 - i) for i in range(2000)]
        with pytest.raises(TimeoutError):
            bnl_skyline(rows, MIN2, check_deadline=deadline)
        assert calls["n"] > 2
