"""Pairwise-merge kernels and the hierarchical merge driver.

The load-bearing invariant: merging local skylines pairwise (in any
tree shape, at any fan-in) must reproduce the flat
``bnl_skyline(concat(partials))`` output **bit-identically, order
included** -- the property the distributed tournament-tree global
phase rests on.  Property tests drive adversarial value ranges
(+/-inf, huge ties, duplicates); the NaN/None cases pin the
non-transitivity fallback.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BoundDimension, DimensionKind, bnl_skyline,
                        build_summaries, columnize, hierarchical_merge,
                        merge_round_sizes, merge_skylines,
                        merge_unsafe_reason, tree_shape,
                        vec_merge_skylines)
from repro.core.merge import (make_merge_counters, merge_partials_task,
                              reduce_group, summary_disjoint,
                              summary_dominates)
from repro.core.vectorized import numpy_available

MIN2 = [BoundDimension(0, DimensionKind.MIN),
        BoundDimension(1, DimensionKind.MIN)]
MINMAX = [BoundDimension(0, DimensionKind.MIN),
          BoundDimension(1, DimensionKind.MAX)]
MMD = [BoundDimension(0, DimensionKind.MIN),
       BoundDimension(1, DimensionKind.MAX),
       BoundDimension(2, DimensionKind.DIFF)]

#: Adversarial coordinates: ties, +/-inf, and values whose difference
#: underflows float precision.
coord = st.one_of(
    st.integers(0, 3),
    st.sampled_from([0.0, -0.0, 1e16, 1e16 + 1, float("inf"),
                     float("-inf")]),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)
rows_2d = st.lists(st.tuples(coord, coord), max_size=40)
partials_2d = st.lists(rows_2d, min_size=1, max_size=6)


def split(rows, pieces):
    """Deterministic consecutive split into ``pieces`` chunks."""
    size = max(1, -(-len(rows) // pieces)) if rows else 1
    return [rows[i:i + size] for i in range(0, len(rows), size)] or [[]]


def merged_via(partials, dims, distinct=False, **kwargs):
    locals_ = [bnl_skyline(p, dims, distinct=distinct) for p in partials]
    return hierarchical_merge(locals_, dims, distinct=distinct, **kwargs)


class TestMergeSkylines:
    def test_empty_sides(self):
        assert merge_skylines([], [], MIN2) == []
        assert merge_skylines([(1, 1)], [], MIN2) == [(1, 1)]
        assert merge_skylines([], [(1, 1)], MIN2) == [(1, 1)]

    def test_mutual_filter(self):
        # (0, 3) kills (1, 4); (2, 0) kills (3, 1); incomparables stay.
        out = merge_skylines([(0, 3), (3, 1)], [(1, 4), (2, 0)], MIN2)
        assert out == [(0, 3), (2, 0)]

    def test_order_is_left_survivors_then_right_survivors(self):
        out = merge_skylines([(1, 3), (3, 1)], [(2, 2)], MIN2)
        assert out == [(1, 3), (3, 1), (2, 2)]

    def test_duplicates_kept_without_distinct(self):
        assert merge_skylines([(1, 1)], [(1, 1)], MIN2) == \
            [(1, 1), (1, 1)]

    def test_distinct_drops_right_twin(self):
        # The incumbent (left) representative survives, matching BNL.
        out = merge_skylines([(1, 1, "L")], [(1, 1, "R")], MIN2,
                             distinct=True)
        assert out == [(1, 1, "L")]

    def test_diff_dimension_partitions_comparisons(self):
        left = [(1.0, 5.0, "a"), (9.0, 9.0, "b")]
        right = [(0.0, 9.0, "a"), (1.0, 1.0, "b")]
        out = merge_skylines(left, right, MMD)
        flat = bnl_skyline(left + right, MMD)
        assert sorted(out) == sorted(flat)

    @given(rows_2d, rows_2d)
    @settings(max_examples=120, deadline=None)
    def test_matches_flat_bnl_bit_identically(self, a, b):
        left = bnl_skyline(a, MIN2)
        right = bnl_skyline(b, MIN2)
        assert merge_skylines(left, right, MIN2) == \
            bnl_skyline(left + right, MIN2)

    @given(rows_2d, rows_2d)
    @settings(max_examples=120, deadline=None)
    def test_matches_flat_bnl_distinct(self, a, b):
        left = bnl_skyline(a, MIN2, distinct=True)
        right = bnl_skyline(b, MIN2, distinct=True)
        assert merge_skylines(left, right, MIN2, distinct=True) == \
            bnl_skyline(left + right, MIN2, distinct=True)

    @pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
    @given(rows_2d, rows_2d, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_vectorized_matches_scalar(self, a, b, distinct):
        left = bnl_skyline(a, MINMAX, distinct=distinct)
        right = bnl_skyline(b, MINMAX, distinct=distinct)
        assert vec_merge_skylines(left, right, MINMAX,
                                  distinct=distinct) == \
            merge_skylines(left, right, MINMAX, distinct=distinct)


class TestHierarchicalMergeProperties:
    @given(partials_2d, st.integers(2, 4), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_equals_flat_bnl_over_concatenation(self, partials, fan_in,
                                                distinct):
        """Order-invariance anchor: the tree output must equal the flat
        skyline of the partials concatenated *as given*."""
        out = merged_via(partials, MIN2, distinct=distinct,
                         fan_in=fan_in)
        flat = bnl_skyline([r for p in partials for r in p], MIN2,
                           distinct=distinct)
        assert out == flat

    @given(partials_2d, st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_associativity_fan_in_independent(self, partials, distinct):
        results = {
            tuple(merged_via(partials, MIN2, distinct=distinct,
                             fan_in=fan_in))
            for fan_in in (2, 3, 4)}
        assert len(results) == 1

    @given(rows_2d, st.integers(2, 5))
    @settings(max_examples=80, deadline=None)
    def test_partitioning_invariance(self, rows, pieces):
        """Same rows, any consecutive split -> same skyline set."""
        out = merged_via(split(rows, pieces), MIN2)
        assert sorted(out) == sorted(bnl_skyline(rows, MIN2))

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_idempotence_under_distinct(self, rows):
        once = bnl_skyline(rows, MIN2, distinct=True)
        assert hierarchical_merge([once, list(once)], MIN2,
                                  distinct=True) == once

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_self_merge_keeps_duplicates_without_distinct(self, rows):
        # Without DISTINCT, duplicates are skyline members: merging a
        # skyline with a copy of itself must keep both copies, exactly
        # as the flat BNL over the doubled input does.
        once = bnl_skyline(rows, MIN2)
        assert hierarchical_merge([once, list(once)], MIN2) == \
            bnl_skyline(once + once, MIN2)

    @given(partials_2d)
    @settings(max_examples=60, deadline=None)
    def test_summaries_do_not_change_answers(self, partials):
        with_s = merged_via(partials, MIN2, use_summaries=True)
        without = merged_via(partials, MIN2, use_summaries=False)
        assert with_s == without

    @pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
    @given(partials_2d, st.integers(2, 4), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_vectorized_driver_matches_flat(self, partials, fan_in,
                                            distinct):
        out = merged_via(partials, MINMAX, distinct=distinct,
                         fan_in=fan_in, vectorized=True)
        flat = bnl_skyline([r for p in partials for r in p], MINMAX,
                           distinct=distinct)
        assert out == flat

    def test_counters_record_tree(self):
        partials = [[(i, 10 - i)] for i in range(5)]
        counters = make_merge_counters()
        hierarchical_merge(partials, MIN2, fan_in=2, counters=counters)
        assert counters["rounds"] == len(merge_round_sizes(5, 2)) - 1
        assert counters["fallback"] is None


class TestNonTransitiveFallback:
    # dims = 2x MIN; t = (0, nan) dominates s = (1, 4); s dominates
    # a = (nan, 5); t does NOT dominate a.  Flat BNL over [t, a, s]
    # keeps [t, a] (s dies against t before it ever meets a); the
    # naive pairwise merge of A = [t, a] with B = [s] would drop a.
    NAN_A = [(0.0, float("nan")), (float("nan"), 5.0)]
    NAN_B = [(1.0, 4.0)]

    def test_counterexample_shows_naive_merge_is_wrong(self):
        flat = bnl_skyline(self.NAN_A + self.NAN_B, MIN2)
        assert flat == self.NAN_A
        assert merge_skylines(self.NAN_A, self.NAN_B, MIN2) != flat

    def test_nan_detected_and_fallback_taken(self):
        reason = merge_unsafe_reason([self.NAN_A, self.NAN_B], MIN2)
        assert reason is not None and "NaN" in reason
        counters = make_merge_counters()
        out = hierarchical_merge([self.NAN_A, self.NAN_B], MIN2,
                                 counters=counters)
        assert out == bnl_skyline(self.NAN_A + self.NAN_B, MIN2)
        assert counters["fallback"] == reason
        assert counters["rounds"] == 0

    def test_null_detected(self):
        partials = [[(1, None)], [(0, 2)]]
        reason = merge_unsafe_reason(partials, MIN2)
        assert reason is not None and "null" in reason

    def test_null_fallback_mirrors_flat_behaviour(self):
        # Complete-data dominance cannot compare None; the fallback
        # must surface the same error the flat path would, not a
        # silently wrong pairwise merge.
        partials = [[(1, None)], [(0, 2)]]
        with pytest.raises(TypeError):
            bnl_skyline([r for p in partials for r in p], MIN2)
        counters = make_merge_counters()
        with pytest.raises(TypeError):
            hierarchical_merge(partials, MIN2, counters=counters)
        assert counters["fallback"] == merge_unsafe_reason(partials, MIN2)

    def test_nan_in_diff_dimension_is_safe(self):
        partials = [[(1.0, 2.0, float("nan"))], [(0.0, 3.0, 1.0)]]
        assert merge_unsafe_reason(partials, MMD) is None


@pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
class TestSummaries:
    def blocks(self, *partials):
        return [columnize(list(p), MIN2) for p in partials]

    def test_disjoint_boxes_detected(self):
        a, b = self.blocks([(0.0, 0.0), (1.0, 1.0)],
                           [(5.0, 5.0), (6.0, 6.0)])
        sa, sb = build_summaries([a, b])
        # b's rows are strictly worse on every dimension: not disjoint
        # (a CAN dominate b) but a dominates b outright.
        assert not summary_disjoint(sa, sb)
        assert summary_dominates(sa, sb)
        assert not summary_dominates(sb, sa)

    def test_incomparable_bands_are_disjoint(self):
        a, b = self.blocks([(0.0, 10.0), (1.0, 11.0)],
                           [(10.0, 0.0), (11.0, 1.0)])
        sa, sb = build_summaries([a, b])
        assert summary_disjoint(sa, sb)

    def test_nan_rows_disable_summaries(self):
        a, b = self.blocks([(0.0, float("nan"))], [(1.0, 1.0)])
        assert build_summaries([a, b]) is None

    def test_reduce_group_drops_dominated_partial(self):
        rows_a = [(0.0, 0.0), (1.0, 1.0)]
        rows_b = [(5.0, 5.0), (6.0, 6.0)]
        sa, sb = build_summaries(self.blocks(rows_a, rows_b))
        counters = make_merge_counters()
        segments = reduce_group([rows_a, rows_b], [sa, sb], counters)
        assert segments == [rows_a]
        assert counters["short_circuits"] == 1

    def test_reduce_group_concatenates_disjoint_partials(self):
        rows_a = [(0.0, 10.0)]
        rows_b = [(10.0, 0.0)]
        sa, sb = build_summaries(self.blocks(rows_a, rows_b))
        counters = make_merge_counters()
        segments = reduce_group([rows_a, rows_b], [sa, sb], counters)
        assert segments == [rows_a + rows_b]
        assert counters["concat_merges"] == 1

    @given(partials_2d)
    @settings(max_examples=60, deadline=None)
    def test_shortcuts_never_change_the_answer(self, partials):
        locals_ = [bnl_skyline(p, MIN2) for p in partials]
        blocks = [columnize(p, MIN2) for p in locals_]
        summaries = build_summaries(blocks)
        if summaries is None:
            return
        segments = reduce_group(locals_, summaries)
        out, _, _ = merge_partials_task(segments, MIN2)
        flat = bnl_skyline([r for p in locals_ for r in p], MIN2)
        assert sorted(out) == sorted(flat)


class TestTreeShapes:
    def test_round_sizes(self):
        assert merge_round_sizes(10, 2) == [10, 5, 3, 2, 1]
        assert merge_round_sizes(40, 4) == [40, 10, 3, 1]
        assert merge_round_sizes(1, 2) == [1]

    def test_tree_shape_rendering(self):
        assert tree_shape(10, 2) == "10 -> 5 -> 3 -> 2 -> 1"

    def test_merge_task_reports_totals(self):
        out, total_in, comparisons = merge_partials_task(
            [[(1, 3)], [(2, 2)], [(3, 1)]], MIN2)
        assert sorted(out) == [(1, 3), (2, 2), (3, 1)]
        assert total_in == 3
        assert comparisons > 0


class TestMergeDeadline:
    def test_check_deadline_is_called(self):
        calls = []

        def check():
            calls.append(True)

        left = [(i, 1000 - i) for i in range(300)]
        right = [(i + 0.5, 1000 - i) for i in range(300)]
        merge_skylines(left, right, MIN2, check_deadline=check)
        assert calls

    def test_deadline_exception_propagates(self):
        def boom():
            raise TimeoutError("budget exceeded")

        left = [(i, 1000 - i) for i in range(300)]
        right = [(i + 0.5, 1000 - i) for i in range(300)]
        with pytest.raises(TimeoutError):
            merge_skylines(left, right, MIN2, check_deadline=boom)
