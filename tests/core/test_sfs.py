"""Sort-Filter-Skyline (the future-work algorithm family, Section 7)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BoundDimension, DimensionKind, bnl_skyline,
                        dominates, monotone_score, sfs_skyline)

MIN2 = [BoundDimension(0, DimensionKind.MIN),
        BoundDimension(1, DimensionKind.MIN)]
MINMAX = [BoundDimension(0, DimensionKind.MIN),
          BoundDimension(1, DimensionKind.MAX)]

rows_2d = st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   max_size=50)


class TestMonotoneScore:
    @given(st.tuples(st.integers(0, 9), st.integers(0, 9)),
           st.tuples(st.integers(0, 9), st.integers(0, 9)))
    def test_dominance_implies_smaller_score(self, r, s):
        if dominates(r, s, MIN2):
            assert monotone_score(r, MIN2) < monotone_score(s, MIN2)

    @given(st.tuples(st.integers(0, 9), st.integers(0, 9)),
           st.tuples(st.integers(0, 9), st.integers(0, 9)))
    def test_monotone_under_mixed_directions(self, r, s):
        if dominates(r, s, MINMAX):
            assert monotone_score(r, MINMAX) < monotone_score(s, MINMAX)

    def test_diff_dimensions_do_not_contribute(self):
        dims = [BoundDimension(0, DimensionKind.MIN),
                BoundDimension(1, DimensionKind.DIFF)]
        assert monotone_score((2, 100), dims) == \
            monotone_score((2, -100), dims)


class TestSfsSkyline:
    def test_simple_case(self):
        rows = [(2, 2), (1, 1), (3, 3)]
        assert sfs_skyline(rows, MIN2) == [(1, 1)]

    def test_window_never_shrinks(self):
        # After sorting, every inserted tuple is final -- incomparable
        # chains all survive.
        rows = [(1, 3), (3, 1), (2, 2)]
        assert sorted(sfs_skyline(rows, MIN2)) == sorted(rows)

    @given(rows_2d)
    @settings(max_examples=120, deadline=None)
    def test_equivalent_to_bnl(self, rows):
        assert sorted(sfs_skyline(rows, MIN2)) == \
            sorted(bnl_skyline(rows, MIN2))

    @given(rows_2d)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_bnl_minmax(self, rows):
        assert sorted(sfs_skyline(rows, MINMAX)) == \
            sorted(bnl_skyline(rows, MINMAX))

    def test_distinct_semantics(self):
        rows = [(1, 1, "a"), (1, 1, "b"), (0, 2, "c")]
        result = sfs_skyline(rows, MIN2, distinct=True)
        values = {(r[0], r[1]) for r in result}
        assert values == {(1, 1), (0, 2)}
        assert len(result) == 2

    def test_rounding_tie_evicts_dominated_row(self):
        # Regression: monotone scores are only weakly monotone under
        # float rounding -- both rows sum to exactly 1e16, the dominated
        # one stably sorts first, and without the equal-score eviction
        # it wrongly survived the insertion-is-final window.
        rows = [(1e16, 0.6), (1e16, 0.4)]
        assert sfs_skyline(rows, MIN2) == [(1e16, 0.4)] == \
            bnl_skyline(rows, MIN2)

    def test_rounding_tie_chain(self):
        # A whole run of tied scores where each row dominates the
        # previous one: only the last survives.
        rows = [(1e16, 0.9 - i * 1e-3) for i in range(40)]
        assert sfs_skyline(rows, MIN2) == [rows[-1]]

    def test_exact_tie_without_dominance_keeps_all(self):
        # Anti-correlated integers all score the same; no dominance, so
        # the eviction pass must not drop anything.
        rows = [(i, 30 - i) for i in range(31)]
        assert sorted(sfs_skyline(rows, MIN2)) == sorted(rows)
