"""Columnar NumPy kernels: agreement with the scalar reference,
columnization edge cases, and the pinned NaN/±inf semantics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.vectorized as V
from repro.core import (bnl_skyline, dominates, flagged_global_skyline,
                        make_dimensions, prune_dominated_cells,
                        sfs_skyline, vec_bnl_skyline,
                        vec_flagged_global_skyline, vec_sfs_skyline)
from repro.core.bnl import bnl_skyline as bnl
from repro.core.dominance import DominanceStats, dominates_incomplete
from repro.core.vectorized import (columnize, prune_dominated_cells_vec,
                                   select_kernels,
                                   vec_bnl_skyline_incomplete)

pytestmark = pytest.mark.skipif(not V.numpy_available(),
                                reason="NumPy not available")

NAN = float("nan")
INF = float("inf")
MIN2 = make_dimensions([(0, "min"), (1, "min")])
MIXED3 = make_dimensions([(0, "min"), (1, "max"), (2, "diff")])

values = st.sampled_from([0, 1, 2, 3, 1.5, -2.0])
rows_2d = st.lists(st.tuples(values, values), max_size=60)
rows_3d = st.lists(st.tuples(values, values, values), max_size=60)
maybe = st.one_of(st.none(), values)
rows_nullable = st.lists(st.tuples(maybe, maybe, maybe), max_size=50)
special = st.sampled_from([0, 1, 2, NAN, INF, -INF])
rows_special = st.lists(st.tuples(special, special), max_size=40)


def srt(rows):
    return sorted(rows, key=repr)


class TestColumnize:
    def test_orientation_and_shape(self):
        block = columnize([(1, 2, "a"), (3, 4, "b")], MIXED3)
        assert block.values.shape == (2, 2)
        # MAX dimension negated so smaller is uniformly better.
        assert list(block.values[:, 1]) == [-2.0, -4.0]
        assert block.diff_keys == [("a",), ("b",)]

    def test_null_mask_and_nan_encoding(self):
        block = columnize([(None, 1), (2, None)], MIN2)
        assert block.null_mask.tolist() == [[True, False], [False, True]]
        assert math.isnan(block.values[0, 0])
        assert not block.has_nan_data  # encoded nulls are not NaN data

    def test_nan_data_is_not_a_null(self):
        block = columnize([(NAN, 1)], MIN2)
        assert block.has_nan_data
        assert not block.null_mask.any()

    def test_non_numeric_returns_none(self):
        assert columnize([("x", 1)], MIN2) is None

    def test_big_int_returns_none(self):
        assert columnize([(2 ** 60, 1)], MIN2) is None
        # Exactly representable magnitudes still columnize.
        assert columnize([(2 ** 53, 1)], MIN2) is not None

    def test_empty_input(self):
        block = columnize([], MIN2)
        assert block.num_rows == 0
        assert vec_bnl_skyline([], MIN2) == []

    def test_uniform_null_pattern(self):
        assert columnize([(None, 1), (None, 2)],
                         MIN2).uniform_null_pattern()
        assert not columnize([(None, 1), (1, None)],
                             MIN2).uniform_null_pattern()


class TestKernelAgreement:
    @given(rows_3d, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_bnl_matches_scalar(self, rows, distinct):
        assert srt(vec_bnl_skyline(rows, MIXED3, distinct=distinct)) == \
            srt(bnl_skyline(rows, MIXED3, distinct=distinct))

    @given(rows_3d, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_sfs_matches_scalar(self, rows, distinct):
        # Exact list equality: the vectorized kernel must reproduce the
        # scalar kernel's global-score-order output, DIFF groups and all.
        assert vec_sfs_skyline(rows, MIXED3, distinct=distinct) == \
            sfs_skyline(rows, MIXED3, distinct=distinct)

    def test_sfs_diff_groups_keep_global_score_order(self):
        # Regression: per-DIFF-group processing must not reorder the
        # output -- scalar SFS emits one global score order.
        dims = make_dimensions([(0, "diff"), (1, "min"), (2, "min")])
        rows = [("g2", 5, 5), ("g1", 1, 9), ("g2", 1, 1), ("g1", 9, 1)]
        assert vec_sfs_skyline(rows, dims) == sfs_skyline(rows, dims) == \
            [("g2", 1, 1), ("g1", 1, 9), ("g1", 9, 1)]

    def test_sfs_mixed_finite_groups_route_whole_input_to_bnl(self):
        # Scalar SFS falls back to BNL when *any* score is non-finite,
        # even if only one DIFF group is affected -- the vectorized
        # kernel must mirror that, including the input-order output.
        dims = make_dimensions([(0, "diff"), (1, "min"), (2, "min")])
        rows = [("g1", INF, -INF), ("g2", 2, 2), ("g1", 0, 0),
                ("g2", 1, 3)]
        assert vec_sfs_skyline(rows, dims) == sfs_skyline(rows, dims)

    @given(rows_nullable, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_flagged_matches_scalar(self, rows, distinct):
        dims = make_dimensions([(0, "min"), (1, "max"), (2, "min")])
        assert srt(vec_flagged_global_skyline(
            rows, dims, distinct=distinct)) == \
            srt(flagged_global_skyline(rows, dims, distinct=distinct))

    @given(rows_2d)
    @settings(max_examples=80, deadline=None)
    def test_incomplete_bnl_matches_scalar_per_bitmap(self, rows):
        # Uniform null pattern (the engine's per-partition guarantee).
        nulled = [(None, b) for _, b in rows]
        assert srt(vec_bnl_skyline_incomplete(nulled, MIN2)) == \
            srt(bnl(nulled, MIN2, dominance=dominates_incomplete))

    def test_complete_kernels_raise_on_nulls_like_scalar(self):
        # Regression: nulls fed to the complete-data kernels must not
        # silently switch to null-skipping semantics -- the scalar
        # reference raises, so the vectorized kernels defer and raise.
        rows = [(None, 1.0), (2.0, 2.0)]
        for kernel in (vec_bnl_skyline, vec_sfs_skyline,
                       bnl_skyline, sfs_skyline):
            with pytest.raises(TypeError):
                kernel(rows, MIN2)

    def test_incomplete_null_diff_key_matches_scalar(self):
        # Regression: a null DIFF value is skipped by the null-restricted
        # comparison (cross-group dominance), which hash grouping cannot
        # express -- the vectorized kernel must defer to the scalar one.
        dims = make_dimensions([(0, "min"), (1, "diff")])
        rows = [(1.0, None), (2.0, "x")]
        assert srt(vec_bnl_skyline_incomplete(rows, dims)) == \
            srt(bnl(rows, dims, dominance=dominates_incomplete))
        assert vec_bnl_skyline_incomplete(rows, dims) == [(1.0, None)]

    def test_incomplete_mixed_bitmaps_fall_back(self):
        # Heterogeneous null patterns: the vectorized kernel must defer
        # to the scalar window semantics (dominance is not transitive).
        rows = [(None, 1), (1, None), (2, 2), (0, 3)]
        assert srt(vec_bnl_skyline_incomplete(rows, MIN2)) == \
            srt(bnl(rows, MIN2, dominance=dominates_incomplete))

    def test_blocks_larger_than_block_rows(self):
        import random
        rng = random.Random(7)
        rows = [(rng.random(), rng.random())
                for _ in range(V.BLOCK_ROWS * 3 + 17)]
        assert srt(vec_bnl_skyline(rows, MIN2)) == \
            srt(bnl_skyline(rows, MIN2))
        assert srt(vec_sfs_skyline(rows, MIN2)) == \
            srt(sfs_skyline(rows, MIN2))

    def test_stats_are_populated(self):
        stats = DominanceStats()
        rows = [(i % 5, (i * 7) % 5) for i in range(50)]
        vec_bnl_skyline(rows, MIN2, stats=stats)
        assert stats.comparisons > 0
        assert stats.window_peak > 0


class TestPinnedNaNSemantics:
    """Regression net for the NaN/±inf behaviour pinned in
    :mod:`repro.core.dominance`."""

    def test_nan_dimension_carries_no_information(self):
        assert dominates((1, NAN), (2, 5), MIN2)
        assert dominates((NAN, 1), (NAN, 2), MIN2)
        # NaN itself never blocks and never counts as strictly better.
        assert not dominates((NAN, 1), (1, 1), MIN2)
        assert not dominates((NAN, NAN), (1, 2), MIN2)

    def test_infinities_order_normally(self):
        assert dominates((-INF, 1), (0, 1), MIN2)
        assert not dominates((INF, 0), (0, 0), MIN2)

    def test_scalar_sfs_falls_back_on_nan(self):
        rows = [(NAN, 2), (1, 1), (0, 3), (2, 0)]
        assert srt(sfs_skyline(rows, MIN2)) == srt(bnl_skyline(rows, MIN2))

    def test_sfs_rounding_tie_evicts_dominated_row(self):
        # Regression: float addition absorbs sub-ulp differences (both
        # rows score exactly 1e16), stably sorting the dominated row
        # first -- insertion-is-final must not keep it.
        rows = [(1e16, 0.6), (1e16, 0.4)]
        assert sfs_skyline(rows, MIN2) == [(1e16, 0.4)]
        assert vec_sfs_skyline(rows, MIN2) == [(1e16, 0.4)]
        assert srt(bnl_skyline(rows, MIN2)) == srt([(1e16, 0.4)])

    def test_sfs_rounding_tie_across_chunk_boundary(self):
        # The dominator of every earlier row sits in a later chunk of
        # the same equal-score run -- the vectorized windowed scan alone
        # would miss it.
        n = V.BLOCK_ROWS + 5
        rows = [(1e16, 0.9 - i * 1e-4) for i in range(n)]
        expected = [rows[-1]]
        assert sfs_skyline(rows, MIN2) == expected
        assert vec_sfs_skyline(rows, MIN2) == expected

    def test_sfs_exact_tie_without_dominance_keeps_all(self):
        # Anti-correlated integers: every row scores exactly the same
        # and none dominates -- the tie cleanup must keep them all, in
        # the stable (input) order.
        n = V.BLOCK_ROWS * 2 + 9
        rows = [(float(i), float(n - i)) for i in range(n)]
        assert vec_sfs_skyline(rows, MIN2) == sfs_skyline(rows, MIN2)
        assert len(vec_sfs_skyline(rows, MIN2)) == n

    def test_scalar_sfs_falls_back_on_absorbing_inf(self):
        # Regression: -inf absorbs the monotone score, tying the
        # dominated (-inf, 2) with its dominator (-inf, -2) -- without
        # the non-finite fallback SFS kept the dominated row.
        rows = [(-INF, 2), (-INF, -2.0), (0, 0)]
        assert srt(sfs_skyline(rows, MIN2)) == srt([(-INF, -2.0)])

    @given(rows_special, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_vectorized_agrees_on_special_values(self, rows, distinct):
        assert srt(vec_bnl_skyline(rows, MIN2, distinct=distinct)) == \
            srt(bnl_skyline(rows, MIN2, distinct=distinct))
        assert srt(vec_sfs_skyline(rows, MIN2, distinct=distinct)) == \
            srt(sfs_skyline(rows, MIN2, distinct=distinct))

    @given(st.lists(st.tuples(st.one_of(st.none(), special),
                              st.one_of(st.none(), special)),
                    max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_flagged_agrees_on_special_and_null_values(self, rows):
        assert srt(vec_flagged_global_skyline(rows, MIN2)) == \
            srt(flagged_global_skyline(rows, MIN2))

    def test_distinct_never_merges_nan_rows(self):
        # NaN != NaN: DISTINCT must keep both NaN rows (they are not
        # equal on the dimensions), matching equal_on_dimensions.
        rows = [(NAN, 1), (NAN, 1)]
        assert len(vec_bnl_skyline(rows, MIN2, distinct=True)) == 2
        assert len(bnl_skyline(rows, MIN2, distinct=True)) == 2

    def test_distinct_merges_null_rows(self):
        rows = [(None, 1, 0), (None, 1, 5)]
        dims = make_dimensions([(0, "min"), (1, "min")])
        assert len(vec_flagged_global_skyline(
            rows, dims, distinct=True)) == 1


class TestFallbacks:
    def test_kernels_fall_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(V, "np", None)
        monkeypatch.setattr(V, "HAVE_NUMPY", False)
        rows = [(2, 2), (1, 1), (0, 3)]
        assert columnize(rows, MIN2) is None
        assert srt(vec_bnl_skyline(rows, MIN2)) == \
            srt(bnl_skyline(rows, MIN2))
        assert select_kernels(True).name == "scalar"

    def test_select_kernels(self):
        assert select_kernels(False).name == "scalar"
        assert select_kernels(True).name == "vectorized"

    def test_non_numeric_rows_fall_back(self):
        rows = [("b", 2), ("a", 1), ("c", 0)]
        dims = make_dimensions([(0, "min"), (1, "min")])
        assert srt(vec_bnl_skyline(rows, dims)) == \
            srt(bnl_skyline(rows, dims))


class TestCellPruning:
    def test_matches_scalar_pruning(self):
        import random
        rng = random.Random(3)
        cells = {}
        for _ in range(80):
            coord = (rng.randrange(6), rng.randrange(6), rng.randrange(6))
            cells.setdefault(coord, []).append(coord)
        scalar = {
            cell for cell in cells
            if not any(other != cell and all(o < c for o, c in
                                             zip(other, cell))
                       for other in cells)}
        assert set(prune_dominated_cells_vec(cells)) == scalar
        # The public entry point dispatches to the vectorized path for
        # grids this size and must agree too.
        assert set(prune_dominated_cells(cells)) == scalar

    def test_degenerate_grids(self):
        assert prune_dominated_cells_vec({(): ["r"]}) == {(): ["r"]}
        mixed = {(0,): ["a"], (1, 1): ["b"]}
        assert prune_dominated_cells_vec(mixed) == mixed
