"""SQL parser, including the SKYLINE OF grammar extension (Listing 5)."""

import pytest

from repro.core.dominance import DimensionKind
from repro.engine import expressions as E
from repro.errors import ParseError
from repro.plan import logical as L
from repro.sql.parser import parse_expression, parse_query


def find_node(plan, node_type):
    nodes = [n for n in plan.iter_tree() if isinstance(n, node_type)]
    assert nodes, f"no {node_type.__name__} in plan"
    return nodes[0]


class TestSelectBasics:
    def test_simple_select(self):
        plan = parse_query("SELECT a, b FROM t")
        project = find_node(plan, L.Project)
        assert [p.name for p in project.projections] == ["a", "b"]
        relation = find_node(plan, L.UnresolvedRelation)
        assert relation.name == "t"

    def test_star(self):
        plan = parse_query("SELECT * FROM t")
        project = find_node(plan, L.Project)
        assert isinstance(project.projections[0], E.UnresolvedStar)

    def test_qualified_star(self):
        plan = parse_query("SELECT t.* FROM t")
        project = find_node(plan, L.Project)
        assert project.projections[0].qualifier == "t"

    def test_aliases_with_and_without_as(self):
        plan = parse_query("SELECT a AS x, b y FROM t")
        project = find_node(plan, L.Project)
        assert [p.display_name for p in project.projections] == ["x", "y"]

    def test_computed_columns_get_auto_alias(self):
        plan = parse_query("SELECT a + 1 FROM t")
        project = find_node(plan, L.Project)
        assert isinstance(project.projections[0], E.Alias)

    def test_distinct(self):
        plan = parse_query("SELECT DISTINCT a FROM t")
        assert isinstance(plan, L.Distinct)

    def test_where_clause(self):
        plan = parse_query("SELECT a FROM t WHERE a > 1")
        filt = find_node(plan, L.Filter)
        assert isinstance(filt.condition, E.GreaterThan)

    def test_limit(self):
        plan = parse_query("SELECT a FROM t LIMIT 10")
        assert isinstance(plan, L.Limit)
        assert plan.limit == 10

    def test_order_by(self):
        plan = parse_query(
            "SELECT a FROM t ORDER BY a DESC NULLS LAST, b ASC")
        sort = find_node(plan, L.Sort)
        assert not sort.order[0].ascending
        assert not sort.order[0].nulls_first
        assert sort.order[1].ascending

    def test_table_alias(self):
        plan = parse_query("SELECT a FROM t AS x")
        alias = find_node(plan, L.SubqueryAlias)
        assert alias.alias == "x"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("SELECT a FROM t extra stuff ,")


class TestSkylineClause:
    def test_basic_skyline(self):
        plan = parse_query(
            "SELECT price, rating FROM hotels "
            "SKYLINE OF price MIN, rating MAX")
        skyline = find_node(plan, L.SkylineOperator)
        assert not skyline.distinct
        assert not skyline.complete
        kinds = [i.kind for i in skyline.skyline_items]
        assert kinds == [DimensionKind.MIN, DimensionKind.MAX]

    def test_distinct_and_complete_flags(self):
        plan = parse_query(
            "SELECT a FROM t SKYLINE OF DISTINCT COMPLETE a MIN")
        skyline = find_node(plan, L.SkylineOperator)
        assert skyline.distinct
        assert skyline.complete

    def test_complete_without_distinct(self):
        plan = parse_query("SELECT a FROM t SKYLINE OF COMPLETE a MAX")
        skyline = find_node(plan, L.SkylineOperator)
        assert skyline.complete and not skyline.distinct

    def test_diff_dimension(self):
        plan = parse_query("SELECT a FROM t SKYLINE OF a MIN, b DIFF")
        skyline = find_node(plan, L.SkylineOperator)
        assert skyline.skyline_items[1].kind is DimensionKind.DIFF

    def test_expression_dimension(self):
        plan = parse_query("SELECT a FROM t SKYLINE OF a + b MIN")
        skyline = find_node(plan, L.SkylineOperator)
        assert isinstance(skyline.skyline_items[0].child, E.Add)

    def test_skyline_between_having_and_order_by(self):
        plan = parse_query(
            "SELECT a, count(*) AS c FROM t GROUP BY a HAVING count(*) > 1 "
            "SKYLINE OF c MAX ORDER BY a")
        # Structure: Sort > Skyline > Filter(HAVING) > Aggregate.
        assert isinstance(plan, L.Sort)
        assert isinstance(plan.child, L.SkylineOperator)
        assert isinstance(plan.child.child, L.Filter)
        assert isinstance(plan.child.child.child, L.Aggregate)

    def test_missing_kind_rejected(self):
        with pytest.raises(ParseError, match="MIN, MAX or DIFF"):
            parse_query("SELECT a FROM t SKYLINE OF a")

    def test_skyline_requires_of(self):
        with pytest.raises(ParseError, match="expected OF"):
            parse_query("SELECT a FROM t SKYLINE a MIN")

    def test_min_still_usable_as_aggregate_function(self):
        plan = parse_query("SELECT min(a) AS m FROM t")
        aggregate = find_node(plan, L.Aggregate)
        alias = aggregate.aggregate_expressions[0]
        assert isinstance(alias.child, E.UnresolvedFunction)
        assert alias.child.name == "min"


class TestJoins:
    def test_inner_join_on(self):
        plan = parse_query("SELECT a FROM t JOIN u ON t.id = u.id")
        join = find_node(plan, L.Join)
        assert join.join_type == L.JoinType.INNER
        assert isinstance(join.condition, E.EqualTo)

    def test_left_outer_join_using(self):
        plan = parse_query("SELECT a FROM t LEFT OUTER JOIN u USING (id)")
        join = find_node(plan, L.Join)
        assert join.join_type == L.JoinType.LEFT_OUTER
        assert join.using_columns == ("id",)

    def test_join_variants(self):
        for keyword, jt in [("INNER JOIN", L.JoinType.INNER),
                            ("RIGHT JOIN", L.JoinType.RIGHT_OUTER),
                            ("FULL JOIN", L.JoinType.FULL_OUTER),
                            ("CROSS JOIN", L.JoinType.CROSS)]:
            sql = f"SELECT a FROM t {keyword} u"
            if jt is not L.JoinType.CROSS:
                sql += " ON t.id = u.id"
            join = find_node(parse_query(sql), L.Join)
            assert join.join_type == jt

    def test_comma_join_is_cross(self):
        join = find_node(parse_query("SELECT a FROM t, u"), L.Join)
        assert join.join_type == L.JoinType.CROSS

    def test_join_requires_condition(self):
        with pytest.raises(ParseError, match="ON or USING"):
            parse_query("SELECT a FROM t JOIN u")

    def test_subquery_in_from(self):
        plan = parse_query("SELECT a FROM (SELECT a FROM t) sub")
        alias = find_node(plan, L.SubqueryAlias)
        assert alias.alias == "sub"

    def test_chained_joins(self):
        plan = parse_query(
            "SELECT a FROM t JOIN u USING (id) JOIN v USING (id)")
        joins = [n for n in plan.iter_tree() if isinstance(n, L.Join)]
        assert len(joins) == 2


class TestGroupByHaving:
    def test_group_by_builds_aggregate(self):
        plan = parse_query("SELECT a, sum(b) AS s FROM t GROUP BY a")
        aggregate = find_node(plan, L.Aggregate)
        assert len(aggregate.grouping_expressions) == 1

    def test_aggregate_without_group_by(self):
        plan = parse_query("SELECT count(*) AS c FROM t")
        aggregate = find_node(plan, L.Aggregate)
        assert aggregate.grouping_expressions == []

    def test_having_above_aggregate(self):
        plan = parse_query(
            "SELECT a FROM t GROUP BY a HAVING count(*) > 2")
        assert isinstance(plan, L.Filter)
        assert isinstance(plan.child, L.Aggregate)


class TestExpressions:
    def test_precedence_and_parentheses(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, E.Add)
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, E.Multiply)

    def test_boolean_precedence(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, E.Or)
        assert isinstance(expr.right, E.And)

    def test_comparison_chain(self):
        expr = parse_expression("a <= 5")
        assert isinstance(expr, E.LessThanOrEqual)

    def test_not_exists(self):
        expr = parse_expression("NOT EXISTS (SELECT a FROM t)")
        assert isinstance(expr, E.Not)
        assert isinstance(expr.children[0], E.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT min(a) AS m FROM t)")
        assert isinstance(expr, E.ScalarSubquery)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, E.And)

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, E.Not)

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, E.Or)

    def test_is_null(self):
        assert isinstance(parse_expression("a IS NULL"), E.IsNull)
        assert isinstance(parse_expression("a IS NOT NULL"), E.IsNotNull)

    def test_case_searched(self):
        expr = parse_expression(
            "CASE WHEN a > 0 THEN 'p' ELSE 'n' END")
        assert isinstance(expr, E.CaseWhen)

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'one' END")
        condition, _ = expr.branches[0]
        assert isinstance(condition, E.EqualTo)

    def test_function_call(self):
        expr = parse_expression("ifnull(a, 0)")
        assert isinstance(expr, E.UnresolvedFunction)
        assert expr.name == "ifnull"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr, E.Count)

    def test_count_distinct(self):
        expr = parse_expression("count(DISTINCT a)")
        assert isinstance(expr, E.UnresolvedFunction)
        assert expr.is_distinct

    def test_star_only_valid_for_count(self):
        with pytest.raises(ParseError):
            parse_expression("sum(*)")

    def test_unary_minus_and_plus(self):
        assert isinstance(parse_expression("-a"), E.Negate)
        assert isinstance(parse_expression("+a"), E.UnresolvedAttribute)

    def test_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None
        assert parse_expression("1.5").value == 1.5
        assert parse_expression("'txt'").value == "txt"
