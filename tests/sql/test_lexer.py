"""SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenKind, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)
            if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_keywords_lowercased(self):
        tokens = kinds("SELECT Price FROM hotels")
        assert tokens[0] == (TokenKind.KEYWORD, "select")
        assert tokens[1] == (TokenKind.IDENTIFIER, "Price")
        assert tokens[2] == (TokenKind.KEYWORD, "from")

    def test_skyline_keywords(self):
        tokens = kinds("SKYLINE OF price MIN, rating MAX, cat DIFF")
        keywords = [v for k, v in tokens if k is TokenKind.KEYWORD]
        assert keywords == ["skyline", "of", "min", "max", "diff"]

    def test_numbers(self):
        tokens = kinds("1 2.5 1e3 2.5E-2 .5")
        assert all(k is TokenKind.NUMBER for k, _ in tokens)
        assert [v for _, v in tokens] == ["1", "2.5", "1e3", "2.5E-2", ".5"]

    def test_strings_with_escapes(self):
        tokens = kinds("'it''s'")
        assert tokens == [(TokenKind.STRING, "it's")]

    def test_quoted_identifiers(self):
        assert kinds('"Weird Name"') == \
            [(TokenKind.IDENTIFIER, "Weird Name")]
        assert kinds("`col`") == [(TokenKind.IDENTIFIER, "col")]

    def test_operators(self):
        tokens = kinds("a <= b <> c <=> d != e")
        operators = [v for k, v in tokens if k is TokenKind.OPERATOR]
        assert operators == ["<=", "<>", "<=>", "!="]

    def test_punctuation(self):
        tokens = kinds("f(a, b.c)")
        puncts = [v for k, v in tokens if k is TokenKind.PUNCT]
        assert puncts == ["(", ",", ".", ")"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        tokens = kinds("SELECT -- everything\n1")
        assert (TokenKind.NUMBER, "1") in tokens
        assert len(tokens) == 2

    def test_block_comment(self):
        tokens = kinds("SELECT /* multi\nline */ 1")
        assert len(tokens) == 2

    def test_line_numbers_tracked(self):
        tokens = tokenize("SELECT\n\nprice")
        assert tokens[1].line == 3


class TestLexerErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("'oops")

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="unterminated block"):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT #")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(ParseError):
            tokenize('"oops')
