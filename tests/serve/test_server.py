"""End-to-end serving tests: TCP protocol, concurrency, invalidation.

No pytest-asyncio in the environment: tests drive their own event loop
with ``asyncio.run``.  The TCP tests bind port 0 (ephemeral).
"""

from __future__ import annotations

import asyncio
import json

from repro import DOUBLE, INTEGER, SessionConfig
from repro.serve import CatalogService, SkylineServer

from tests.conftest import skyline_oracle
from repro.core import BoundDimension, DimensionKind

POINTS = [(i, float(a), float(b), float(c)) for i, (a, b, c) in enumerate(
    [(1, 9, 5), (2, 8, 1), (3, 7, 9), (4, 6, 2), (5, 5, 8),
     (6, 4, 3), (7, 3, 7), (8, 2, 4), (9, 1, 6), (5, 5, 5)])]

COLUMNS = [("id", INTEGER, False), ("a", DOUBLE, False),
           ("b", DOUBLE, False), ("c", DOUBLE, False)]

FULL = "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN"
SUBSETS = ("SELECT * FROM pts SKYLINE OF a MIN, b MIN",
           "SELECT * FROM pts SKYLINE OF b MIN, c MIN",
           "SELECT * FROM pts SKYLINE OF a MIN, c MIN")


def make_server(**kwargs) -> SkylineServer:
    server = SkylineServer(**kwargs)
    server.tenant("default").session.create_table("pts", COLUMNS, POINTS)
    return server


class TestInProcess:
    def test_concurrent_clients_bit_identical(self):
        """N clients over one server; every answer matches the oracle."""

        async def run():
            server = make_server(max_inflight=4)
            answers: dict[str, list] = {}

            async def client(name: str, offset: int):
                for i in range(6):
                    sql = ([FULL] + list(SUBSETS))[(offset + i) % 4]
                    result = await server.execute(name, sql)
                    answers.setdefault(sql, []).append(
                        sorted(result.as_tuples()))

            await asyncio.gather(*(client(f"tenant-{c}", c)
                                   for c in range(8)))
            await server.aclose()
            return answers

        answers = asyncio.run(run())
        specs = {
            FULL: [(1, DimensionKind.MIN), (2, DimensionKind.MIN),
                   (3, DimensionKind.MIN)],
            SUBSETS[0]: [(1, DimensionKind.MIN), (2, DimensionKind.MIN)],
            SUBSETS[1]: [(2, DimensionKind.MIN), (3, DimensionKind.MIN)],
            SUBSETS[2]: [(1, DimensionKind.MIN), (3, DimensionKind.MIN)],
        }
        for sql, runs in answers.items():
            dims = [BoundDimension(i, kind) for i, kind in specs[sql]]
            expected = sorted(skyline_oracle(POINTS, dims))
            for got in runs:
                assert got == expected, sql

    def test_cached_subset_bit_identical_vs_cold(self):
        """Cache-hit answers equal a cache-less server's, row for row."""

        async def run():
            cached = make_server(max_inflight=2)
            cold_service = CatalogService()
            cold_service.result_cache_enabled = False
            cold = SkylineServer(cold_service, max_inflight=2)
            cold.tenant("default").session.create_table(
                "pts", COLUMNS, POINTS)

            warm = await cached.execute("default", FULL)
            assert not warm.cache_hit
            pairs = []
            for sql in SUBSETS:
                hot = await cached.execute("default", sql)
                ref = await cold.execute("default", sql)
                pairs.append((sql, hot, ref))
            await cached.aclose()
            await cold.aclose()
            return pairs

        for sql, hot, ref in asyncio.run(run()):
            assert hot.cache_hit, sql
            assert not ref.cache_hit, sql
            assert sorted(hot.as_tuples()) == sorted(ref.as_tuples()), sql

    def test_insert_invalidation_end_to_end(self):
        async def run():
            server = make_server(max_inflight=2)
            await server.execute("default", FULL)
            hit = await server.execute("default", FULL)
            assert hit.cache_hit
            # A new overall winner must invalidate and then appear.
            response = await server.handle(
                {"op": "insert", "table": "pts",
                 "rows": [[99, 0.5, 0.5, 0.5]]})
            assert response["ok"]
            fresh = await server.execute("default", FULL)
            assert not fresh.cache_hit
            assert (99, 0.5, 0.5, 0.5) in fresh.as_tuples()
            await server.aclose()

        asyncio.run(run())

    def test_per_tenant_sessions_share_catalog(self):
        async def run():
            server = make_server(max_inflight=2)
            server.register_tenant("fast", num_executors=4)
            a = await server.execute("fast", FULL)
            b = await server.execute("other", FULL)
            assert sorted(a.as_tuples()) == sorted(b.as_tuples())
            assert server.tenant("fast").config.num_executors == 4
            await server.aclose()

        asyncio.run(run())


class TestProtocol:
    @staticmethod
    async def roundtrip(reader, writer, request: dict) -> dict:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        return json.loads(line)

    def test_tcp_roundtrip_on_ephemeral_port(self):
        async def run():
            server = SkylineServer(port=0)
            host, port = await server.start()
            assert port != 0
            reader, writer = await asyncio.open_connection(host, port)
            try:
                pong = await self.roundtrip(reader, writer, {"op": "ping"})
                assert pong == {"ok": True, "pong": True}

                created = await self.roundtrip(reader, writer, {
                    "op": "create_table", "table": "pts",
                    "columns": [["id", "INTEGER", False],
                                ["a", "DOUBLE", False],
                                ["b", "DOUBLE", False],
                                ["c", "DOUBLE", False]],
                    "rows": [list(row) for row in POINTS]})
                assert created["ok"] and created["rows"] == len(POINTS)

                cold = await self.roundtrip(
                    reader, writer, {"op": "query", "sql": FULL})
                assert cold["ok"] and not cold["cache_hit"]
                assert cold["columns"] == ["id", "a", "b", "c"]
                hot = await self.roundtrip(
                    reader, writer, {"op": "query", "sql": FULL})
                assert hot["ok"] and hot["cache_hit"]
                assert sorted(map(tuple, hot["rows"])) == \
                    sorted(map(tuple, cold["rows"]))

                stats = await self.roundtrip(reader, writer,
                                             {"op": "stats"})
                assert stats["ok"]
                assert stats["service"]["result_cache"]["exact_hits"] == 1
                assert "pts" in stats["service"]["tables"]

                deleted = await self.roundtrip(reader, writer, {
                    "op": "delete", "table": "pts",
                    "rows": [list(POINTS[0])]})
                assert deleted["ok"] and deleted["deleted"] == 1
                dropped = await self.roundtrip(
                    reader, writer, {"op": "drop", "table": "pts"})
                assert dropped["ok"]
            finally:
                writer.close()
                await server.aclose()

        asyncio.run(run())

    def test_configure_op(self):
        async def run():
            server = SkylineServer(port=0)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                response = await self.roundtrip(reader, writer, {
                    "op": "configure", "tenant": "t1",
                    "options": {"num_executors": 8,
                                "skyline_algorithm": "sfs"}})
                assert response["ok"]
                assert response["config"]["num_executors"] == 8
                assert response["config"]["skyline_algorithm"] == "sfs"
                assert server.tenant("t1").config.num_executors == 8
            finally:
                writer.close()
                await server.aclose()

        asyncio.run(run())

    def test_error_responses(self):
        async def run():
            server = SkylineServer(port=0)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                bad_json = {"raw": b"not json\n"}
                writer.write(bad_json["raw"])
                await writer.drain()
                decoded = json.loads(await reader.readline())
                assert not decoded["ok"]
                assert decoded["error"] == "bad_request"

                unknown = await self.roundtrip(reader, writer,
                                               {"op": "frobnicate"})
                assert not unknown["ok"] and "unknown op" in \
                    unknown["message"]

                missing = await self.roundtrip(
                    reader, writer,
                    {"op": "query", "sql": "SELECT * FROM nope"})
                assert not missing["ok"]
                assert missing["error"] == "analysis_error"

                notnull = await self.roundtrip(reader, writer, {
                    "op": "create_table", "table": "t",
                    "columns": [["x", "INTEGER", False]], "rows": []})
                assert notnull["ok"]
                violation = await self.roundtrip(reader, writer, {
                    "op": "insert", "table": "t", "rows": [[None]]})
                assert not violation["ok"]
                assert violation["error"] == "analysis_error"
                assert "NOT NULL" in violation["message"]
            finally:
                writer.close()
                await server.aclose()

        asyncio.run(run())

    def test_default_config_applies_to_new_tenants(self):
        async def run():
            server = SkylineServer(
                port=0,
                default_config=SessionConfig(skyline_algorithm="sfs"))
            assert server.tenant("anyone").config.skyline_algorithm \
                == "sfs"
            await server.aclose()

        asyncio.run(run())
