"""Admission scheduler: bounded in-flight, per-tenant fairness.

No pytest-asyncio in the environment: each test drives its own event
loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import AdmissionScheduler


def test_invalid_max_inflight():
    with pytest.raises(ValueError):
        AdmissionScheduler(max_inflight=0)


def test_release_without_admit():
    scheduler = AdmissionScheduler()
    with pytest.raises(RuntimeError):
        scheduler.release()


def test_immediate_admission_under_limit():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=2)
        assert await scheduler.admit("a") == 0.0
        assert await scheduler.admit("b") == 0.0
        assert scheduler.inflight == 2
        assert scheduler.queue_depth == 0
        scheduler.release()
        scheduler.release()
        assert scheduler.inflight == 0

    asyncio.run(run())


def test_inflight_never_exceeds_limit():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=3)
        peak = 0
        active = 0

        async def job(tenant: str):
            nonlocal peak, active
            await scheduler.admit(tenant)
            active += 1
            peak = max(peak, active)
            try:
                await asyncio.sleep(0.001)
            finally:
                active -= 1
                scheduler.release()

        await asyncio.gather(*(job(f"t{i % 4}") for i in range(20)))
        assert peak <= 3
        assert scheduler.inflight == 0
        assert scheduler.queue_depth == 0
        assert scheduler.stats.admitted == 20
        assert scheduler.stats.queued > 0
        assert scheduler.stats.max_queue_depth >= 1

    asyncio.run(run())


def test_waiters_record_positive_wait():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=1)
        await scheduler.admit("a")

        async def waiter():
            waited = await scheduler.admit("b")
            scheduler.release()
            return waited

        task = asyncio.ensure_future(waiter())
        await asyncio.sleep(0.01)
        assert scheduler.queue_depth == 1
        scheduler.release()
        waited = await task
        assert waited > 0.0
        assert scheduler.stats.total_wait_s >= waited

    asyncio.run(run())


def test_round_robin_across_tenants():
    """With one slot, a backlog of tenant A must not starve B and C."""

    async def run():
        scheduler = AdmissionScheduler(max_inflight=1)
        order: list[str] = []
        await scheduler.admit("seed")  # occupy the only slot

        async def job(tenant: str):
            await scheduler.admit(tenant)
            order.append(tenant)
            scheduler.release()

        # Queue arrival order: four A's, then one B, then one C.
        tasks = [asyncio.ensure_future(job("a")) for _ in range(4)]
        await asyncio.sleep(0.01)
        tasks.append(asyncio.ensure_future(job("b")))
        await asyncio.sleep(0.01)
        tasks.append(asyncio.ensure_future(job("c")))
        await asyncio.sleep(0.01)
        scheduler.release()  # the seed finishes; the queue drains
        await asyncio.gather(*tasks)
        # Round-robin: b and c each run after at most one more a, well
        # before a's backlog is exhausted.
        assert order.index("b") <= 2
        assert order.index("c") <= 3
        assert order.count("a") == 4

    asyncio.run(run())


def test_fifo_within_tenant():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=1)
        order: list[int] = []
        await scheduler.admit("seed")

        async def job(i: int):
            await scheduler.admit("a")
            order.append(i)
            scheduler.release()

        tasks = []
        for i in range(5):
            tasks.append(asyncio.ensure_future(job(i)))
            await asyncio.sleep(0.001)
        scheduler.release()
        await asyncio.gather(*tasks)
        assert order == [0, 1, 2, 3, 4]

    asyncio.run(run())


def test_late_arrival_cannot_overtake_queue():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=2)
        await scheduler.admit("a")
        await scheduler.admit("a")
        waited_order: list[str] = []

        async def job(tenant: str):
            await scheduler.admit(tenant)
            waited_order.append(tenant)
            scheduler.release()

        queued = asyncio.ensure_future(job("b"))
        await asyncio.sleep(0.01)
        scheduler.release()  # frees a slot; b is granted in dispatch
        # A fresh request right after the release must queue behind b
        # (or run second), never jump it.
        late = asyncio.ensure_future(job("c"))
        await asyncio.gather(queued, late)
        assert waited_order[0] == "b"

    asyncio.run(run())


def test_cancelled_waiter_leaves_queue_clean():
    async def run():
        scheduler = AdmissionScheduler(max_inflight=1)
        await scheduler.admit("a")

        async def waiter():
            await scheduler.admit("b")

        task = asyncio.ensure_future(waiter())
        await asyncio.sleep(0.01)
        assert scheduler.queue_depth == 1
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        assert scheduler.queue_depth == 0
        scheduler.release()
        assert scheduler.inflight == 0
        # The slot is reusable after the cancellation.
        assert await scheduler.admit("c") == 0.0
        scheduler.release()

    asyncio.run(run())
