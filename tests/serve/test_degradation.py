"""Graceful-degradation tests for the serving layer.

Load shedding (bounded per-tenant queues -> ``overloaded`` +
``retry_after_s``), scheduler ring pruning, the stable wire error-code
contract (no stack traces or internal details cross the boundary),
deadline enforcement at the server, and fault counters surfacing in the
service stats.

No pytest-asyncio in the environment: tests drive their own event loop
with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import DOUBLE, INTEGER
from repro.engine.faults import FaultPlan, activate
from repro.errors import (AnalysisError, ParseError, QueryTimeout,
                          ServerOverloadedError, TaskError,
                          WorkerCrashError)
from repro.serve import SkylineServer
from repro.serve.app import wire_error
from repro.serve.scheduler import AdmissionScheduler

POINTS = [(i, float(i % 7), float(i % 5), float(i % 3))
          for i in range(40)]
COLUMNS = [("id", INTEGER, False), ("a", DOUBLE, False),
           ("b", DOUBLE, False), ("c", DOUBLE, False)]
SQL = "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN"


def make_server(**kwargs) -> SkylineServer:
    server = SkylineServer(**kwargs)
    server.tenant("default").session.create_table("pts", COLUMNS, POINTS)
    return server


# -- scheduler-level shedding and pruning ---------------------------------


class TestSchedulerDegradation:
    def test_full_tenant_queue_is_shed(self):
        async def run():
            scheduler = AdmissionScheduler(max_inflight=1,
                                           max_queue_per_tenant=2)
            await scheduler.admit("t")  # takes the only slot
            queued = [asyncio.ensure_future(scheduler.admit("t"))
                      for _ in range(2)]
            await asyncio.sleep(0)  # let both enter the queue
            with pytest.raises(ServerOverloadedError) as info:
                await scheduler.admit("t")
            assert info.value.retry_after_s > 0
            assert scheduler.stats.shed == 1
            # Other tenants are not shed by this tenant's backlog.
            other = asyncio.ensure_future(scheduler.admit("u"))
            await asyncio.sleep(0)
            assert not other.done()
            # Drain: each release hands the slot to the next waiter,
            # so releases == successful admits (1 + 2 queued + other).
            for _ in range(4):
                scheduler.release()
                await asyncio.sleep(0)
            await asyncio.gather(*queued, other)
            return scheduler

        scheduler = asyncio.run(run())
        assert scheduler.stats.admitted == 4
        assert scheduler.inflight == 0

    def test_drained_tenants_are_pruned_from_the_ring(self):
        """Satellite fix: the ring must not grow without bound as
        one-shot tenants come and go."""
        async def run():
            scheduler = AdmissionScheduler(max_inflight=1)
            await scheduler.admit("hog")
            waiters = [asyncio.ensure_future(
                scheduler.admit(f"tenant-{i}")) for i in range(20)]
            await asyncio.sleep(0)
            assert scheduler.tenant_count == 20
            for _ in range(len(waiters) + 1):
                scheduler.release()
                await asyncio.sleep(0)
            await asyncio.gather(*waiters)
            assert scheduler.tenant_count == 0
            assert scheduler.queue_depth == 0

        asyncio.run(run())

    def test_cancelled_waiters_are_pruned(self):
        async def run():
            scheduler = AdmissionScheduler(max_inflight=1)
            await scheduler.admit("t")
            waiter = asyncio.ensure_future(scheduler.admit("ghost"))
            await asyncio.sleep(0)
            assert scheduler.tenant_count == 1
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert scheduler.tenant_count == 0
            scheduler.release()

        asyncio.run(run())

    def test_retry_after_hint_tracks_service_time(self):
        scheduler = AdmissionScheduler(max_inflight=2)
        baseline = scheduler.retry_after_hint()
        assert baseline > 0
        for _ in range(10):
            scheduler.note_service_time(0.8)
        assert scheduler.retry_after_hint() > baseline
        scheduler.note_service_time(-1)  # ignored, not a crash


# -- the wire error-code contract -----------------------------------------


class TestWireErrors:
    @pytest.mark.parametrize("exc,code", [
        (ParseError("bad sql"), "parse_error"),
        (AnalysisError("no such table"), "analysis_error"),
        (QueryTimeout(elapsed=1.2, budget=1.0), "timeout"),
        (WorkerCrashError("lost", task_key="s#1", attempts=4),
         "worker_crash"),
        (TaskError("boom", task_key="s#0", attempts=1), "task_error"),
        (ServerOverloadedError("full", retry_after_s=0.25), "overloaded"),
        (ValueError("missing field"), "bad_request"),
    ])
    def test_stable_codes(self, exc, code):
        payload = wire_error(exc)
        assert payload["ok"] is False
        assert payload["error"] == code

    def test_overloaded_carries_retry_after(self):
        payload = wire_error(
            ServerOverloadedError("full", retry_after_s=0.25))
        assert payload["retry_after_s"] == 0.25

    def test_timeout_carries_partial_progress(self):
        exc = QueryTimeout(elapsed=2.0, budget=1.5,
                           partial_stats={"stages_completed": 3})
        payload = wire_error(exc)
        assert payload["elapsed_s"] == 2.0
        assert payload["budget_s"] == 1.5
        assert payload["partial_stats"] == {"stages_completed": 3}

    def test_task_errors_carry_attempts(self):
        payload = wire_error(
            WorkerCrashError("lost", task_key="s#1", attempts=4))
        assert payload["task_key"] == "s#1"
        assert payload["attempts"] == 4

    def test_unexpected_exceptions_do_not_leak(self):
        secret = "/etc/secret/path and a Traceback-worthy detail"
        payload = wire_error(RuntimeError(secret))
        assert payload["error"] == "internal"
        assert payload["message"] == "internal server error"
        assert secret not in str(payload)
        assert "Traceback" not in str(payload)


# -- server-level degradation ---------------------------------------------


class TestServerDegradation:
    def test_overload_sheds_with_retry_hint_and_recovers(self):
        async def run():
            server = make_server(max_inflight=1, max_queue_per_tenant=1)
            responses = await asyncio.gather(*(
                server.handle({"op": "query", "sql": SQL})
                for _ in range(6)))
            after = await server.handle({"op": "query", "sql": SQL})
            stats = await server.handle({"op": "stats"})
            await server.aclose()
            return responses, after, stats

        responses, after, stats = asyncio.run(run())
        served = [r for r in responses if r["ok"]]
        shed = [r for r in responses if not r["ok"]]
        assert served and shed  # 1 ran + 1 queued, the rest shed
        rows = {tuple(map(tuple, r["rows"])) for r in served}
        assert len(rows) == 1  # survivors still agree bit-for-bit
        for response in shed:
            assert response["error"] == "overloaded"
            assert response["retry_after_s"] > 0
            assert "Traceback" not in response["message"]
        assert stats["scheduler"]["shed"] == len(shed)
        # Shedding is transient: the next request is served normally.
        assert after["ok"], after

    def test_engine_budget_timeout_on_the_wire(self):
        async def run():
            server = make_server()
            server.register_tenant("impatient", time_budget_s=0.0)
            response = await server.handle(
                {"op": "query", "sql": SQL, "tenant": "impatient"})
            healthy = await server.handle({"op": "query", "sql": SQL})
            await server.aclose()
            return response, healthy

        response, healthy = asyncio.run(run())
        assert response["error"] == "timeout"
        assert response["budget_s"] == 0.0
        assert "stages_completed" in response["partial_stats"]
        assert healthy["ok"]  # one tenant's budget never hurts another

    def test_server_hard_timeout_backstop(self):
        """A query stuck where cooperative checks cannot reach is cut
        off by the server's wait_for backstop."""
        async def run():
            server = make_server()
            server.register_tenant("stuck", time_budget_s=0.05)
            server.service.execute = \
                lambda session, sql: time.sleep(1.0)  # type: ignore
            response = await server.handle(
                {"op": "query", "sql": SQL, "tenant": "stuck"})
            await server.aclose()
            return response

        response = asyncio.run(run())
        assert response["error"] == "timeout"
        assert response["partial_stats"] == {"enforced_by": "server"}
        assert response["elapsed_s"] < 1.0

    def test_fault_counters_surface_in_stats(self):
        async def run():
            server = make_server()
            plan = FaultPlan(seed=5, error_p=1.0, max_injections=1)
            with activate(plan):
                faulted = await server.handle(
                    {"op": "query", "sql": SQL})
            clean = await server.handle(
                {"op": "query", "sql": SQL.replace("c MIN", "c MAX")})
            stats = await server.handle({"op": "stats"})
            await server.aclose()
            return faulted, clean, stats

        faulted, clean, stats = asyncio.run(run())
        assert faulted["ok"] and clean["ok"]
        faults = stats["service"]["faults"]
        assert faults["retries"] >= 1
        assert stats["service"]["faults"]["crash_recoveries"] >= 0
