"""The dominance-aware result cache: shapes, containment, invalidation."""

from __future__ import annotations

import pytest

from repro import DOUBLE, INTEGER
from repro.core import BoundDimension, DimensionKind
from repro.serve import CatalogService, SkylineResultCache, cacheable_shape

from tests.conftest import skyline_oracle

POINTS = [
    (1, 1.0, 9.0, 5.0),
    (2, 2.0, 8.0, 1.0),
    (3, 3.0, 7.0, 9.0),
    (4, 4.0, 6.0, 2.0),
    (5, 5.0, 5.0, 8.0),
    (6, 6.0, 4.0, 3.0),
    (7, 7.0, 3.0, 7.0),
    (8, 8.0, 2.0, 4.0),
    (9, 9.0, 1.0, 6.0),
    (10, 5.0, 5.0, 5.0),
    (11, 9.0, 9.0, 9.0),
    (12, 2.0, 9.0, 9.0),
]

COLUMNS = [("id", INTEGER, False), ("a", DOUBLE, False),
           ("b", DOUBLE, False), ("c", DOUBLE, False)]


@pytest.fixture
def service() -> CatalogService:
    service = CatalogService()
    session = service.session_for()
    session.create_table("pts", COLUMNS, POINTS)
    return service


def shape_of(service: CatalogService, sql: str):
    session = service.session_for()
    prepared = session.prepare(session.sql(sql).plan)
    return cacheable_shape(prepared.optimized)


def run(service: CatalogService, sql: str):
    return service.execute(service.session_for(), sql)


def oracle(rows, spec):
    dims = [BoundDimension(i, kind) for i, kind in spec]
    return sorted(skyline_oracle(rows, dims))


class TestCacheableShape:
    def test_select_star_skyline_is_cacheable(self, service):
        shape = shape_of(
            service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert shape is not None
        assert shape.table == "pts"
        assert shape.dims == ((("a"), DimensionKind.MIN),
                              (("b"), DimensionKind.MIN))
        assert shape.indices == (1, 2)

    def test_where_filter_not_cacheable(self, service):
        assert shape_of(
            service,
            "SELECT * FROM pts WHERE a > 2 SKYLINE OF a MIN, b MIN"
        ) is None

    def test_column_subset_not_cacheable(self, service):
        assert shape_of(
            service, "SELECT a, b FROM pts SKYLINE OF a MIN, b MIN"
        ) is None

    def test_distinct_not_cacheable(self, service):
        assert shape_of(
            service,
            "SELECT * FROM pts SKYLINE OF DISTINCT a MIN, b MIN"
        ) is None

    def test_plain_select_not_cacheable(self, service):
        assert shape_of(service, "SELECT * FROM pts") is None

    def test_key_is_order_insensitive(self, service):
        ab = shape_of(service,
                      "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        ba = shape_of(service,
                      "SELECT * FROM pts SKYLINE OF b MIN, a MIN")
        assert ab.key == ba.key


class TestContainmentLookup:
    def test_exact_hit_is_bit_identical(self, service):
        cold = run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        hot = run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert not cold.cache_hit and hot.cache_hit
        assert hot.as_tuples() == cold.as_tuples()
        assert service.result_cache.stats.exact_hits == 1

    def test_subset_refilter_matches_oracle(self, service):
        run(service,
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN")
        for sql, spec in [
            ("SELECT * FROM pts SKYLINE OF a MIN, b MIN",
             [(1, DimensionKind.MIN), (2, DimensionKind.MIN)]),
            ("SELECT * FROM pts SKYLINE OF b MIN, c MIN",
             [(2, DimensionKind.MIN), (3, DimensionKind.MIN)]),
            ("SELECT * FROM pts SKYLINE OF a MIN, c MIN",
             [(1, DimensionKind.MIN), (3, DimensionKind.MIN)]),
        ]:
            hot = run(service, sql)
            assert hot.cache_hit
            assert sorted(hot.as_tuples()) == oracle(POINTS, spec)

    def test_subset_bit_identical_vs_cold_service(self, service):
        run(service,
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN")
        hot = run(service, "SELECT * FROM pts SKYLINE OF a MIN, c MIN")
        assert hot.cache_hit
        cold_service = CatalogService()
        cold_service.session_for().create_table("pts", COLUMNS, POINTS)
        cold = run(cold_service,
                   "SELECT * FROM pts SKYLINE OF a MIN, c MIN")
        assert not cold.cache_hit
        assert sorted(hot.as_tuples()) == sorted(cold.as_tuples())

    def test_superset_query_misses(self, service):
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        out = run(service,
                  "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN")
        assert not out.cache_hit

    def test_mixed_kinds_refilter(self, service):
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MAX, c MIN")
        hot = run(service, "SELECT * FROM pts SKYLINE OF b MAX, c MIN")
        assert hot.cache_hit
        assert sorted(hot.as_tuples()) == oracle(
            POINTS, [(2, DimensionKind.MAX), (3, DimensionKind.MIN)])

    def test_cache_disabled_never_hits(self, service):
        service.result_cache_enabled = False
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        out = run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert not out.cache_hit
        assert len(service.result_cache) == 0


class TestInvalidation:
    FULL = "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN"

    def test_dominated_insert_keeps_entry(self, service):
        run(service, self.FULL)
        # (9.5, 9.5, 9.5) is dominated by row 10 = (5, 5, 5).
        service.catalog.insert_into("pts", [(99, 9.5, 9.5, 9.5)])
        out = run(service, self.FULL)
        assert out.cache_hit
        assert sorted(out.as_tuples()) == oracle(
            POINTS, [(1, DimensionKind.MIN), (2, DimensionKind.MIN),
                     (3, DimensionKind.MIN)])

    def test_subset_after_dominated_insert_sees_table(self, service):
        run(service, self.FULL)
        service.catalog.insert_into("pts", [(99, 9.5, 9.5, 9.5)])
        hot = run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert hot.cache_hit
        assert sorted(hot.as_tuples()) == oracle(
            POINTS + [(99, 9.5, 9.5, 9.5)],
            [(1, DimensionKind.MIN), (2, DimensionKind.MIN)])

    def test_surviving_insert_invalidates(self, service):
        run(service, self.FULL)
        service.catalog.insert_into("pts", [(99, 0.5, 0.5, 0.5)])
        out = run(service, self.FULL)
        assert not out.cache_hit
        assert (99, 0.5, 0.5, 0.5) in out.as_tuples()

    def test_tying_insert_invalidates(self, service):
        run(service, self.FULL)
        # Ties skyline member (2, 2.0, 8.0, 1.0) in every dimension and
        # no other row dominates it; ties are not strict dominance, so
        # the entry goes (the new row belongs in the skyline itself).
        service.catalog.insert_into("pts", [(99, 2.0, 8.0, 1.0)])
        out = run(service, self.FULL)
        assert not out.cache_hit
        assert (99, 2.0, 8.0, 1.0) in out.as_tuples()

    def test_delete_nonmember_keeps_entry(self, service):
        run(service, self.FULL)
        service.catalog.delete_from("pts", rows=[(11, 9.0, 9.0, 9.0)])
        out = run(service, self.FULL)
        assert out.cache_hit
        remaining = [r for r in POINTS if r[0] != 11]
        assert sorted(out.as_tuples()) == oracle(
            remaining, [(1, DimensionKind.MIN), (2, DimensionKind.MIN),
                        (3, DimensionKind.MIN)])

    def test_subset_after_delete_rebuilds_matrix(self, service):
        run(service, self.FULL)
        service.catalog.delete_from("pts", rows=[(11, 9.0, 9.0, 9.0)])
        hot = run(service, "SELECT * FROM pts SKYLINE OF b MIN, c MIN")
        assert hot.cache_hit
        remaining = [r for r in POINTS if r[0] != 11]
        assert sorted(hot.as_tuples()) == oracle(
            remaining, [(2, DimensionKind.MIN), (3, DimensionKind.MIN)])

    def test_delete_member_invalidates(self, service):
        run(service, self.FULL)
        service.catalog.delete_from("pts", rows=[(2, 2.0, 8.0, 1.0)])
        out = run(service, self.FULL)
        assert not out.cache_hit
        assert (2, 2.0, 8.0, 1.0) not in out.as_tuples()

    def test_register_flushes_table(self, service):
        run(service, self.FULL)
        assert len(service.result_cache) == 1
        service.session_for().create_table("pts", COLUMNS, POINTS[:4])
        assert len(service.result_cache) == 0
        out = run(service, self.FULL)
        assert not out.cache_hit
        assert len(out.as_tuples()) == len(oracle(
            POINTS[:4],
            [(1, DimensionKind.MIN), (2, DimensionKind.MIN),
             (3, DimensionKind.MIN)]))

    def test_drop_flushes_table(self, service):
        run(service, self.FULL)
        service.catalog.drop("pts")
        assert len(service.result_cache) == 0

    def test_unrelated_table_dml_keeps_entry(self, service):
        session = service.session_for()
        session.create_table("other", COLUMNS, POINTS[:3])
        run(service, self.FULL)
        service.catalog.insert_into("other", [(99, 1.0, 1.0, 1.0)])
        hot = run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert hot.cache_hit
        assert sorted(hot.as_tuples()) == oracle(
            POINTS, [(1, DimensionKind.MIN), (2, DimensionKind.MIN)])


class TestNullSafety:
    def test_null_dimension_table_never_cached(self):
        service = CatalogService()
        session = service.session_for()
        session.create_table(
            "npts",
            [("id", INTEGER, False), ("a", DOUBLE, True),
             ("b", DOUBLE, True)],
            [(1, 1.0, None), (2, 2.0, 2.0), (3, None, 1.0)])
        sql = "SELECT * FROM npts SKYLINE OF a MIN, b MIN"
        run(service, sql)
        assert len(service.result_cache) == 0
        assert not run(service, sql).cache_hit

    def test_null_insert_invalidates(self):
        service = CatalogService()
        session = service.session_for()
        session.create_table(
            "npts",
            [("id", INTEGER, False), ("a", DOUBLE, True),
             ("b", DOUBLE, True)],
            [(1, 1.0, 3.0), (2, 2.0, 2.0), (3, 3.0, 1.0)])
        sql = "SELECT * FROM npts SKYLINE OF a MIN, b MIN"
        run(service, sql)
        assert len(service.result_cache) == 1
        # Null in a cached dimension: incomplete semantics from here on.
        service.catalog.insert_into("npts", [(4, None, 9.0)])
        assert len(service.result_cache) == 0
        assert not run(service, sql).cache_hit


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = SkylineResultCache(max_entries=2)
        from repro.engine.row import Schema

        def shape_for(table):
            from repro.serve.cache import CacheableShape
            return CacheableShape(table=table,
                                  dims=(("a", DimensionKind.MIN),),
                                  indices=(0,))

        schema = Schema([])
        for name in ("t1", "t2", "t3"):
            assert cache.store(shape_for(name), [(1.0,)], schema,
                               table_rows=[(1.0,), (2.0,)], version=1)
        assert len(cache) == 2
        assert cache.lookup(shape_for("t1"), [(1.0,)], 1) is None
        assert cache.lookup(shape_for("t3"), [(1.0,)], 1) is not None

    def test_store_refuses_null_result_rows(self):
        from repro.engine.row import Schema
        from repro.serve.cache import CacheableShape

        cache = SkylineResultCache()
        shape = CacheableShape(table="t",
                               dims=(("a", DimensionKind.MIN),),
                               indices=(0,))
        assert not cache.store(shape, [(None,)], Schema([]))
        assert len(cache) == 0

    def test_stats_counters(self, service):
        stats = service.result_cache.stats
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN")
        assert (stats.misses, stats.stores) == (1, 1)
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN")
        assert stats.exact_hits == 1
        run(service, "SELECT * FROM pts SKYLINE OF a MIN, b MIN")
        assert stats.refilter_hits == 1
        assert stats.hits == 2
        service.catalog.insert_into("pts", [(99, 0.0, 0.0, 0.0)])
        assert stats.invalidations == 1
        as_dict = stats.as_dict()
        assert as_dict["exact_hits"] == 1
        assert as_dict["invalidations"] == 1
