"""Differential-testing oracle suite.

Runs every (algorithm x partitioning x backend x vectorized) combination
through the full engine pipeline on seeded random datasets -- complete
and incomplete -- and asserts the skyline identical to the naive
all-pairs oracle.  This is the reference correctness net for the
vectorized kernel layer: any divergence between the columnar NumPy
kernels, the scalar reference kernels, the partitioning schemes and the
execution backends surfaces here as a row-level mismatch.

Pool-backed backends are shared at module scope so the process pool is
spawned once for the whole grid.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import SkylineSession
from repro.core import make_dimensions
from repro.core.vectorized import numpy_available
from repro.engine.backends import ProcessBackend, ThreadBackend
from repro.engine.types import DOUBLE, INTEGER
from repro.plan.planner import PARTITIONING_SCHEMES
from tests.conftest import skyline_oracle

SEED = 20230331  # EDBT 2023 -- fixed so failures reproduce exactly

#: Session strategies valid on complete data.
COMPLETE_ALGORITHMS = ("distributed-complete", "non-distributed-complete",
                       "distributed-incomplete", "sfs")
#: Strategies whose semantics are defined on incomplete data.
INCOMPLETE_ALGORITHMS = ("distributed-incomplete",)

BACKENDS = ("local", "thread", "process")

VECTORIZED_MODES = (False, "auto") if numpy_available() else (False,)

DIMS3 = make_dimensions([(1, "min"), (2, "max"), (3, "min")])
SQL3 = "SELECT * FROM t SKYLINE OF a MIN, b MAX, c MIN"
SQL3_DISTINCT = "SELECT * FROM t SKYLINE OF DISTINCT a MIN, b MAX, c MIN"


def _random_rows(n: int, seed: int, null_probability: float = 0.0
                 ) -> list[tuple]:
    """Seeded rows over a small value grid: ties, duplicates, and (for
    incomplete datasets) nulls are all likely."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        def value():
            if null_probability and rng.random() < null_probability:
                return None
            return rng.choice([0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0])
        rows.append((i, value(), value(), value()))
    # Exact duplicate tail exercises DISTINCT and window duplicates.
    rows.extend(rows[:n // 10])
    return rows


COMPLETE_ROWS = _random_rows(140, SEED)
INCOMPLETE_ROWS = _random_rows(110, SEED + 1, null_probability=0.25)

COMPLETE_ORACLE = sorted(skyline_oracle(COMPLETE_ROWS, DIMS3,
                                        complete=True), key=repr)
INCOMPLETE_ORACLE = sorted(skyline_oracle(INCOMPLETE_ROWS, DIMS3,
                                          complete=False), key=repr)


@pytest.fixture(scope="module")
def shared_backends():
    """One pool per parallel backend for the whole module."""
    backends = {
        "local": lambda: "local",
        "thread": None,
        "process": None,
    }
    thread = ThreadBackend(2)
    process = ProcessBackend(2)
    backends["thread"] = lambda: thread
    backends["process"] = lambda: process
    yield backends
    thread.close()
    process.close()


def _make_session(rows, nullable: bool, algorithm: str, scheme: str,
                  backend, vectorized,
                  columnar="auto") -> SkylineSession:
    session = SkylineSession(
        num_executors=3, skyline_algorithm=algorithm,
        skyline_partitioning=scheme, skyline_partitions=3,
        backend=backend, vectorized=vectorized, columnar=columnar)
    session.create_table(
        "t",
        [("id", INTEGER, False), ("a", DOUBLE, nullable),
         ("b", DOUBLE, nullable), ("c", DOUBLE, nullable)],
        rows)
    return session


@pytest.mark.parametrize(
    "algorithm,scheme,backend_name,vectorized",
    list(itertools.product(COMPLETE_ALGORITHMS, PARTITIONING_SCHEMES,
                           BACKENDS, VECTORIZED_MODES)))
def test_complete_data_matches_oracle(algorithm, scheme, backend_name,
                                      vectorized, shared_backends):
    session = _make_session(COMPLETE_ROWS, False, algorithm, scheme,
                            shared_backends[backend_name](), vectorized)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == COMPLETE_ORACLE, (
        f"{algorithm}/{scheme}/{backend_name}/vectorized={vectorized} "
        f"diverged from the all-pairs oracle")


@pytest.mark.parametrize(
    "algorithm,scheme,backend_name,vectorized",
    list(itertools.product(INCOMPLETE_ALGORITHMS, PARTITIONING_SCHEMES,
                           BACKENDS, VECTORIZED_MODES)))
def test_incomplete_data_matches_oracle(algorithm, scheme, backend_name,
                                        vectorized, shared_backends):
    session = _make_session(INCOMPLETE_ROWS, True, algorithm, scheme,
                            shared_backends[backend_name](), vectorized)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == INCOMPLETE_ORACLE, (
        f"{algorithm}/{scheme}/{backend_name}/vectorized={vectorized} "
        f"diverged from the null-aware all-pairs oracle")


@pytest.mark.parametrize("vectorized", VECTORIZED_MODES)
@pytest.mark.parametrize("algorithm", COMPLETE_ALGORITHMS)
def test_distinct_matches_oracle_modulo_representatives(algorithm,
                                                        vectorized):
    """DISTINCT keeps one row per skyline-dimension value set; compare
    on the dimension values, which are representative-independent."""
    session = _make_session(COMPLETE_ROWS, False, algorithm, "keep",
                            "local", vectorized)
    result = session.sql(SQL3_DISTINCT).to_tuples()
    expected = {row[1:] for row in COMPLETE_ORACLE}
    assert {row[1:] for row in result} == expected
    assert len(result) == len(expected)  # exactly one representative


@pytest.mark.parametrize("vectorized", VECTORIZED_MODES)
def test_auto_strategy_matches_oracle_on_both_datasets(vectorized):
    for rows, nullable, oracle in (
            (COMPLETE_ROWS, False, COMPLETE_ORACLE),
            (INCOMPLETE_ROWS, True, INCOMPLETE_ORACLE)):
        session = _make_session(rows, nullable, "auto", "keep", "local",
                                vectorized)
        assert sorted(session.sql(SQL3).to_tuples(), key=repr) == oracle


@pytest.mark.parametrize("vectorized", VECTORIZED_MODES)
def test_reference_sql_rewrite_matches_oracle(vectorized):
    """The plain-SQL NOT EXISTS rewrite against the same oracle."""
    session = _make_session(COMPLETE_ROWS, False, "auto", "keep", "local",
                            vectorized)
    sql = ("SELECT * FROM t AS o WHERE NOT EXISTS("
           "SELECT * FROM t AS i WHERE i.a <= o.a AND i.b >= o.b "
           "AND i.c <= o.c AND (i.a < o.a OR i.b > o.b OR i.c < o.c))")
    assert sorted(session.sql(sql).to_tuples(), key=repr) == \
        COMPLETE_ORACLE


@pytest.mark.parametrize(
    "algorithm,backend_name,columnar",
    list(itertools.product(COMPLETE_ALGORITHMS, BACKENDS,
                           (True, False))))
def test_columnar_plane_matches_oracle_complete(algorithm, backend_name,
                                                columnar,
                                                shared_backends):
    """The batch data plane against the all-pairs oracle.

    ``columnar=True`` exchanges ColumnBatches end to end (falling back
    to scalar-list columns without NumPy -- this leg also runs on the
    no-NumPy CI job); ``columnar=False`` pins the row reference plane.
    Results must be identical across both and every backend.
    """
    session = _make_session(COMPLETE_ROWS, False, algorithm, "keep",
                            shared_backends[backend_name](), "auto",
                            columnar=columnar)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == COMPLETE_ORACLE, (
        f"{algorithm}/{backend_name}/columnar={columnar} diverged "
        f"from the all-pairs oracle")


@pytest.mark.parametrize(
    "backend_name,columnar",
    list(itertools.product(BACKENDS, (True, False))))
def test_columnar_plane_matches_oracle_incomplete(backend_name, columnar,
                                                  shared_backends):
    session = _make_session(INCOMPLETE_ROWS, True,
                            "distributed-incomplete", "keep",
                            shared_backends[backend_name](), "auto",
                            columnar=columnar)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == INCOMPLETE_ORACLE, (
        f"columnar={columnar}/{backend_name} diverged from the "
        f"null-aware all-pairs oracle")


@pytest.mark.parametrize("columnar", (True, False))
@pytest.mark.parametrize("scheme", PARTITIONING_SCHEMES)
def test_columnar_plane_matches_oracle_under_partitioning(scheme,
                                                          columnar):
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            scheme, "local", "auto", columnar=columnar)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == COMPLETE_ORACLE


@pytest.mark.parametrize("columnar", (True, False))
def test_columnar_distinct_matches_oracle(columnar):
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", "local", "auto", columnar=columnar)
    result = session.sql(SQL3_DISTINCT).to_tuples()
    expected = {row[1:] for row in COMPLETE_ORACLE}
    assert {row[1:] for row in result} == expected
    assert len(result) == len(expected)


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_batch_mode_actually_ran():
    """Guard against silently testing the row plane twice: with
    columnar=True the data-plane operators must report batch mode."""
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", "local", "auto", columnar=True)
    plan = session.sql(SQL3).plan
    text = session.explain(plan)
    assert "Scan(t, 154 rows) [batch]" in text
    assert "[row]" not in text
    row_text = session.with_columnar(False).explain(plan)
    assert "[batch]" not in row_text


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_vectorized_kernels_actually_ran():
    """Guard against silently testing the scalar path twice: with
    vectorized=True and numeric data the skyline stages must record the
    vectorized kernel label."""
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", "local", True)
    result = session.sql(SQL3).run()
    kernels = {kernel
               for stage in result.context.summary()["stages"]
               if stage["name"].startswith("Skyline")
               for kernel in stage["kernels"]}
    assert kernels == {"vectorized"}


# -- shared-memory transport (PR 9) ----------------------------------------


def _shm_session(shared_memory, rows=None, nullable=False):
    from repro import SessionConfig
    config = SessionConfig(
        num_executors=3, skyline_algorithm="distributed-complete",
        backend="process", num_workers=2, columnar=True,
        shared_memory=shared_memory)
    session = SkylineSession(config=config)
    session.create_table(
        "t",
        [("id", INTEGER, False), ("a", DOUBLE, nullable),
         ("b", DOUBLE, nullable), ("c", DOUBLE, nullable)],
        COMPLETE_ROWS if rows is None else rows)
    return session


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_shared_memory_transport_matches_oracle():
    """The zero-copy leg must be bit-identical to the pickled leg and
    to the all-pairs oracle, and must leave /dev/shm clean."""
    from repro.engine.shm import leaked_segments, shared_memory_available
    if not shared_memory_available():
        pytest.skip("shared memory not available")
    before = set(leaked_segments())
    session = _shm_session(True)
    try:
        text = session.explain(session.sql(SQL3).plan)
        assert "[shm]" in text
        result = sorted(session.sql(SQL3).to_tuples(), key=repr)
        assert result == COMPLETE_ORACLE
    finally:
        session.close()
    assert set(leaked_segments()) <= before


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_shared_memory_disabled_marks_pickle():
    session = _shm_session(False)
    try:
        text = session.explain(session.sql(SQL3).plan)
        assert "[pickle]" in text and "[shm]" not in text
        result = sorted(session.sql(SQL3).to_tuples(), key=repr)
        assert result == COMPLETE_ORACLE
    finally:
        session.close()


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_shared_memory_no_leaks_after_worker_crash(monkeypatch):
    """Chaos leg: injected worker crashes during the skyline stage must
    not leak /dev/shm segments, and recovery stays bit-identical."""
    from repro.engine.faults import FAULT_PLAN_ENV
    from repro.engine.shm import leaked_segments, shared_memory_available
    if not shared_memory_available():
        pytest.skip("shared memory not available")
    before = set(leaked_segments())
    monkeypatch.setenv(FAULT_PLAN_ENV,
                       "seed=7,poison=SkylineLocal,max_injections=1")
    session = _shm_session(True)
    try:
        result = sorted(session.sql(SQL3).to_tuples(), key=repr)
        assert result == COMPLETE_ORACLE
    finally:
        session.close()
    assert set(leaked_segments()) <= before


@pytest.mark.skipif(not numpy_available(), reason="NumPy not available")
def test_shared_memory_prepared_inputs_stay_resident():
    """Re-executing a prepared query must re-serve the pinned input
    segments (no re-registration), and catalog DML must invalidate
    them so the next execution sees the new data."""
    from repro.engine.shm import shared_memory_available
    if not shared_memory_available():
        pytest.skip("shared memory not available")
    # Wide rows so partition batches clear the minimum share size.
    wide = [(i,) + tuple(float((i * 7 + j) % 97) for j in range(60))
            for i in range(3000)]
    session = _shm_session(True)
    session.create_table(
        "w", [("id", INTEGER, False)] + [(f"c{j}", DOUBLE, False)
                                         for j in range(60)], wide)
    try:
        prepared = session.prepare(session.sql(
            "SELECT * FROM w SKYLINE OF c0 MIN, c1 MIN").plan)
        first = session.execute_prepared(prepared)
        created = first.context.shm_stats["segments_created"]
        assert created > 0
        second = session.execute_prepared(prepared)
        assert second.context.shm_stats["segments_created"] == created
        assert second.context.shm_stats["handles_served"] > \
            first.context.shm_stats["handles_served"]
        assert sorted(map(tuple, second.rows)) == \
            sorted(map(tuple, first.rows))
        # DML bumps the table's data_version: the pinned inputs are
        # stale, so new segments must be registered and the dominating
        # row must appear in the result.
        session.catalog.insert_into("w", [(-1,) + (-1.0,) * 60])
        third = session.execute_prepared(prepared)
        assert third.context.shm_stats["segments_created"] > created
        assert any(row[0] == -1 for row in third.rows)
    finally:
        session.close()
