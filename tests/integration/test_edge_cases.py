"""Edge cases and failure behaviour across the pipeline."""

import pytest

from repro import (AnalysisError, DOUBLE, ExecutionError, INTEGER,
                   ParseError, STRING, SkylineSession)


@pytest.fixture
def session():
    return SkylineSession(num_executors=2)


class TestEmptyInputs:
    def test_skyline_of_empty_table(self, session):
        session.create_table(
            "void", [("a", INTEGER, False), ("b", INTEGER, False)], [])
        rows = session.sql(
            "SELECT a, b FROM void SKYLINE OF a MIN, b MAX").collect()
        assert rows == []

    def test_single_row_is_its_own_skyline(self, session):
        session.create_table("one", [("a", INTEGER, False)], [(42,)])
        rows = session.sql(
            "SELECT a FROM one SKYLINE OF a MIN").to_tuples()
        assert rows == [(42,)]

    def test_aggregate_of_empty_table(self, session):
        session.create_table("void", [("a", INTEGER, True)], [])
        rows = session.sql(
            "SELECT count(*) AS n, min(a) AS m FROM void").to_tuples()
        assert rows == [(0, None)]

    def test_join_against_empty_table(self, session):
        session.create_table("l", [("id", INTEGER, False)], [(1,)])
        session.create_table("r", [("id", INTEGER, False)], [])
        inner = session.sql(
            "SELECT l.id FROM l JOIN r ON l.id = r.id").to_tuples()
        assert inner == []
        left = session.sql(
            "SELECT l.id FROM l LEFT JOIN r ON l.id = r.id").to_tuples()
        assert left == [(1,)]


class TestDegenerateSkylines:
    def test_all_rows_identical(self, session):
        session.create_table(
            "same", [("a", INTEGER, False)], [(1,)] * 5)
        rows = session.sql(
            "SELECT a FROM same SKYLINE OF a MIN").to_tuples()
        assert rows == [(1,)] * 5  # ties all survive without DISTINCT

    def test_all_rows_identical_distinct(self, session):
        session.create_table(
            "same", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(1, 2)] * 5)
        rows = session.sql(
            "SELECT a, b FROM same "
            "SKYLINE OF DISTINCT a MIN, b MIN").to_tuples()
        assert rows == [(1, 2)]

    def test_totally_ordered_chain(self, session):
        session.create_table(
            "chain", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(i, i) for i in range(20)])
        rows = session.sql(
            "SELECT a FROM chain SKYLINE OF a MIN, b MIN").to_tuples()
        assert rows == [(0,)]

    def test_antichain_everything_survives(self, session):
        session.create_table(
            "anti", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(i, 20 - i) for i in range(20)])
        rows = session.sql(
            "SELECT a FROM anti SKYLINE OF a MIN, b MIN").to_tuples()
        assert len(rows) == 20

    def test_all_null_dimension_column(self, session):
        session.create_table(
            "nulls", [("a", INTEGER, True), ("b", INTEGER, False)],
            [(None, 1), (None, 2)])
        rows = session.sql(
            "SELECT b FROM nulls SKYLINE OF a MIN, b MIN").to_tuples()
        # a is never comparable; b decides: (None,1) dominates (None,2)
        # since both nulls share the bitmap partition.
        assert rows == [(1,)]

    def test_string_skyline_dimensions(self, session):
        session.create_table(
            "words", [("w", STRING, False), ("n", INTEGER, False)],
            [("apple", 1), ("banana", 2), ("apple", 3)])
        rows = session.sql(
            "SELECT w, n FROM words SKYLINE OF w MIN, n MAX").to_tuples()
        # ("apple", 3) dominates both: lexicographically smallest word
        # AND the highest n.
        assert rows == [("apple", 3)]


class TestErrorReporting:
    def test_parse_error_mentions_location(self, session):
        with pytest.raises(ParseError, match="line"):
            session.sql("SELECT a\nFROM t WHERE ???").collect()

    def test_unknown_column_names_the_node(self, session):
        session.create_table("t", [("a", INTEGER, False)], [(1,)])
        with pytest.raises(AnalysisError):
            session.sql("SELECT nope FROM t").collect()

    def test_skyline_on_string_with_min_is_fine_but_arith_is_not(
            self, session):
        session.create_table("t", [("s", STRING, False)], [("x",)])
        # Strings are orderable -> MIN/MAX allowed.
        assert session.sql(
            "SELECT s FROM t SKYLINE OF s MIN").to_tuples() == [("x",)]
        with pytest.raises(AnalysisError):
            session.sql("SELECT s + 1 AS bad FROM t").collect()

    def test_scalar_subquery_with_many_rows_fails(self, session):
        session.create_table("t", [("a", INTEGER, False)], [(1,), (2,)])
        with pytest.raises(ExecutionError, match="scalar subquery"):
            session.sql(
                "SELECT a FROM t WHERE a = (SELECT a FROM t)").collect()

    def test_type_mismatch_in_comparison(self, session):
        session.create_table(
            "t", [("s", STRING, False), ("n", INTEGER, False)],
            [("x", 1)])
        with pytest.raises(AnalysisError):
            session.sql("SELECT s FROM t WHERE s < n").collect()


class TestNumericEdges:
    def test_mixed_int_float_dimensions(self, session):
        session.create_table(
            "mixed", [("a", DOUBLE, False), ("b", INTEGER, False)],
            [(1.5, 2), (1.5, 3), (2.0, 1)])
        rows = session.sql(
            "SELECT a, b FROM mixed SKYLINE OF a MIN, b MAX").to_tuples()
        # (1.5, 3) dominates (1.5, 2) and (2.0, 1).
        assert rows == [(1.5, 3)]

    def test_negative_values(self, session):
        session.create_table(
            "neg", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(-5, -5), (0, 0), (-5, 0)])
        rows = session.sql(
            "SELECT a, b FROM neg SKYLINE OF a MIN, b MIN").to_tuples()
        assert rows == [(-5, -5)]

    def test_division_by_zero_in_projection_is_null(self, session):
        session.create_table("t", [("a", INTEGER, False)], [(1,)])
        rows = session.sql("SELECT a / 0 AS q FROM t").to_tuples()
        assert rows == [(None,)]


class TestExecutorEdges:
    def test_more_executors_than_rows(self):
        session = SkylineSession(num_executors=16)
        session.create_table(
            "tiny", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(1, 2), (2, 1)])
        rows = session.sql(
            "SELECT a FROM tiny SKYLINE OF a MIN, b MIN").to_tuples()
        assert sorted(rows) == [(1,), (2,)]

    def test_single_executor(self):
        session = SkylineSession(num_executors=1)
        session.create_table(
            "t", [("a", INTEGER, False)], [(3,), (1,), (2,)])
        rows = session.sql("SELECT a FROM t SKYLINE OF a MIN").to_tuples()
        assert rows == [(1,)]
