"""Pipelined-vs-staged differential suite.

Runs the morsel-driven pipelined executor across the full
(algorithm x partitioning x backend x columnar) grid -- complete and
incomplete data -- under an operator budget small enough to force
backpressure and disk spill, and asserts results bit-identical to the
all-pairs oracle (which the staged executor is held to by
``test_differential.py``).  DISTINCT representatives are additionally
compared against the staged executor directly, and a chaos leg proves
task retries hold when faults strike mid-pipeline.
"""

from __future__ import annotations

import itertools

import pytest

from repro import SkylineSession
from repro.engine.backends import ProcessBackend, ThreadBackend
from repro.engine.faults import FAULT_PLAN_ENV
from repro.engine.types import DOUBLE, INTEGER
from repro.plan.planner import PARTITIONING_SCHEMES
from tests.integration.test_differential import (COMPLETE_ALGORITHMS,
                                                 COMPLETE_ORACLE,
                                                 COMPLETE_ROWS,
                                                 INCOMPLETE_ORACLE,
                                                 INCOMPLETE_ROWS, SQL3,
                                                 SQL3_DISTINCT,
                                                 _random_rows)

BACKENDS = ("local", "thread", "process")

#: Small enough that a second 50-row morsel overflows it (so the grid
#: exercises backpressure + spill), large enough to stay meaningful.
TINY_BUDGET_MB = 0.002


@pytest.fixture(scope="module")
def shared_backends():
    """One pool per parallel backend for the whole module."""
    thread = ThreadBackend(2)
    process = ProcessBackend(2)
    backends = {
        "local": lambda: "local",
        "thread": lambda: thread,
        "process": lambda: process,
    }
    yield backends
    thread.close()
    process.close()


def _make_session(rows, nullable: bool, algorithm: str, scheme: str,
                  backend, columnar, execution="pipelined",
                  operator_memory_mb=TINY_BUDGET_MB) -> SkylineSession:
    from repro import SessionConfig
    session = SkylineSession(config=SessionConfig(
        num_executors=3, skyline_algorithm=algorithm,
        skyline_partitioning=scheme, skyline_partitions=3,
        backend=backend, columnar=columnar,
        execution=execution, operator_memory_mb=operator_memory_mb))
    session.create_table(
        "t",
        [("id", INTEGER, False), ("a", DOUBLE, nullable),
         ("b", DOUBLE, nullable), ("c", DOUBLE, nullable)],
        rows)
    return session


@pytest.mark.parametrize(
    "algorithm,scheme,backend_name,columnar",
    list(itertools.product(COMPLETE_ALGORITHMS, PARTITIONING_SCHEMES,
                           BACKENDS, (True, False))))
def test_pipelined_complete_matches_oracle(algorithm, scheme,
                                           backend_name, columnar,
                                           shared_backends):
    session = _make_session(COMPLETE_ROWS, False, algorithm, scheme,
                            shared_backends[backend_name](), columnar)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == COMPLETE_ORACLE, (
        f"pipelined {algorithm}/{scheme}/{backend_name}/"
        f"columnar={columnar} diverged from the all-pairs oracle")


@pytest.mark.parametrize(
    "scheme,backend_name,columnar",
    list(itertools.product(PARTITIONING_SCHEMES, BACKENDS,
                           (True, False))))
def test_pipelined_incomplete_matches_oracle(scheme, backend_name,
                                             columnar, shared_backends):
    session = _make_session(INCOMPLETE_ROWS, True,
                            "distributed-incomplete", scheme,
                            shared_backends[backend_name](), columnar)
    result = sorted(session.sql(SQL3).to_tuples(), key=repr)
    assert result == INCOMPLETE_ORACLE, (
        f"pipelined {scheme}/{backend_name}/columnar={columnar} "
        f"diverged from the null-aware all-pairs oracle")


@pytest.mark.parametrize("columnar", (True, False))
@pytest.mark.parametrize("algorithm", ("distributed-complete", "sfs"))
def test_pipelined_distinct_identical_to_staged(algorithm, columnar):
    """DISTINCT keeps the first-seen representative per value set; the
    morsel driver must pick the very same rows the staged scan does."""
    staged = _make_session(COMPLETE_ROWS, False, algorithm, "keep",
                           "local", columnar, execution="staged",
                           operator_memory_mb=None)
    pipelined = _make_session(COMPLETE_ROWS, False, algorithm, "keep",
                              "local", columnar)
    assert sorted(pipelined.sql(SQL3_DISTINCT).to_tuples(), key=repr) \
        == sorted(staged.sql(SQL3_DISTINCT).to_tuples(), key=repr)


def test_pipeline_report_and_metrics(shared_backends):
    """The per-operator metrics the tentpole promises: batches in/out,
    stall time, spilled bytes, peaks, and time-to-first-batch."""
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", shared_backends["thread"](), True)
    result = session.sql(SQL3).run()
    report = result.pipeline
    assert report is not None
    assert report["mode"] == "pipelined"
    assert report["source"] == "pipeline"
    assert report["waves"] >= 1
    assert report["budget_bytes"] == int(TINY_BUDGET_MB * 1e6)
    assert report["spilled_bytes"] > 0  # the tiny budget forced spill
    for name in ("scan", "map", "fold"):
        op = report["operators"][name]
        assert op["batches_in"] >= 0
        assert op["stall_s"] >= 0.0
        assert op["peak_bytes"] >= 0
    assert report["operators"]["fold"]["batches_in"] > 0
    assert result.time_to_first_batch_s is not None
    assert result.time_to_first_batch_s >= 0.0
    # The tracked high-water mark feeds peak_memory_mb on real backends.
    peaks = result.context.operator_peaks
    assert any(name.startswith("Pipeline.") for name in peaks)


def test_staged_session_reports_no_pipeline():
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", "local", True, execution="staged",
                            operator_memory_mb=None)
    result = session.sql(SQL3).run()
    assert result.pipeline is None


@pytest.mark.parametrize("backend_name", ("thread", "process"))
def test_chaos_mid_pipeline_stays_bit_identical(backend_name,
                                                monkeypatch):
    """Injected worker faults inside pipeline waves must be retried and
    leave the answer bit-identical (satellite: the PR-7 fault machinery
    applies to wave tasks unchanged).  A fresh backend is configured
    from its name so the fault plan is visible from the first task."""
    monkeypatch.setenv(FAULT_PLAN_ENV,
                       "seed=7,poison=Pipeline,max_injections=1")
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", backend_name, True)
    try:
        result = session.sql(SQL3).run()
        assert sorted(result.as_tuples(), key=repr) == COMPLETE_ORACLE
        faults = result.context.summary()["faults"]
        assert faults["retries"] >= 1  # the plan really injected
    finally:
        session.close()


def test_pipelined_explain_markers():
    session = _make_session(COMPLETE_ROWS, False, "distributed-complete",
                            "keep", "local", True)
    text = session.explain(session.sql(SQL3).plan)
    assert "[pipelined]" in text
    assert "== Execution ==" in text
    assert "execution    = pipelined" in text


def test_auto_mode_gates():
    """auto keeps the sequential local backend and small inputs staged,
    and turns pipelining on for parallel backends at scale."""
    from repro import SessionConfig
    small = SkylineSession(config=SessionConfig(num_executors=3,
                                                backend="thread"))
    small.create_table(
        "t", [("id", INTEGER, False), ("a", DOUBLE, False),
              ("b", DOUBLE, False), ("c", DOUBLE, False)],
        COMPLETE_ROWS)
    assert small.sql(SQL3).run().pipeline is None  # < row threshold

    local = SkylineSession(config=SessionConfig(num_executors=3))
    big_rows = _random_rows(5000, 1)
    local.create_table(
        "t", [("id", INTEGER, False), ("a", DOUBLE, False),
              ("b", DOUBLE, False), ("c", DOUBLE, False)], big_rows)
    run = local.sql(SQL3).run()
    assert run.pipeline is None  # sequential backend: no overlap to win
    # No marker noise on auto-resolved staged plans.
    assert "[pipelined]" not in local.explain(local.sql(SQL3).plan)

    big = SkylineSession(config=SessionConfig(
        num_executors=3, backend="thread", num_workers=2))
    big.create_table(
        "t", [("id", INTEGER, False), ("a", DOUBLE, False),
              ("b", DOUBLE, False), ("c", DOUBLE, False)], big_rows)
    try:
        result = big.sql(SQL3).run()
        assert result.pipeline is not None
        staged_ref = _make_session(big_rows, False,
                                   "distributed-complete", "keep",
                                   "local", "auto", execution="staged",
                                   operator_memory_mb=None)
        assert sorted(result.as_tuples(), key=repr) == \
            sorted(staged_ref.sql(SQL3).to_tuples(), key=repr)
    finally:
        big.close()
