"""Property tests: every backend computes the same skyline.

The architectural contract of the backend layer is that execution
strategy (sequential / threads / processes) is invisible in results:
``LocalBackend``, ``ThreadBackend`` and ``ProcessBackend`` must return
bit-identical skylines for both complete and incomplete semantics.
Hypothesis drives random datasets through the full SQL pipeline on
every backend; the process pool is shared across examples (one fork per
module, not per example) to keep the suite fast.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import SkylineSession
from repro.engine.backends import BACKEND_NAMES, create_backend
from repro.engine.types import INTEGER
from tests.conftest import skyline_oracle
from repro.core import make_dimensions

values = st.integers(0, 6)
maybe_values = st.one_of(st.none(), values)
complete_rows = st.lists(st.tuples(values, values, values), max_size=30)
nullable_rows = st.lists(
    st.tuples(maybe_values, maybe_values, maybe_values), max_size=25)

DIMS = make_dimensions([(0, "min"), (1, "max"), (2, "min")])


def canon(rows):
    """Order-insensitive, null-safe canonical form for comparisons."""
    return sorted(rows, key=repr)
SKYLINE_SQL = ("SELECT a, b, c FROM pts "
               "SKYLINE OF a MIN, b MAX, c MIN")


@pytest.fixture(scope="module")
def backends():
    instances = {name: create_backend(name, num_workers=2)
                 for name in BACKEND_NAMES}
    yield instances
    for instance in instances.values():
        instance.close()


def run_on(backend, rows, nullable, strategy="auto", num_executors=3):
    session = SkylineSession(num_executors=num_executors,
                             skyline_algorithm=strategy,
                             backend=backend)
    session.create_table(
        "pts", [("a", INTEGER, nullable), ("b", INTEGER, nullable),
                ("c", INTEGER, nullable)], rows)
    return session.sql(SKYLINE_SQL).to_tuples()


class TestCompleteSemantics:
    @given(complete_rows)
    @settings(max_examples=25, deadline=None)
    def test_backends_identical_distributed_complete(self, backends, rows):
        outputs = {name: run_on(instance, rows, nullable=False,
                                strategy="distributed-complete")
                   for name, instance in backends.items()}
        assert outputs["local"] == outputs["thread"] == outputs["process"]
        assert sorted(outputs["local"]) == sorted(
            skyline_oracle(rows, DIMS))

    @given(complete_rows)
    @settings(max_examples=10, deadline=None)
    def test_backends_identical_sfs(self, backends, rows):
        outputs = {name: run_on(instance, rows, nullable=False,
                                strategy="sfs")
                   for name, instance in backends.items()}
        assert outputs["local"] == outputs["thread"] == outputs["process"]

    @given(complete_rows, st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_executor_count_does_not_change_results(self, backends, rows,
                                                    executors):
        outputs = {name: run_on(instance, rows, nullable=False,
                                strategy="distributed-complete",
                                num_executors=executors)
                   for name, instance in backends.items()}
        assert outputs["local"] == outputs["thread"] == outputs["process"]


class TestIncompleteSemantics:
    @given(nullable_rows)
    @settings(max_examples=25, deadline=None)
    def test_backends_identical_distributed_incomplete(self, backends,
                                                       rows):
        outputs = {name: run_on(instance, rows, nullable=True,
                                strategy="distributed-incomplete")
                   for name, instance in backends.items()}
        assert outputs["local"] == outputs["thread"] == outputs["process"]
        assert canon(outputs["local"]) == canon(
            skyline_oracle(rows, DIMS, complete=False))


class TestMetricsAcrossBackends:
    def test_comparisons_and_sizes_agree(self, backends):
        rows = [(i % 7, (i * 3) % 11, (i * 5) % 13) for i in range(60)]
        summaries = {}
        for name, instance in backends.items():
            session = SkylineSession(num_executors=3, backend=instance)
            session.create_table(
                "pts", [("a", INTEGER, False), ("b", INTEGER, False),
                        ("c", INTEGER, False)], rows)
            result = session.execute(session.sql(SKYLINE_SQL).plan)
            summaries[name] = (len(result.rows),
                               result.context.dominance_comparisons)
        assert len(set(summaries.values())) == 1

    def test_real_time_recorded_on_every_backend(self, backends):
        rows = [(i, i, i) for i in range(20)]
        for name, instance in backends.items():
            session = SkylineSession(num_executors=2, backend=instance)
            session.create_table(
                "pts", [("a", INTEGER, False), ("b", INTEGER, False),
                        ("c", INTEGER, False)], rows)
            result = session.execute(session.sql(SKYLINE_SQL).plan)
            assert result.real_time_s > 0, name
