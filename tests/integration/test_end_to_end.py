"""End-to-end correctness: integrated skyline vs plain-SQL rewrite vs
brute-force oracle (the Section 5.9 verification methodology)."""

import pytest

from repro import SkylineSession
from repro.core import make_dimensions
from repro.datasets import (airbnb_workload, musicbrainz_workload,
                            store_sales_workload)
from tests.conftest import skyline_oracle


@pytest.fixture(scope="module")
def airbnb():
    session = SkylineSession(num_executors=3)
    workload = airbnb_workload(400, seed=5)
    workload.register(session)
    return session, workload


@pytest.fixture(scope="module")
def airbnb_incomplete():
    session = SkylineSession(num_executors=3)
    workload = airbnb_workload(400, seed=5, incomplete=True)
    workload.register(session)
    return session, workload


class TestIntegratedVsReference:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 5, 6])
    def test_airbnb_all_dimension_counts(self, airbnb, dims):
        session, workload = airbnb
        sky = session.sql(workload.skyline_sql(dims)).to_tuples()
        ref = session.sql(workload.reference_sql(dims)).to_tuples()
        assert sorted(sky) == sorted(ref)

    @pytest.mark.parametrize("dims", [1, 3, 6])
    def test_store_sales(self, dims):
        session = SkylineSession(num_executors=2)
        workload = store_sales_workload(300)
        workload.register(session)
        sky = session.sql(workload.skyline_sql(dims)).to_tuples()
        ref = session.sql(workload.reference_sql(dims)).to_tuples()
        assert sorted(sky) == sorted(ref)

    @pytest.mark.parametrize("dims", [2, 4, 6])
    def test_musicbrainz_complex_queries(self, dims):
        session = SkylineSession(num_executors=2)
        workload = musicbrainz_workload(200)
        workload.register(session)
        sky = session.sql(workload.skyline_sql(dims)).to_tuples()
        ref = session.sql(workload.reference_sql(dims)).to_tuples()
        assert sorted(sky) == sorted(ref)


class TestIntegratedVsOracle:
    def test_airbnb_against_brute_force(self, airbnb):
        session, workload = airbnb
        sky = session.sql(workload.skyline_sql(4)).to_tuples()
        dims = make_dimensions(
            [(workload_col_index(workload, name), kind)
             for name, kind in workload.dimensions(4)])
        expected = skyline_oracle(workload.rows, dims)
        assert sorted(sky) == sorted(expected)

    def test_incomplete_airbnb_against_null_aware_oracle(
            self, airbnb_incomplete):
        session, workload = airbnb_incomplete
        sky = session.sql(workload.skyline_sql(3)).to_tuples()
        dims = make_dimensions(
            [(workload_col_index(workload, name), kind)
             for name, kind in workload.dimensions(3)])
        expected = skyline_oracle(workload.rows, dims, complete=False)
        assert sorted(sky, key=repr) == sorted(expected, key=repr)


class TestAlgorithmStrategiesAgree:
    STRATEGIES = ("distributed-complete", "non-distributed-complete",
                  "distributed-incomplete", "sfs")

    def test_all_forced_strategies_same_result(self, airbnb):
        session, workload = airbnb
        results = {}
        for strategy in self.STRATEGIES:
            forced = session.with_skyline_algorithm(strategy)
            results[strategy] = sorted(
                forced.sql(workload.skyline_sql(5)).to_tuples())
        assert len({tuple(v) for v in results.values()}) == 1

    def test_executor_count_does_not_change_result(self, airbnb):
        session, workload = airbnb
        baseline = sorted(
            session.with_executors(1).sql(
                workload.skyline_sql(6)).to_tuples())
        for executors in (2, 5, 10):
            scaled = sorted(
                session.with_executors(executors).sql(
                    workload.skyline_sql(6)).to_tuples())
            assert scaled == baseline

    def test_incomplete_strategy_on_incomplete_data(
            self, airbnb_incomplete):
        session, workload = airbnb_incomplete
        auto = session.sql(workload.skyline_sql(4)).to_tuples()
        forced = session.with_skyline_algorithm(
            "distributed-incomplete").sql(
            workload.skyline_sql(4)).to_tuples()
        assert sorted(auto, key=repr) == sorted(forced, key=repr)


class TestDataFrameSqlParity:
    def test_dataframe_skyline_equals_sql(self, airbnb):
        session, workload = airbnb
        pairs = workload.dimensions(4)
        df_rows = session.table(workload.table_name).skyline_of(
            pairs).to_tuples()
        sql_rows = session.sql(workload.skyline_sql(4)).to_tuples()
        assert sorted(df_rows) == sorted(sql_rows)


class TestNoSideEffectsOnOtherQueries:
    """Section 5.9: the skyline integration must not disturb ordinary
    query processing."""

    def test_plain_queries_work(self, airbnb):
        session, workload = airbnb
        rows = session.sql(
            f"SELECT count(*) AS n FROM {workload.table_name}"
        ).to_tuples()
        assert rows == [(workload.num_rows,)]

    def test_group_by_join_order_by(self, airbnb):
        session, _ = airbnb
        session.create_table(
            "cities", [("id", None)], [])  # replaced below
        from repro.engine.types import INTEGER, STRING
        session.create_table(
            "lookup", [("accommodates", INTEGER, False),
                       ("label", STRING, False)],
            [(2, "couple"), (4, "family")])
        rows = session.sql("""
            SELECT label, count(*) AS n
            FROM airbnb JOIN lookup USING (accommodates)
            GROUP BY label ORDER BY n DESC
        """).to_tuples()
        assert len(rows) <= 2


def workload_col_index(workload, name):
    return [c[0] for c in workload.columns].index(name)
