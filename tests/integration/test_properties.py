"""Property-based tests of the full SQL pipeline (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SkylineSession
from repro.core import make_dimensions
from tests.conftest import skyline_oracle

from repro.engine.types import INTEGER

values = st.integers(0, 6)
maybe_values = st.one_of(st.none(), values)
complete_rows = st.lists(st.tuples(values, values, values), min_size=0,
                         max_size=35)
nullable_rows = st.lists(
    st.tuples(maybe_values, maybe_values, maybe_values), max_size=30)

KINDS = ["min", "max", "min"]
DIMS = make_dimensions([(0, "min"), (1, "max"), (2, "min")])


def run_skyline(rows, nullable, strategy="auto", num_executors=3,
                complete_keyword=False):
    session = SkylineSession(num_executors=num_executors,
                             skyline_algorithm=strategy)
    session.create_table(
        "pts", [("a", INTEGER, nullable), ("b", INTEGER, nullable),
                ("c", INTEGER, nullable)], rows)
    keyword = "COMPLETE " if complete_keyword else ""
    sql = (f"SELECT a, b, c FROM pts SKYLINE OF {keyword}"
           f"a MIN, b MAX, c MIN")
    return session.sql(sql).to_tuples()


class TestSqlSkylineProperties:
    @given(complete_rows)
    @settings(max_examples=40, deadline=None)
    def test_complete_pipeline_matches_oracle(self, rows):
        result = run_skyline(rows, nullable=False)
        expected = skyline_oracle(rows, DIMS)
        assert sorted(result) == sorted(expected)

    @given(nullable_rows)
    @settings(max_examples=40, deadline=None)
    def test_incomplete_pipeline_matches_null_aware_oracle(self, rows):
        result = run_skyline(rows, nullable=True)
        expected = skyline_oracle(rows, DIMS, complete=False)
        assert sorted(result, key=repr) == sorted(expected, key=repr)

    @given(complete_rows, st.sampled_from(
        ["distributed-complete", "non-distributed-complete",
         "distributed-incomplete", "sfs"]))
    @settings(max_examples=40, deadline=None)
    def test_every_strategy_matches_oracle_on_complete_data(
            self, rows, strategy):
        result = run_skyline(rows, nullable=False, strategy=strategy)
        expected = skyline_oracle(rows, DIMS)
        assert sorted(result) == sorted(expected)

    @given(complete_rows, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_executor_count_invariance(self, rows, executors):
        result = run_skyline(rows, nullable=False,
                             num_executors=executors)
        expected = skyline_oracle(rows, DIMS)
        assert sorted(result) == sorted(expected)

    @given(complete_rows)
    @settings(max_examples=25, deadline=None)
    def test_complete_keyword_on_truly_complete_data_is_safe(self, rows):
        with_keyword = run_skyline(rows, nullable=True,
                                   complete_keyword=True)
        expected = skyline_oracle(rows, DIMS)
        assert sorted(with_keyword) == sorted(expected)

    @given(complete_rows)
    @settings(max_examples=25, deadline=None)
    def test_skyline_is_subset_and_undominated(self, rows):
        from repro.core import dominates
        result = run_skyline(rows, nullable=False)
        for r in result:
            assert r in rows
            assert not any(dominates(s, r, DIMS) for s in rows)

    @given(complete_rows)
    @settings(max_examples=25, deadline=None)
    def test_every_excluded_tuple_is_dominated(self, rows):
        from repro.core import dominates
        result = run_skyline(rows, nullable=False)
        excluded = [r for r in rows if r not in result]
        for r in excluded:
            assert any(dominates(s, r, DIMS) for s in rows)
