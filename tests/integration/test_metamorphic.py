"""Metamorphic property tests for the skyline kernels.

Each property relates the skyline of a transformed input to the skyline
of the original *without* re-deriving it from an oracle:

* row shuffling never changes the skyline (as a multiset);
* injecting duplicates of skyline rows adds exactly those copies
  (and changes nothing under DISTINCT);
* monotone rescaling of MIN/MAX dimensions preserves skyline
  *membership* (tracked through an id column);
* inserting rows dominated by an existing row never changes the result.

Every property runs against the scalar and (when NumPy is available)
the vectorized kernels, at both the library level and through the
engine pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro import SkylineSession
from repro.core import bnl_skyline, make_dimensions, vec_bnl_skyline
from repro.core.vectorized import numpy_available
from repro.engine.types import DOUBLE, INTEGER

SEED = 99
DIMS = make_dimensions([(1, "min"), (2, "max"), (3, "min")])

KERNELS = [pytest.param(bnl_skyline, id="scalar")]
if numpy_available():
    KERNELS.append(pytest.param(vec_bnl_skyline, id="vectorized"))


def make_rows(n: int = 120, seed: int = SEED) -> list[tuple]:
    rng = random.Random(seed)
    return [(i, rng.choice([0.0, 0.5, 1.0, 1.5, 2.0]),
             rng.uniform(0, 2), rng.randrange(5))
            for i in range(n)]


def srt(rows):
    return sorted(rows, key=repr)


@pytest.mark.parametrize("kernel", KERNELS)
class TestShuffleInvariance:
    def test_skyline_is_order_independent(self, kernel):
        rows = make_rows()
        baseline = srt(kernel(rows, DIMS))
        for seed in range(3):
            shuffled = list(rows)
            random.Random(seed).shuffle(shuffled)
            assert srt(kernel(shuffled, DIMS)) == baseline


@pytest.mark.parametrize("kernel", KERNELS)
class TestDuplicateInjection:
    def test_duplicates_of_skyline_rows_are_kept(self, kernel):
        rows = make_rows()
        baseline = kernel(rows, DIMS)
        dup = baseline[0]
        augmented = rows + [dup]
        assert srt(kernel(augmented, DIMS)) == srt(baseline + [dup])

    def test_distinct_collapses_duplicates(self, kernel):
        rows = make_rows()
        baseline = kernel(rows, DIMS, distinct=True)
        # Duplicate every skyline row: DISTINCT output is unchanged on
        # the skyline dimensions (one representative per value set).
        augmented = rows + [row for row in baseline]
        result = kernel(augmented, DIMS, distinct=True)
        assert {r[1:] for r in result} == {r[1:] for r in baseline}
        assert len(result) == len(baseline)


@pytest.mark.parametrize("kernel", KERNELS)
class TestMonotoneRescaling:
    def test_rescaling_preserves_membership(self, kernel):
        rows = make_rows()
        baseline_ids = {r[0] for r in kernel(rows, DIMS)}
        # Strictly increasing maps per kind: MIN x -> 3x + 1,
        # MAX x -> 2x - 5 -- dominance comparisons are unchanged.
        rescaled = [(i, 3 * a + 1, 2 * b - 5, 3 * c + 1)
                    for i, a, b, c in rows]
        assert {r[0] for r in kernel(rescaled, DIMS)} == baseline_ids


@pytest.mark.parametrize("kernel", KERNELS)
class TestDominatedInsertion:
    def test_dominated_rows_never_change_the_result(self, kernel):
        rows = make_rows()
        baseline = srt(kernel(rows, DIMS))
        anchor = rows[0]
        # Strictly worse in every value dimension (MIN up, MAX down).
        dominated = [(1000 + j, anchor[1] + 1 + j, anchor[2] - 1 - j,
                      anchor[3] + 1 + j) for j in range(5)]
        assert srt(kernel(rows + dominated, DIMS)) == baseline
        assert srt(kernel(dominated + rows, DIMS)) == baseline


@pytest.mark.parametrize("vectorized",
                         [False] + (["auto"] if numpy_available() else []))
class TestEnginePipelineMetamorphic:
    """The same properties through SQL, exercising scan partitioning."""

    SQL = "SELECT * FROM t SKYLINE OF a MIN, b MAX, c MIN"

    def _run(self, rows, vectorized):
        session = SkylineSession(num_executors=3, vectorized=vectorized)
        session.create_table(
            "t",
            [("id", INTEGER, False), ("a", DOUBLE, False),
             ("b", DOUBLE, False), ("c", DOUBLE, False)],
            rows)
        return srt(session.sql(self.SQL).to_tuples())

    def test_shuffle_and_dominated_insertion(self, vectorized):
        rows = make_rows(90)
        baseline = self._run(rows, vectorized)
        shuffled = list(rows)
        random.Random(5).shuffle(shuffled)
        assert self._run(shuffled, vectorized) == baseline
        worst = [(2000, 99.0, -99.0, 99.0)]
        assert self._run(rows + worst, vectorized) == baseline
