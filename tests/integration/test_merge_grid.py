"""Differential grid for the hierarchical global merge.

Every cell runs the same skyline query twice -- hierarchical
tournament-tree merge vs the flat all-pairs oracle -- on sessions that
differ in *nothing else*, and requires the answers bit-identical,
order included.  The grid crosses tree shapes (executor counts),
fan-ins, partitioning schemes, backends, and kernel families; chaos
and deadline legs prove the tree composes with the fault-tolerance
layer, and the nullable regression pins the planner's refusal to
merge incomplete data pairwise.
"""

import math

import pytest

from repro import DOUBLE, INTEGER, STRING, SessionConfig, SkylineSession
from repro.engine.cluster import ExecutionContext
from repro.engine.faults import FaultPlan, activate
from repro.errors import QueryTimeout

SQL = "SELECT name, a, b, c FROM t SKYLINE OF a MIN, b MIN, c MAX"


def make_rows(n=4000, seed=17):
    """Deterministic anti-correlated-ish rows with heavy ties."""
    rows = []
    state = seed
    for i in range(n):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        a = (state >> 8) % 997
        b = 997 - a + state % 13
        c = state % 61
        rows.append((f"r{i}", float(a), float(b), float(c)))
    return rows


ROWS = make_rows()
SCHEMA = [("name", STRING, False), ("a", DOUBLE, False),
          ("b", DOUBLE, False), ("c", DOUBLE, False)]


def run_query(rows=ROWS, sql=SQL, **config):
    session = SkylineSession(config=SessionConfig(**config))
    session.create_table("t", SCHEMA, rows)
    return session.sql(sql).run()


class TestDifferentialGrid:
    @pytest.mark.parametrize("num_executors", [6, 10])
    @pytest.mark.parametrize("fan_in", [2, 4])
    @pytest.mark.parametrize("partitioning",
                             ["keep", "random", "grid"])
    @pytest.mark.parametrize("backend", ["local", "thread"])
    def test_bit_identical_to_flat_oracle(self, num_executors, fan_in,
                                          partitioning, backend):
        common = dict(num_executors=num_executors, backend=backend,
                      skyline_partitioning=partitioning)
        oracle = run_query(global_merge="flat", **common)
        tree = run_query(global_merge="hierarchical",
                         merge_fan_in=fan_in, **common)
        assert tree.as_tuples() == oracle.as_tuples()
        merge = tree.global_merge
        assert merge["strategy"] == "hierarchical"
        assert merge["fallback"] is None
        assert merge["rounds_completed"] == merge["rounds_planned"] > 0
        assert len(merge["round_tasks"]) == merge["rounds_completed"]

    def test_two_tree_shapes_actually_differ(self):
        small = run_query(num_executors=6, global_merge="hierarchical")
        large = run_query(num_executors=10, global_merge="hierarchical")
        assert small.global_merge["tree"] == "6 -> 3 -> 2 -> 1"
        assert large.global_merge["tree"] == "10 -> 5 -> 3 -> 2 -> 1"
        assert small.as_tuples() == large.as_tuples()

    @pytest.mark.parametrize("vectorized,columnar",
                             [(False, False), (True, True),
                              (True, False)])
    def test_kernel_families_agree(self, vectorized, columnar):
        try:
            common = dict(num_executors=8, vectorized=vectorized,
                          columnar=columnar)
        except ValueError:
            pytest.skip("NumPy unavailable")
        try:
            oracle = run_query(global_merge="flat", **common)
        except ValueError:
            pytest.skip("NumPy unavailable")
        tree = run_query(global_merge="hierarchical", **common)
        assert tree.as_tuples() == oracle.as_tuples()

    def test_sfs_algorithm_merges_hierarchically(self):
        common = dict(num_executors=8, skyline_algorithm="sfs")
        oracle = run_query(global_merge="flat", **common)
        tree = run_query(global_merge="hierarchical", **common)
        assert tree.as_tuples() == oracle.as_tuples()
        assert tree.global_merge["strategy"] == "hierarchical"

    def test_explain_reports_merge_section(self):
        session = SkylineSession(config=SessionConfig(
            num_executors=10, global_merge="hierarchical"))
        session.create_table("t", SCHEMA, ROWS)
        text = session.explain(session.sql(SQL).plan)
        assert "== Global Merge ==" in text
        assert "hierarchical" in text
        assert "10 -> 5 -> 3 -> 2 -> 1" in text
        assert "[merge tree fan-in 2]" in text

    def test_stage_metrics_surface_rounds(self):
        result = run_query(num_executors=10,
                           global_merge="hierarchical")
        summary = result.context.summary()
        assert summary["global_merge"]["strategy"] == "hierarchical"
        round_stages = [s for s in summary["stages"]
                        if ".round" in s["name"]]
        assert [s["tasks"] for s in round_stages] == \
            result.global_merge["round_tasks"]


class TestRuntimeFallbacks:
    def test_nan_values_force_flat_at_runtime(self):
        # NaN breaks dominance transitivity, which the planner cannot
        # see (schema says non-nullable DOUBLE); the executor must
        # detect it per query and run the all-pairs phase instead.
        rows = ROWS[:200] + [("nanrow", float("nan"), 1.0, 2.0)]
        oracle = run_query(rows=rows, num_executors=6,
                           global_merge="flat")
        tree = run_query(rows=rows, num_executors=6,
                         global_merge="hierarchical")

        def nan_key(t):
            return tuple("NaN" if isinstance(v, float) and math.isnan(v)
                         else v for v in t)

        assert [nan_key(t) for t in tree.as_tuples()] == \
            [nan_key(t) for t in oracle.as_tuples()]
        merge = tree.global_merge
        assert merge["strategy"] == "flat"
        assert "NaN" in merge["fallback"]

    def test_single_partial_needs_no_tree(self):
        result = run_query(num_executors=1, global_merge="hierarchical")
        assert result.global_merge["strategy"] == "flat"


class TestNullableNeverHierarchical:
    """The planner must NEVER merge pairwise when a skyline dimension
    is nullable: with incomplete rows, dominance is not transitive, so
    a partial-local dominator can erase a row its victim was protecting
    globally (see tests/core/test_merge.py for the value-level
    counterexample).
    """

    NULLABLE_SCHEMA = [("id", INTEGER, False), ("a", INTEGER, True),
                       ("b", INTEGER, True)]
    #: Incomplete-data counterexample shape: (1, None) and (None, 5)
    #: are mutually incomparable with (0, 2) only pairwise-locally.
    NULLABLE_ROWS = [(1, 1, None), (2, None, 5), (3, 0, 2), (4, 7, 7)]

    def nullable_session(self, **overrides):
        session = SkylineSession(config=SessionConfig(
            num_executors=4, **overrides))
        session.create_table("t", self.NULLABLE_SCHEMA,
                             self.NULLABLE_ROWS)
        return session

    def test_incomplete_algorithm_is_always_flat(self):
        session = self.nullable_session(global_merge="hierarchical")
        result = session.sql(
            "SELECT id, a, b FROM t SKYLINE OF a MIN, b MIN").run()
        merge = result.global_merge
        assert merge["strategy"] == "flat"
        assert "not transitive" in merge["reason"]

    def test_complete_keyword_on_nullable_schema_stays_flat(self):
        # COMPLETE forces the complete-data *algorithm*, but the merge
        # decision still sees nullable dimensions and must refuse the
        # tree -- even when the session forces hierarchical.
        session = self.nullable_session(global_merge="hierarchical")
        rows = [r for r in self.NULLABLE_ROWS
                if r[1] is not None and r[2] is not None]
        session2 = SkylineSession(config=SessionConfig(
            num_executors=4, global_merge="hierarchical"))
        session2.create_table("t", self.NULLABLE_SCHEMA, rows)
        result = session2.sql(
            "SELECT id, a, b FROM t "
            "SKYLINE OF COMPLETE a MIN, b MIN").run()
        merge = result.global_merge
        assert merge["strategy"] == "flat"
        assert "nullable" in merge["reason"]

    def test_explain_shows_refusal_reason(self):
        session = self.nullable_session(global_merge="hierarchical")
        plan = session.sql(
            "SELECT id, a, b FROM t SKYLINE OF a MIN, b MIN").plan
        text = session.explain(plan)
        assert "== Global Merge ==" in text
        assert "flat" in text
        assert "not transitive" in text


class TestChaosLeg:
    def test_poisoned_round_task_recovers_bit_identically(self):
        # Crash the first task of merge round 1 on every attempt below
        # the injection cap: the retry layer must re-run only that
        # subtree and converge on the exact clean-run answer.
        clean = run_query(num_executors=8, backend="thread",
                          global_merge="hierarchical")
        plan = FaultPlan(seed=11, poison="round1#0", max_injections=2)
        with activate(plan):
            chaotic = run_query(num_executors=8, backend="thread",
                                global_merge="hierarchical")
        assert chaotic.as_tuples() == clean.as_tuples()
        assert chaotic.global_merge == clean.global_merge
        stats = chaotic.context.fault_stats
        assert stats.crash_recoveries >= 1
        poisoned = [t for s in chaotic.context.stages
                    if "round1" in s.name for t in s.tasks
                    if t.partition == 0]
        assert poisoned and poisoned[0].attempts > 1

    def test_unrelated_stages_not_rerun(self):
        plan = FaultPlan(seed=11, poison="round1#0", max_injections=2)
        with activate(plan):
            result = run_query(num_executors=8, backend="thread",
                               global_merge="hierarchical")
        for stage in result.context.stages:
            if "round1" not in stage.name:
                assert all(t.attempts == 1 for t in stage.tasks)


class TestDeadlineMidTree:
    def test_timeout_reports_completed_rounds(self, monkeypatch):
        original = ExecutionContext.run_stage

        def expiring(self, stage, tasks, parallelizable=True):
            result = original(self, stage, tasks, parallelizable)
            if ".round1" in stage:
                # Collapse the budget the moment round 1 lands, so the
                # next round's entry check trips mid-tree.
                self.set_budget(0.0)
            return result

        monkeypatch.setattr(ExecutionContext, "run_stage", expiring)
        with pytest.raises(QueryTimeout) as exc:
            run_query(num_executors=10, global_merge="hierarchical",
                      time_budget_s=60.0)
        stats = exc.value.partial_stats
        assert stats["merge_rounds_completed"] == 1
        assert stats["merge_rounds_planned"] == 4
        assert exc.value.budget == 0.0
        assert exc.value.elapsed >= 0.0


class TestConfigSurface:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="global_merge"):
            SessionConfig(global_merge="tournament")

    def test_invalid_fan_in_rejected(self):
        with pytest.raises(ValueError, match="merge_fan_in"):
            SessionConfig(merge_fan_in=1)

    def test_fingerprint_distinguishes_merge_settings(self):
        base = SessionConfig()
        assert base.fingerprint() != \
            SessionConfig(global_merge="flat").fingerprint()
        assert SessionConfig(merge_fan_in=2).fingerprint() != \
            SessionConfig(merge_fan_in=4).fingerprint()
