"""SQL feature coverage: the skyline clause interacting with the rest
of the language, plus general SQL semantics end to end."""

import pytest

from repro import DOUBLE, INTEGER, STRING, SkylineSession


@pytest.fixture
def shop():
    session = SkylineSession(num_executors=2)
    session.create_table(
        "products",
        [("id", INTEGER, False), ("category", STRING, False),
         ("price", DOUBLE, False), ("quality", INTEGER, False)],
        [
            (1, "phone", 700.0, 8),
            (2, "phone", 500.0, 7),
            (3, "phone", 900.0, 8),   # dominated by 1 (price)
            (4, "laptop", 1200.0, 9),
            (5, "laptop", 1000.0, 6),
            (6, "laptop", 1500.0, 9),  # dominated by 4
            (7, "tablet", 300.0, 5),
        ])
    session.create_table(
        "stock",
        [("id", INTEGER, False), ("units", INTEGER, False)],
        [(1, 3), (2, 0), (4, 7), (7, 2)])
    return session


class TestSkylineWithDiff:
    def test_diff_partitions_by_category(self, shop):
        rows = shop.sql(
            "SELECT id FROM products "
            "SKYLINE OF category DIFF, price MIN, quality MAX "
            "ORDER BY id").to_tuples()
        # Per-category skylines: phones {1,2}, laptops {4,5}, tablet {7}.
        assert rows == [(1,), (2,), (4,), (5,), (7,)]

    def test_diff_equals_groupwise_skyline(self, shop):
        with_diff = shop.sql(
            "SELECT id FROM products "
            "SKYLINE OF category DIFF, price MIN, quality MAX").to_tuples()
        manual = []
        for category in ("phone", "laptop", "tablet"):
            manual.extend(shop.sql(
                f"SELECT id FROM products WHERE category = '{category}' "
                f"SKYLINE OF price MIN, quality MAX").to_tuples())
        assert sorted(with_diff) == sorted(manual)


class TestSkylineDistinctSql:
    def test_distinct_removes_dimension_duplicates(self, shop):
        shop.create_table(
            "dupes", [("a", INTEGER, False), ("b", INTEGER, False),
                      ("tag", STRING, False)],
            [(1, 1, "x"), (1, 1, "y"), (0, 2, "z")])
        rows = shop.sql(
            "SELECT a, b FROM dupes "
            "SKYLINE OF DISTINCT a MIN, b MIN").to_tuples()
        assert sorted(rows) == [(0, 2), (1, 1)]


class TestSkylineComposition:
    def test_skyline_then_order_by_then_limit(self, shop):
        rows = shop.sql(
            "SELECT id, price FROM products "
            "SKYLINE OF price MIN, quality MAX "
            "ORDER BY price DESC LIMIT 2").to_tuples()
        assert len(rows) == 2
        assert rows[0][1] >= rows[1][1]

    def test_skyline_over_where_filter(self, shop):
        rows = shop.sql(
            "SELECT id FROM products WHERE category = 'phone' "
            "SKYLINE OF price MIN, quality MAX").to_tuples()
        assert sorted(rows) == [(1,), (2,)]

    def test_skyline_of_computed_expression(self, shop):
        # Price per quality point as a single derived dimension.
        rows = shop.sql(
            "SELECT id FROM products "
            "SKYLINE OF price / quality MIN").to_tuples()
        assert rows == [(7,)]  # 300/5 = 60 is the minimum ratio

    def test_skyline_in_subquery(self, shop):
        rows = shop.sql("""
            SELECT count(*) AS n FROM (
                SELECT id, price, quality FROM products
                SKYLINE OF price MIN, quality MAX
            )
        """).to_tuples()
        assert rows == [(4,)]  # ids 1, 2, 4, 7

    def test_nested_skylines(self, shop):
        # Outer skyline over the result of an inner skyline.
        rows = shop.sql("""
            SELECT id FROM (
                SELECT id, price, quality FROM products
                SKYLINE OF category DIFF, price MIN, quality MAX
            ) SKYLINE OF price MIN, quality MAX
        """).to_tuples()
        assert sorted(rows) == [(1,), (2,), (4,), (7,)]

    def test_skyline_after_join(self, shop):
        rows = shop.sql("""
            SELECT products.id FROM products JOIN stock
                ON products.id = stock.id
            WHERE stock.units > 0
            SKYLINE OF price MIN, quality MAX
        """).to_tuples()
        assert sorted(rows) == [(1,), (4,), (7,)]

    def test_skyline_with_group_by_having(self, shop):
        rows = shop.sql("""
            SELECT category, min(price) AS cheapest, max(quality) AS best
            FROM products GROUP BY category
            HAVING count(*) > 1
            SKYLINE OF cheapest MIN, best MAX
        """).to_tuples()
        # phones (500, 8) dominate laptops (1000, 9)? No: 9 > 8, so both
        # survive; tablet filtered out by HAVING.
        assert len(rows) == 2


class TestGeneralSqlSemantics:
    def test_full_outer_join_using_coalesces_key(self, shop):
        rows = shop.sql("""
            SELECT id, units FROM products FULL JOIN stock USING (id)
            ORDER BY id
        """).to_tuples()
        ids = [r[0] for r in rows]
        assert ids == sorted(ids)
        assert all(i is not None for i in ids)
        by_id = dict(rows)
        assert by_id[3] is None      # product without stock
        assert by_id[1] == 3

    def test_case_when_in_projection(self, shop):
        rows = shop.sql("""
            SELECT id, CASE WHEN price < 600 THEN 'cheap'
                            ELSE 'pricey' END AS bucket
            FROM products ORDER BY id LIMIT 2
        """).to_tuples()
        assert rows == [(1, "pricey"), (2, "cheap")]

    def test_between_and_in(self, shop):
        rows = shop.sql(
            "SELECT id FROM products "
            "WHERE price BETWEEN 400 AND 1000 "
            "AND category IN ('phone', 'laptop') ORDER BY id").to_tuples()
        assert rows == [(1,), (2,), (3,), (5,)]

    def test_count_distinct(self, shop):
        rows = shop.sql(
            "SELECT count(DISTINCT category) AS n FROM products"
        ).to_tuples()
        assert rows == [(3,)]

    def test_avg_and_division(self, shop):
        rows = shop.sql(
            "SELECT category, avg(price) AS mean FROM products "
            "WHERE category = 'phone' GROUP BY category").to_tuples()
        assert rows == [("phone", 700.0)]

    def test_scalar_subquery_in_where(self, shop):
        rows = shop.sql("""
            SELECT id FROM products
            WHERE price = (SELECT min(price) AS m FROM products)
        """).to_tuples()
        assert rows == [(7,)]

    def test_order_by_nulls_placement(self, shop):
        shop.create_table(
            "maybe", [("v", INTEGER, True)], [(1,), (None,), (2,)])
        first = shop.sql(
            "SELECT v FROM maybe ORDER BY v ASC NULLS FIRST").to_tuples()
        assert first[0] == (None,)
        last = shop.sql(
            "SELECT v FROM maybe ORDER BY v ASC NULLS LAST").to_tuples()
        assert last[-1] == (None,)
