"""Dataset generators and workload descriptors."""

import pytest

from repro import SkylineSession
from repro.datasets import (AIRBNB_SKYLINE_DIMENSIONS,
                            MUSICBRAINZ_SKYLINE_DIMENSIONS,
                            STORE_SALES_SKYLINE_DIMENSIONS,
                            airbnb_workload, anticorrelated_rows,
                            correlated_rows, generate_airbnb,
                            generate_musicbrainz, generate_store_sales,
                            independent_rows, musicbrainz_workload,
                            store_sales_workload)
from repro.datasets.generators import with_ids


class TestGenericGenerators:
    def test_independent_deterministic(self):
        assert independent_rows(10, 3, seed=1) == \
            independent_rows(10, 3, seed=1)
        assert independent_rows(10, 3, seed=1) != \
            independent_rows(10, 3, seed=2)

    def test_shapes(self):
        rows = independent_rows(25, 4)
        assert len(rows) == 25
        assert all(len(r) == 4 for r in rows)

    def test_null_injection(self):
        rows = independent_rows(500, 2, null_probability=0.3)
        nulls = sum(1 for r in rows for v in r if v is None)
        assert 0.15 < nulls / 1000 < 0.45

    def test_correlated_smaller_skyline_than_anticorrelated(self):
        from repro.core import make_dimensions, skyline
        dims = make_dimensions([(0, "min"), (1, "min"), (2, "min")])
        correlated = skyline(correlated_rows(400, 3, seed=3), dims)
        anti = skyline(anticorrelated_rows(400, 3, seed=3), dims)
        assert len(correlated) < len(anti)

    def test_with_ids(self):
        rows = with_ids([(0.5,), (0.7,)])
        assert rows == [(0, 0.5), (1, 0.7)]


class TestAirbnb:
    def test_schema_matches_table1(self):
        wl = airbnb_workload(100)
        assert [c[0] for c in wl.columns] == [
            "id", "price", "accommodates", "bedrooms", "beds",
            "number_of_reviews", "review_scores_rating"]
        assert AIRBNB_SKYLINE_DIMENSIONS[0] == ("price", "min")
        assert len(AIRBNB_SKYLINE_DIMENSIONS) == 6

    def test_complete_variant_has_no_nulls(self):
        wl = airbnb_workload(300)
        assert all(v is not None for row in wl.rows for v in row)
        assert not wl.incomplete

    def test_incomplete_rate_roughly_one_third(self):
        raw = generate_airbnb(3000, incomplete=True)
        incomplete = sum(1 for row in raw if any(v is None for v in row))
        # Paper: 1,193,465 raw vs 820,698 complete -> ~31% incomplete.
        assert 0.2 < incomplete / len(raw) < 0.45

    def test_complete_is_filtered_subset_of_raw(self):
        complete = airbnb_workload(500, seed=9)
        raw = airbnb_workload(500, seed=9, incomplete=True)
        assert complete.num_rows < raw.num_rows
        raw_ids = {row[0] for row in raw.rows}
        assert all(row[0] in raw_ids for row in complete.rows)

    def test_price_correlates_with_capacity(self):
        rows = generate_airbnb(2000)
        small = [r[1] for r in rows if r[2] <= 2]
        large = [r[1] for r in rows if r[2] >= 6]
        assert sum(large) / len(large) > sum(small) / len(small)


class TestStoreSales:
    def test_schema_matches_table2(self):
        wl = store_sales_workload(100)
        assert [c[0] for c in wl.columns] == [
            "ss_item_sk", "ss_ticket_number", "ss_quantity",
            "ss_wholesale_cost", "ss_list_price", "ss_sales_price",
            "ss_ext_discount_amt", "ss_ext_sales_price"]
        assert STORE_SALES_SKYLINE_DIMENSIONS[0] == ("ss_quantity", "max")

    def test_pricing_chain_invariants(self):
        for row in generate_store_sales(500):
            (_, _, quantity, wholesale, list_price, sales_price,
             discount_amt, ext_sales) = row
            assert list_price >= wholesale
            assert sales_price <= list_price
            assert discount_amt == pytest.approx(
                quantity * (list_price - sales_price), abs=0.1)
            assert ext_sales == pytest.approx(
                quantity * sales_price, abs=0.1)

    def test_quantity_has_many_ties_at_max(self):
        rows = generate_store_sales(5000)
        at_max = sum(1 for r in rows if r[2] == 100)
        assert at_max > 10  # the 1-dim reference pain point

    def test_incomplete_same_size_as_complete(self):
        complete = store_sales_workload(400)
        incomplete = store_sales_workload(400, incomplete=True)
        assert complete.num_rows == incomplete.num_rows
        assert incomplete.incomplete

    def test_keys_never_null(self):
        for row in generate_store_sales(500, incomplete=True):
            assert row[0] is not None and row[1] is not None


class TestWorkloadSql:
    def test_skyline_sql_uses_dimension_prefix(self):
        wl = airbnb_workload(50)
        sql = wl.skyline_sql(2)
        assert "SKYLINE OF price MIN, accommodates MAX" in sql

    def test_skyline_sql_complete_keyword(self):
        wl = airbnb_workload(50)
        assert "SKYLINE OF COMPLETE" in wl.skyline_sql(
            1, complete_keyword=True)

    def test_reference_sql_matches_listing4(self):
        wl = airbnb_workload(50)
        sql = wl.reference_sql(2)
        assert "NOT EXISTS" in sql
        assert "i.price <= o.price" in sql
        assert "i.accommodates >= o.accommodates" in sql
        assert "i.price < o.price" in sql

    def test_dimension_count_validated(self):
        wl = airbnb_workload(50)
        with pytest.raises(ValueError):
            wl.skyline_sql(7)
        with pytest.raises(ValueError):
            wl.dimensions(0)

    def test_queries_parse_and_run(self):
        session = SkylineSession(num_executors=2)
        wl = store_sales_workload(120)
        wl.register(session)
        sky = session.sql(wl.skyline_sql(3)).to_tuples()
        ref = session.sql(wl.reference_sql(3)).to_tuples()
        assert sorted(sky) == sorted(ref)


class TestMusicBrainz:
    def test_tables_generated(self):
        tables = generate_musicbrainz(200)
        assert set(tables) == {"recording_complete",
                               "recording_incomplete", "recording_meta",
                               "track"}
        assert len(tables["recording_complete"][1]) == 200
        assert len(tables["recording_meta"][1]) == 200

    def test_every_recording_has_a_track(self):
        tables = generate_musicbrainz(200)
        tracked = {row[0] for row in tables["track"][1]}
        assert tracked == {row[0]
                           for row in tables["recording_complete"][1]}

    def test_about_a_third_rated(self):
        tables = generate_musicbrainz(3000)
        rated = sum(1 for row in tables["recording_meta"][1]
                    if row[1] is not None)
        assert 0.25 < rated / 3000 < 0.42

    def test_workload_queries_run_and_agree(self):
        session = SkylineSession(num_executors=2)
        wl = musicbrainz_workload(150)
        wl.register(session)
        sky = session.sql(wl.skyline_sql(3)).to_tuples()
        ref = session.sql(wl.reference_sql(3)).to_tuples()
        assert sorted(sky) == sorted(ref)
        assert wl.skyline_dimensions == MUSICBRAINZ_SKYLINE_DIMENSIONS

    def test_incomplete_workload_runs(self):
        session = SkylineSession(num_executors=2)
        wl = musicbrainz_workload(150, incomplete=True)
        wl.register(session)
        rows = session.sql(wl.skyline_sql(4)).collect()
        assert rows
