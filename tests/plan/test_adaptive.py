"""Adaptive planning: decisions, explain output, and equivalence of the
adaptive plan with every fixed (algorithm x partitioning) combination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SkylineSession
from repro.core import make_dimensions
from repro.datasets import (anticorrelated_rows, correlated_rows,
                            independent_rows)
from repro.engine.types import DOUBLE, INTEGER
from repro.plan import logical as L
from repro.plan.cost import (DENSE_SKYLINE_FRACTION, SMALL_INPUT_ROWS,
                             CostModel)
from repro.plan.planner import PARTITIONING_SCHEMES
from repro.sql.parser import parse_query
from tests.conftest import skyline_oracle

SQL3 = "SELECT id FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN"


def make_session(rows, nullable=False, n_dims=3, **kwargs):
    session = SkylineSession(num_executors=4, **kwargs)
    columns = [("id", INTEGER, False)] + [
        (f"d{i}", DOUBLE, nullable) for i in range(n_dims)]
    session.create_table(
        "pts", columns, [(i,) + tuple(r) for i, r in enumerate(rows)])
    return session


def skyline_node(session, sql):
    plan = session.analyze(parse_query(sql))
    nodes = [n for n in plan.iter_tree()
             if isinstance(n, L.SkylineOperator)]
    assert nodes
    return nodes[0]


def decide(session, sql=SQL3, max_workers=None):
    model = CostModel(session.catalog, num_executors=4,
                      max_workers=max_workers)
    return model.decide(skyline_node(session, sql))


class TestCostModelDecisions:
    def test_nullable_forces_incomplete(self):
        session = make_session(correlated_rows(1000, 3), nullable=True)
        decision = decide(session)
        assert decision.algorithm == "distributed-incomplete"
        assert decision.partitioning == "keep"

    def test_small_input_runs_non_distributed(self):
        session = make_session(correlated_rows(SMALL_INPUT_ROWS - 10, 3))
        decision = decide(session)
        assert decision.algorithm == "non-distributed-complete"
        assert decision.num_partitions == 1

    def test_dense_uniform_orientation_picks_sfs_and_angle(self):
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02))
        decision = decide(session)
        assert decision.algorithm == "sfs"
        assert decision.partitioning == "angle"
        assert decision.skyline_density >= DENSE_SKYLINE_FRACTION
        # Dense skylines use full parallelism.
        assert decision.num_partitions == 4

    def test_dense_mixed_orientation_rejects_angle(self):
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02))
        sql = "SELECT id FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"
        # MAX flips the orientation of d1: an anti-correlated MIN/MIN
        # band stays dense under MIN/MAX on mirrored data, but the mix
        # of kinds must veto the angular transform either way.
        decision = decide(session, sql)
        if decision.skyline_density is not None and \
                decision.skyline_density >= DENSE_SKYLINE_FRACTION:
            assert decision.partitioning == "random"
        assert decision.partitioning != "angle"

    def test_sparse_small_windows_keep_partitioning(self):
        session = make_session(independent_rows(8000, 3, seed=2))
        decision = decide(session)
        assert decision.algorithm == "distributed-complete"
        assert decision.partitioning == "keep"

    def test_moderate_density_large_input_picks_grid(self):
        session = make_session(
            anticorrelated_rows(20_000, 3, spread=0.35, seed=5))
        decision = decide(session)
        if decision.skyline_density < DENSE_SKYLINE_FRACTION:
            assert decision.partitioning == "grid"
            assert decision.grid_cells_per_dim >= 2
            assert decision.num_partitions == \
                decision.grid_cells_per_dim ** 3

    def test_filter_selectivity_shrinks_estimate(self):
        session = make_session(independent_rows(2000, 3, seed=1))
        sql = ("SELECT id FROM pts WHERE d0 <= 0.1 "
               "SKYLINE OF d0 MIN, d1 MIN, d2 MIN")
        decision = decide(session, sql)
        # ~10% of 2000 rows pass the filter -> below the threshold.
        assert decision.estimated_rows <= SMALL_INPUT_ROWS
        assert decision.algorithm == "non-distributed-complete"

    def test_all_keeping_filter_does_not_shrink_estimate_to_zero(self):
        # Regression: 'WHERE c >= <constant value>' keeps every row;
        # the boundary selectivity must not zero out the estimate and
        # demote a large input to the single-task strategy.
        rows = [(5.0, float(i), float(i)) for i in range(2000)]
        session = make_session(rows)
        sql = ("SELECT id FROM pts WHERE d0 >= 5.0 "
               "SKYLINE OF d1 MIN, d2 MIN")
        decision = decide(session, sql)
        assert decision.estimated_rows > SMALL_INPUT_ROWS
        assert decision.algorithm != "non-distributed-complete"

    def test_worker_cap_raises_partition_count(self):
        # Dense skylines use one partition per executor/worker, so the
        # backend's pool size directly raises the partition count.
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02))
        few = decide(session, max_workers=None)
        many = decide(session, max_workers=16)
        assert few.num_partitions == 4
        assert many.num_partitions == 16

    def test_grid_partition_count_respects_hard_cap(self):
        from repro.plan.cost import MAX_ADAPTIVE_PARTITIONS
        session = make_session(
            anticorrelated_rows(20_000, 6, spread=0.35, seed=5),
            n_dims=6)
        sql = ("SELECT id FROM pts SKYLINE OF "
               + ", ".join(f"d{i} MIN" for i in range(6)))
        decision = decide(session, sql)
        if decision.num_partitions is not None:
            assert decision.num_partitions <= MAX_ADAPTIVE_PARTITIONS

    def test_nan_values_do_not_break_planning(self):
        rows = [(float("nan"), 1.0, 2.0)] + \
            [(float(i), float(i), float(i)) for i in range(600)]
        session = make_session(rows, adaptive=True)
        assert session.sql(SQL3).count() > 0
        assert session.sql("ANALYZE TABLE pts").count() == 4

    def test_detached_table_planning_is_bounded_and_correct(self):
        # A plan holding the old table object across a re-register must
        # profile its own (detached) rows, not the new table's cache.
        session = make_session(correlated_rows(SMALL_INPUT_ROWS + 200, 3))
        node = skyline_node(session, SQL3)  # binds the old table object
        session.create_table("pts", [("id", INTEGER, False)], [(1,)])
        model = CostModel(session.catalog, num_executors=4)
        decision = model.decide(node)
        assert decision.estimated_rows == SMALL_INPUT_ROWS + 200

    def test_local_relation_without_catalog(self):
        session = SkylineSession(num_executors=4)
        df = session.create_dataframe(
            [(float(i), float(i)) for i in range(50)], ["a", "b"])
        plan = session.analyze(
            df.skyline_of([("a", "min"), ("b", "min")]).plan)
        node = next(n for n in plan.iter_tree()
                    if isinstance(n, L.SkylineOperator))
        decision = CostModel(None, num_executors=4).decide(node)
        assert decision.algorithm == "non-distributed-complete"
        assert decision.estimated_rows == 50


class TestExplainReportsDecision:
    def test_adaptive_explain_contains_full_decision(self):
        # Scalar kernels: the dense anticorrelated class picks SFS with
        # an angle repartition (vectorized kernels shift both choices,
        # covered by TestVectorizedCostModel).
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02),
                               adaptive=True, vectorized=False)
        text = session.explain(parse_query(SQL3))
        assert "== Skyline Strategy ==" in text
        assert "algorithm    = sfs" in text
        assert "partitioning = angle" in text
        assert "partitions   = 4" in text
        assert "sampled skyline density" in text
        assert "pts: 2000 rows" in text

    def test_forced_strategy_explain_reports_configuration(self):
        session = make_session(correlated_rows(600, 3),
                               skyline_algorithm="sfs",
                               skyline_partitioning="grid")
        text = session.explain(parse_query(SQL3))
        assert "algorithm    = sfs" in text
        assert "partitioning = grid" in text
        assert "forced by session configuration" in text

    def test_auto_selection_is_not_labelled_forced(self):
        session = make_session(correlated_rows(600, 3))  # auto default
        text = session.explain(parse_query(SQL3))
        assert "algorithm    = distributed-complete" in text
        assert "Listing 8" in text
        algorithm_line = next(l for l in text.splitlines()
                              if l.startswith("algorithm"))
        assert "forced" not in algorithm_line

    def test_physical_plan_shows_repartition(self):
        session = make_session(correlated_rows(600, 3),
                               skyline_algorithm="distributed-complete",
                               skyline_partitioning="angle",
                               skyline_partitions=3)
        text = session.explain(parse_query(SQL3))
        assert "SkylineRepartition(angle, 3 partitions)" in text


class TestVectorizedCostModel:
    """The vectorized kernels shift the cost model's crossovers."""

    def test_vectorized_raises_the_sfs_crossover(self):
        # Density ~0.3 sits between the scalar (0.25) and vectorized
        # (0.5) crossover: scalar picks SFS, vectorized keeps BNL.
        session = make_session(anticorrelated_rows(2000, 3, spread=0.12))
        node = skyline_node(session, SQL3)
        scalar = CostModel(session.catalog, num_executors=4).decide(node)
        vector = CostModel(session.catalog, num_executors=4,
                           vectorized=True).decide(node)
        density = scalar.skyline_density
        assert density is not None and 0.25 <= density < 0.5, density
        assert scalar.algorithm == "sfs"
        assert vector.algorithm == "distributed-complete"
        assert "vectorized" in vector.algorithm_reason

    def test_vectorized_raises_the_repartition_break_even(self):
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02))
        node = skyline_node(session, SQL3)
        scalar = CostModel(session.catalog, num_executors=4).decide(node)
        vector = CostModel(session.catalog, num_executors=4,
                           vectorized=True).decide(node)
        assert scalar.partitioning == "angle"
        assert vector.partitioning == "keep"

    def test_planner_threads_the_session_flag(self):
        from repro.core.vectorized import numpy_available
        if not numpy_available():
            pytest.skip("NumPy not available")
        rows = anticorrelated_rows(2000, 3, spread=0.02)
        forced = make_session(rows, adaptive=True, vectorized=False)
        text = forced.explain(parse_query(SQL3))
        assert "partitioning = angle" in text
        auto = make_session(rows, adaptive=True, vectorized=True)
        text = auto.explain(parse_query(SQL3))
        assert "partitioning = keep" in text
        assert "vectorized" in text


class TestGridPruningWithDiffDimensions:
    def test_grid_keeps_rows_dominated_only_across_diff_groups(self):
        # Regression: cell-dominance pruning ignores DIFF dimensions,
        # so a lone "blue" row in a cell dominated by "red"-only cells
        # must NOT be dropped -- DIFF dominance requires equal colour.
        from repro.engine.types import STRING
        rows = [(i, "red", 0.1 + i * 0.01, 0.1 + i * 0.01)
                for i in range(20)] + [(99, "blue", 10.0, 10.0)]
        session = SkylineSession(num_executors=4)
        session.create_table(
            "items",
            [("id", INTEGER, False), ("color", STRING, False),
             ("price", DOUBLE, False), ("weight", DOUBLE, False)],
            rows)
        sql = ("SELECT * FROM items "
               "SKYLINE OF price MIN, weight MIN, color DIFF")
        baseline = sorted(session.sql(sql).to_tuples())
        grid = session.with_skyline_partitioning("grid")
        assert sorted(grid.sql(sql).to_tuples()) == baseline
        assert any(row[1] == "blue" for row in baseline)


class TestExplainReportsAppliedChoices:
    def test_cost_based_explain_does_not_claim_unapplied_scheme(self):
        # cost-based selects the algorithm only; EXPLAIN must not
        # report the model's partitioning proposal as if it ran.
        # (vectorized=False so the model proposes a scheme at all --
        # the vectorized break-even keeps the child partitioning here.)
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02),
                               skyline_algorithm="cost-based",
                               vectorized=False)
        text = session.explain(parse_query(SQL3))
        assert "SkylineRepartition" not in text
        assert "partitioning = keep" in text
        assert "cost-based selects the algorithm only" in text

    def test_adaptive_with_forced_scheme_reports_the_forced_one(self):
        session = make_session(anticorrelated_rows(2000, 3, spread=0.02),
                               adaptive=True,
                               skyline_partitioning="random",
                               skyline_partitions=2)
        text = session.explain(parse_query(SQL3))
        assert "partitioning = random" in text
        assert "SkylineRepartition(random, 2 partitions)" in text
        assert "forced by session configuration" in text


class TestSessionConfiguration:
    def test_adaptive_flag_sets_algorithm(self):
        session = SkylineSession(adaptive=True)
        assert session.adaptive
        assert session.skyline_algorithm == "adaptive"

    def test_adaptive_conflicts_with_forced_algorithm(self):
        with pytest.raises(ValueError):
            SkylineSession(adaptive=True, skyline_algorithm="sfs")

    def test_unknown_partitioning_rejected(self):
        with pytest.raises(ValueError):
            SkylineSession(skyline_partitioning="hilbert")

    def test_with_skyline_partitioning_clone(self):
        session = make_session(correlated_rows(100, 3))
        clone = session.with_skyline_partitioning("grid", 9)
        assert clone.skyline_partitioning == "grid"
        assert clone.skyline_partitions == 9
        assert session.skyline_partitioning == "keep"
        assert clone.catalog is session.catalog

    def test_clones_preserve_partitioning(self):
        session = SkylineSession(skyline_partitioning="angle",
                                 skyline_partitions=5)
        clone = session.with_executors(8)
        assert clone.skyline_partitioning == "angle"
        assert clone.skyline_partitions == 5


DIMS = make_dimensions([(1, "min"), (2, "min"), (3, "min")])

FIXED_COMBOS = [
    (algorithm, scheme)
    for algorithm in ("distributed-complete", "sfs")
    for scheme in PARTITIONING_SCHEMES
] + [("non-distributed-complete", "keep"),
     ("distributed-incomplete", "keep")]


class TestAdaptiveMatchesFixedCombinations:
    """Adaptive plans return the identical skyline as every fixed
    (algorithm x partitioning) combination."""

    @pytest.mark.parametrize("generator,kwargs", [
        (correlated_rows, {"spread": 0.1}),
        (anticorrelated_rows, {"spread": 0.05}),
        (independent_rows, {}),
    ])
    def test_on_canonical_distributions(self, generator, kwargs):
        rows = generator(700, 3, seed=11, **kwargs)
        session = make_session(rows, adaptive=True)
        expected = sorted(session.sql(SQL3).to_tuples())
        oracle = skyline_oracle(
            [(i,) + tuple(r) for i, r in enumerate(rows)], DIMS)
        assert expected == sorted((row[0],) for row in oracle)
        for algorithm, scheme in FIXED_COMBOS:
            forced = session.with_skyline_algorithm(
                algorithm).with_skyline_partitioning(scheme)
            assert sorted(forced.sql(SQL3).to_tuples()) == expected, (
                f"{algorithm}/{scheme} disagrees with adaptive")

    values = st.integers(0, 5)
    rows_strategy = st.lists(st.tuples(values, values, values),
                             min_size=0, max_size=30)

    @given(rows_strategy, st.sampled_from(FIXED_COMBOS))
    @settings(max_examples=40, deadline=None)
    def test_property_adaptive_equals_fixed(self, rows, combo):
        algorithm, scheme = combo
        data = [(i,) + tuple(r) for i, r in enumerate(rows)]
        adaptive = SkylineSession(num_executors=3, adaptive=True)
        forced = SkylineSession(num_executors=3,
                                skyline_algorithm=algorithm,
                                skyline_partitioning=scheme,
                                skyline_partitions=3)
        for session in (adaptive, forced):
            session.create_table(
                "pts",
                [("id", INTEGER, False)] + [
                    (f"d{i}", INTEGER, False) for i in range(3)],
                data)
        sql = "SELECT * FROM pts SKYLINE OF d0 MIN, d1 MAX, d2 MIN"
        oracle = skyline_oracle(
            data, make_dimensions([(1, "min"), (2, "max"), (3, "min")]))
        assert sorted(adaptive.sql(sql).to_tuples()) == sorted(oracle)
        assert sorted(forced.sql(sql).to_tuples()) == sorted(oracle)
