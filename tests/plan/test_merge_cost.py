"""Global-merge strategy selection (`choose_global_merge`)."""

from repro.plan.cost import (MERGE_MIN_PARTIALS, MERGE_MIN_ROWS,
                             choose_global_merge)


def choose(**overrides):
    kwargs = dict(num_executors=10, est_partials=10,
                  estimated_rows=100_000)
    kwargs.update(overrides)
    algorithm = kwargs.pop("algorithm", "distributed-complete")
    return choose_global_merge(algorithm, **kwargs)


class TestCorrectnessGates:
    """The non-overridable gates: non-transitive dominance regimes."""

    def test_incomplete_algorithm_never_hierarchical(self):
        decision = choose(algorithm="distributed-incomplete",
                          forced="hierarchical")
        assert decision.strategy == "flat"
        assert "not transitive" in decision.reason

    def test_nullable_dimensions_never_hierarchical(self):
        decision = choose(dimensions_nullable=True,
                          forced="hierarchical")
        assert decision.strategy == "flat"
        assert "nullable" in decision.reason

    def test_non_distributed_has_no_partials_to_merge(self):
        decision = choose(algorithm="non-distributed-complete",
                          forced="hierarchical")
        assert decision.strategy == "flat"

    def test_single_partial_never_merged(self):
        decision = choose(est_partials=1, forced="hierarchical")
        assert decision.strategy == "flat"


class TestAutoHeuristics:
    def test_defaults_to_hierarchical_at_scale(self):
        decision = choose()
        assert decision.strategy == "hierarchical"
        assert decision.fan_in == 2
        assert decision.tree == "10 -> 5 -> 3 -> 2 -> 1"
        assert decision.est_rounds == 4

    def test_single_executor_stays_flat(self):
        assert choose(num_executors=1).strategy == "flat"

    def test_few_partials_stay_flat(self):
        decision = choose(est_partials=MERGE_MIN_PARTIALS - 1)
        assert decision.strategy == "flat"

    def test_small_inputs_stay_flat(self):
        decision = choose(estimated_rows=MERGE_MIN_ROWS - 1)
        assert decision.strategy == "flat"

    def test_unknown_cardinality_is_not_a_blocker(self):
        assert choose(estimated_rows=None).strategy == "hierarchical"

    def test_fan_in_scales_with_overcommit(self):
        # 40 partials on 10 executors: fan-in 4 keeps round 1 at 10
        # tasks, one per executor.
        decision = choose(est_partials=40)
        assert decision.fan_in == 4
        assert decision.tree == "40 -> 10 -> 3 -> 1"

    def test_fan_in_clamped_to_max(self):
        decision = choose(est_partials=200, num_executors=2)
        assert decision.fan_in == 8

    def test_sfs_algorithm_eligible(self):
        assert choose(algorithm="sfs").strategy == "hierarchical"


class TestForcing:
    def test_forced_flat(self):
        decision = choose(forced="flat")
        assert decision.strategy == "flat"
        assert decision.reason == "forced by session configuration"

    def test_forced_hierarchical_skips_profit_gates(self):
        decision = choose(forced="hierarchical", num_executors=1,
                          est_partials=2, estimated_rows=10)
        assert decision.strategy == "hierarchical"

    def test_explicit_fan_in_wins(self):
        decision = choose(fan_in=5)
        assert decision.fan_in == 5
        assert decision.tree == "10 -> 2 -> 1"


class TestDescribe:
    def test_flat_renders_reason(self):
        text = choose(forced="flat").describe()
        assert "flat" in text and "forced by session" in text

    def test_hierarchical_renders_tree(self):
        text = choose().describe()
        assert "hierarchical" in text
        assert "10 -> 5 -> 3 -> 2 -> 1" in text
        assert "4 rounds planned" in text
