"""Physical planning: join strategies and Listing 8 algorithm selection."""

import pytest

from repro.api.session import SkylineSession
from repro.engine.types import DOUBLE, INTEGER, STRING
from repro.errors import PlanningError
from repro.plan import physical as P
from repro.plan.planner import Planner
from repro.sql.parser import parse_query


@pytest.fixture
def session():
    session = SkylineSession(num_executors=2)
    session.create_table(
        "pts",
        [("id", INTEGER, False), ("x", DOUBLE, False),
         ("y", DOUBLE, True)],
        [(1, 1.0, 2.0), (2, 2.0, 1.0), (3, 3.0, None)])
    session.create_table(
        "tags",
        [("id", INTEGER, False), ("tag", STRING, False)],
        [(1, "a"), (2, "b")])
    return session


def physical_plan(session, sql, strategy="auto"):
    analyzed = session.analyze(parse_query(sql))
    optimized = session.optimize(analyzed)
    return Planner(strategy).plan(optimized)


def find_exec(plan, node_type):
    return [n for n in plan.iter_tree() if isinstance(n, node_type)]


class TestBasicLowering:
    def test_scan_filter_project(self, session):
        plan = physical_plan(
            session, "SELECT x FROM pts WHERE x > 1")
        assert find_exec(plan, P.ScanExec)
        assert find_exec(plan, P.FilterExec)
        assert find_exec(plan, P.ProjectExec)

    def test_sort_limit_distinct(self, session):
        plan = physical_plan(
            session, "SELECT DISTINCT x FROM pts ORDER BY x LIMIT 2")
        assert find_exec(plan, P.SortExec)
        assert find_exec(plan, P.LimitExec)
        assert find_exec(plan, P.DistinctExec)

    def test_aggregate(self, session):
        plan = physical_plan(
            session, "SELECT id, sum(x) AS s FROM pts GROUP BY id")
        assert find_exec(plan, P.HashAggregateExec)


class TestJoinStrategy:
    def test_equi_join_uses_hash_join(self, session):
        plan = physical_plan(
            session,
            "SELECT x FROM pts JOIN tags ON pts.id = tags.id")
        assert find_exec(plan, P.HashJoinExec)
        assert not find_exec(plan, P.BroadcastNestedLoopJoinExec)

    def test_non_equi_join_uses_nested_loop(self, session):
        plan = physical_plan(
            session,
            "SELECT x FROM pts p JOIN tags t ON p.id < t.id")
        assert find_exec(plan, P.BroadcastNestedLoopJoinExec)

    def test_reference_query_plans_anti_nested_loop(self, session):
        plan = physical_plan(session, """
            SELECT x, y FROM pts AS o WHERE NOT EXISTS(
                SELECT * FROM pts AS i WHERE i.x < o.x AND i.y < o.y)
        """)
        loops = find_exec(plan, P.BroadcastNestedLoopJoinExec)
        assert loops and loops[0].join_type == "left_anti"


class TestListing8AlgorithmSelection:
    SQL_NULLABLE = "SELECT x, y FROM pts SKYLINE OF x MIN, y MAX"
    SQL_COMPLETE_KW = \
        "SELECT x, y FROM pts SKYLINE OF COMPLETE x MIN, y MAX"
    SQL_NON_NULLABLE = "SELECT id, x FROM pts SKYLINE OF id MIN, x MIN"

    def test_nullable_dimensions_select_incomplete_nodes(self, session):
        plan = physical_plan(session, self.SQL_NULLABLE)
        assert find_exec(plan, P.SkylineLocalIncompleteExec)
        assert find_exec(plan, P.SkylineGlobalIncompleteExec)

    def test_complete_keyword_forces_complete_nodes(self, session):
        plan = physical_plan(session, self.SQL_COMPLETE_KW)
        assert find_exec(plan, P.SkylineLocalExec)
        assert find_exec(plan, P.SkylineGlobalCompleteExec)

    def test_non_nullable_dimensions_select_complete_nodes(self, session):
        plan = physical_plan(session, self.SQL_NON_NULLABLE)
        assert find_exec(plan, P.SkylineLocalExec)
        assert find_exec(plan, P.SkylineGlobalCompleteExec)

    def test_forced_non_distributed_skips_local_node(self, session):
        plan = physical_plan(session, self.SQL_COMPLETE_KW,
                             strategy="non-distributed-complete")
        assert not find_exec(plan, P.SkylineLocalExec)
        assert find_exec(plan, P.SkylineGlobalCompleteExec)

    def test_forced_incomplete_on_complete_data(self, session):
        plan = physical_plan(session, self.SQL_NON_NULLABLE,
                             strategy="distributed-incomplete")
        assert find_exec(plan, P.SkylineGlobalIncompleteExec)

    def test_sfs_strategy(self, session):
        plan = physical_plan(session, self.SQL_COMPLETE_KW,
                             strategy="sfs")
        assert find_exec(plan, P.SkylineLocalSFSExec)
        assert find_exec(plan, P.SkylineGlobalSFSExec)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PlanningError):
            Planner("turbo")

    def test_global_node_has_local_child(self, session):
        plan = physical_plan(session, self.SQL_COMPLETE_KW)
        global_node = find_exec(plan, P.SkylineGlobalCompleteExec)[0]
        assert isinstance(global_node.children[0], P.SkylineLocalExec)


class TestExecutionSemantics:
    def test_skyline_results_identical_across_strategies(self, session):
        rows = {}
        for strategy in ("distributed-complete",
                         "non-distributed-complete",
                         "distributed-incomplete", "sfs"):
            forced = session.with_skyline_algorithm(strategy)
            result = forced.sql(
                "SELECT id, x FROM pts SKYLINE OF id MIN, x MIN")
            rows[strategy] = sorted(result.to_tuples())
        assert len({tuple(v) for v in rows.values()}) == 1

    def test_local_stage_parallelizable_global_not(self, session):
        result = session.sql(
            "SELECT id, x FROM pts SKYLINE OF id MIN, x MIN").run()
        stages = {s.name: s for s in result.context.stages}
        local = [s for name, s in stages.items()
                 if name.startswith("SkylineLocalExec")]
        global_ = [s for name, s in stages.items()
                   if name.startswith("SkylineGlobalCompleteExec")]
        assert local and local[0].parallelizable
        assert global_ and not global_[0].parallelizable

    def test_incomplete_local_partitions_by_bitmap(self, session):
        result = session.with_skyline_algorithm(
            "distributed-incomplete").sql(
            "SELECT x, y FROM pts SKYLINE OF x MIN, y MAX").run()
        stages = [s for s in result.context.stages
                  if s.name.startswith("SkylineLocalIncompleteExec")]
        # Two bitmap groups: y null vs y present.
        assert stages and len(stages[0].tasks) == 2

    def test_scalar_subquery_executes_once(self, session):
        result = session.sql(
            "SELECT id FROM pts WHERE x = (SELECT min(x) AS m FROM pts)")
        assert result.to_tuples() == [(1,)]
