"""Lightweight cost-based skyline strategy selection (Section 7)."""

import pytest

from repro import SkylineSession
from repro.datasets import anticorrelated_rows, correlated_rows
from repro.engine.types import DOUBLE, INTEGER
from repro.plan import logical as L
from repro.plan.cost import (SMALL_INPUT_ROWS, choose_strategy,
                             estimate_input_rows)
from repro.sql.parser import parse_query


def make_session(rows, nullable=False, n_dims=3):
    session = SkylineSession(num_executors=2,
                             skyline_algorithm="cost-based")
    columns = [("id", INTEGER, False)] + [
        (f"d{i}", DOUBLE, nullable) for i in range(n_dims)]
    data = [(i,) + tuple(values) for i, values in enumerate(rows)]
    session.create_table("pts", columns, data)
    return session


def analyzed_skyline(session, sql):
    plan = session.analyze(parse_query(sql))
    nodes = [n for n in plan.iter_tree()
             if isinstance(n, L.SkylineOperator)]
    assert nodes
    return nodes[0]


SQL3 = "SELECT id FROM pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN"


class TestEstimateInputRows:
    def test_counts_through_preserving_operators(self):
        session = make_session(correlated_rows(700, 3))
        node = analyzed_skyline(
            session, "SELECT id FROM pts WHERE d0 >= 0 "
                     "SKYLINE OF d0 MIN, d1 MIN")
        estimate = estimate_input_rows(node.child)
        assert estimate == 700

    def test_limit_caps_estimate(self):
        session = make_session(correlated_rows(700, 3))
        plan = session.analyze(parse_query(
            "SELECT id FROM pts LIMIT 10"))
        assert estimate_input_rows(plan) == 10


class TestChooseStrategy:
    def test_nullable_dimensions_force_incomplete(self):
        session = make_session(correlated_rows(1000, 3), nullable=True)
        node = analyzed_skyline(session, SQL3)
        decision = choose_strategy(node)
        assert decision.strategy == "distributed-incomplete"
        assert "incomplete" in decision.reason

    def test_small_input_skips_distribution(self):
        session = make_session(correlated_rows(SMALL_INPUT_ROWS - 10, 3))
        node = analyzed_skyline(session, SQL3)
        decision = choose_strategy(node)
        assert decision.strategy == "non-distributed-complete"

    def test_sparse_skyline_prefers_bnl(self):
        session = make_session(correlated_rows(3000, 3, spread=0.05))
        node = analyzed_skyline(session, SQL3)
        decision = choose_strategy(node)
        assert decision.strategy == "distributed-complete"

    def test_dense_skyline_prefers_sfs(self):
        session = make_session(anticorrelated_rows(3000, 3, spread=0.02))
        node = analyzed_skyline(session, SQL3)
        decision = choose_strategy(node)
        assert decision.strategy == "sfs"
        assert decision.sample_skyline_fraction is not None
        assert decision.sample_skyline_fraction > 0.2


class TestCostBasedExecution:
    @pytest.mark.parametrize("generator", [correlated_rows,
                                           anticorrelated_rows])
    def test_cost_based_results_match_forced(self, generator):
        rows = generator(800, 3, seed=4)
        session = make_session(rows)
        cost_based = session.sql(SQL3).to_tuples()
        forced = session.with_skyline_algorithm(
            "distributed-complete").sql(SQL3).to_tuples()
        assert sorted(cost_based) == sorted(forced)

    def test_cost_based_on_nullable_data(self):
        session = make_session(
            [(1.0, None, 2.0), (0.5, 1.0, 1.0), (2.0, 2.0, 2.0)],
            nullable=True)
        rows = session.sql(SQL3).to_tuples()
        assert rows  # null-aware semantics executed without error
