"""Analyzer resolution rules, including the skyline cases of Section 5.3."""

import pytest

from repro.engine import expressions as E
from repro.engine.catalog import Catalog
from repro.engine.row import Field, Schema
from repro.engine.types import DOUBLE, INTEGER, STRING
from repro.errors import AnalysisError
from repro.plan import logical as L
from repro.plan.analyzer import Analyzer
from repro.sql.parser import parse_query


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "hotels",
        Schema([Field("name", STRING, False),
                Field("price", DOUBLE, False),
                Field("rating", DOUBLE, False)]),
        [("A", 100.0, 4.0)])
    catalog.create_table(
        "bookings",
        Schema([Field("hotel", STRING, False),
                Field("name", STRING, False),
                Field("nights", INTEGER, False)]),
        [("A", "guest", 3)])
    return catalog


@pytest.fixture
def analyzer(catalog):
    return Analyzer(catalog)


def analyze(analyzer, sql):
    return analyzer.analyze(parse_query(sql))


def find(plan, node_type):
    nodes = [n for n in plan.iter_tree() if isinstance(n, node_type)]
    assert nodes, f"no {node_type.__name__} in plan"
    return nodes[0]


class TestRelationResolution:
    def test_table_resolved_from_catalog(self, analyzer):
        plan = analyze(analyzer, "SELECT name FROM hotels")
        assert plan.resolved
        relation = find(plan, L.LogicalRelation)
        assert relation.table.name == "hotels"

    def test_unknown_table_raises(self, analyzer):
        with pytest.raises(AnalysisError, match="not found"):
            analyze(analyzer, "SELECT a FROM ghost")

    def test_self_join_gets_distinct_attribute_ids(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT a.name FROM hotels a, hotels b")
        relations = [n for n in plan.iter_tree()
                     if isinstance(n, L.LogicalRelation)]
        ids_a = {attr.expr_id for attr in relations[0].output}
        ids_b = {attr.expr_id for attr in relations[1].output}
        assert not (ids_a & ids_b)


class TestReferenceResolution:
    def test_column_resolved_with_type(self, analyzer):
        plan = analyze(analyzer, "SELECT price FROM hotels")
        attr = plan.output[0]
        assert attr.name == "price"
        assert attr.dtype == DOUBLE

    def test_unknown_column_raises(self, analyzer):
        with pytest.raises(AnalysisError):
            analyze(analyzer, "SELECT ghost FROM hotels")

    def test_qualified_reference(self, analyzer):
        plan = analyze(analyzer, "SELECT h.price FROM hotels h")
        assert plan.output[0].name == "price"

    def test_wrong_qualifier_raises(self, analyzer):
        with pytest.raises(AnalysisError):
            analyze(analyzer, "SELECT x.price FROM hotels h")

    def test_ambiguous_reference_raises(self, analyzer):
        with pytest.raises(AnalysisError, match="ambiguous"):
            analyze(analyzer,
                    "SELECT name FROM hotels h, bookings b")

    def test_ambiguity_resolved_by_qualifier(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT h.name FROM hotels h, bookings b")
        assert plan.resolved

    def test_star_expansion(self, analyzer):
        plan = analyze(analyzer, "SELECT * FROM hotels")
        assert [a.name for a in plan.output] == ["name", "price", "rating"]

    def test_qualified_star_expansion(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT b.* FROM hotels h, bookings b")
        assert [a.name for a in plan.output] == ["hotel", "name", "nights"]

    def test_where_sees_base_columns(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT name FROM hotels WHERE price < 100")
        assert plan.resolved


class TestFunctionResolution:
    def test_aggregates_resolved(self, analyzer):
        plan = analyze(analyzer, "SELECT min(price) AS m FROM hotels")
        aggregate = find(plan, L.Aggregate)
        alias = aggregate.aggregate_expressions[0]
        assert isinstance(alias.child, E.Min)

    def test_scalar_function_resolved(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT ifnull(price, 0) AS p FROM hotels")
        assert plan.resolved

    def test_unknown_function_raises(self, analyzer):
        with pytest.raises(AnalysisError, match="undefined function"):
            analyze(analyzer, "SELECT frobnicate(price) AS x FROM hotels")

    def test_wrong_arity_raises(self, analyzer):
        with pytest.raises(AnalysisError):
            analyze(analyzer, "SELECT ifnull(price) AS x FROM hotels")


class TestUsingJoins:
    def test_join_on_condition_resolves(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT hotels.name FROM hotels JOIN bookings b "
                       "ON hotels.name = b.hotel")
        join = find(plan, L.Join)
        assert join.condition is not None
        assert plan.resolved

    def test_using_join_merges_key_column(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT * FROM hotels h JOIN bookings b USING (name)")
        # name appears once, then remaining columns of both sides.
        names = [a.name for a in plan.output]
        assert names == ["name", "price", "rating", "hotel", "nights"]

    def test_using_with_missing_column_raises(self, analyzer):
        with pytest.raises(AnalysisError, match="USING column"):
            analyze(analyzer,
                    "SELECT * FROM hotels h JOIN bookings b USING (price)")


class TestGroupByValidation:
    def test_non_grouped_column_rejected(self, analyzer):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            analyze(analyzer,
                    "SELECT name, price FROM hotels GROUP BY name")

    def test_grouped_column_accepted(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT name, max(price) AS p FROM hotels "
                       "GROUP BY name")
        assert plan.resolved

    def test_having_with_aggregate_not_in_select(self, analyzer):
        # HAVING references count(*) which must be pulled into the
        # Aggregate and trimmed back by a Project.
        plan = analyze(analyzer,
                       "SELECT name FROM hotels GROUP BY name "
                       "HAVING count(*) > 0")
        assert plan.resolved
        assert [a.name for a in plan.output] == ["name"]
        aggregate = find(plan, L.Aggregate)
        assert len(aggregate.aggregate_expressions) == 2


class TestSkylineResolution:
    def test_dimensions_resolved_in_projection(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT price, rating FROM hotels "
                       "SKYLINE OF price MIN, rating MAX")
        skyline = find(plan, L.SkylineOperator)
        assert skyline.resolved
        assert all(isinstance(i.child, E.AttributeReference)
                   for i in skyline.skyline_items)

    def test_listing6_missing_dimension_added_and_trimmed(self, analyzer):
        # price is not in the SELECT list; the analyzer must add it below
        # the skyline and trim it back with a Project (Listing 6).
        plan = analyze(analyzer,
                       "SELECT name FROM hotels SKYLINE OF price MIN")
        assert [a.name for a in plan.output] == ["name"]
        skyline = find(plan, L.SkylineOperator)
        assert skyline.resolved
        # The skyline child projection now carries price.
        child_names = [a.name for a in skyline.child.output]
        assert "price" in child_names
        # And the outermost node trims back to the original output.
        assert isinstance(plan, L.Project)

    def test_listing7_aggregate_dimension_propagated(self, analyzer):
        # Skyline over an aggregate not in the select list: the count
        # must be introduced into the Aggregate (Listing 7).
        plan = analyze(analyzer,
                       "SELECT name, sum(nights) AS total FROM bookings "
                       "GROUP BY name SKYLINE OF count(nights) MAX")
        assert plan.resolved
        assert [a.name for a in plan.output] == ["name", "total"]
        aggregate = find(plan, L.Aggregate)
        aggregate_sqls = [
            a.child.sql() for a in aggregate.aggregate_expressions
            if isinstance(a, E.Alias)]
        assert any("count" in s for s in aggregate_sqls)

    def test_skyline_over_select_alias(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT price AS cost FROM hotels "
                       "SKYLINE OF cost MIN")
        assert plan.resolved

    def test_skyline_through_having_filter(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT name, min(price) AS p FROM hotels "
                       "GROUP BY name HAVING min(price) > 0 "
                       "SKYLINE OF max(rating) MAX")
        assert plan.resolved
        skyline = find(plan, L.SkylineOperator)
        # The HAVING filter sits between skyline and aggregate.
        assert isinstance(skyline.child, L.Filter)

    def test_unresolvable_dimension_raises(self, analyzer):
        with pytest.raises(AnalysisError):
            analyze(analyzer, "SELECT name FROM hotels SKYLINE OF ghost MIN")


class TestSortResolution:
    def test_order_by_column_not_in_projection(self, analyzer):
        # Same missing-reference machinery as the skyline (Listing 6).
        plan = analyze(analyzer,
                       "SELECT name FROM hotels ORDER BY price")
        assert plan.resolved
        assert [a.name for a in plan.output] == ["name"]

    def test_order_by_aggregate_appendix_b(self, analyzer):
        # Sort on an aggregate above HAVING: the Appendix B repair.
        plan = analyze(analyzer,
                       "SELECT name FROM hotels GROUP BY name "
                       "HAVING count(*) > 0 ORDER BY min(price)")
        assert plan.resolved
        assert [a.name for a in plan.output] == ["name"]

    def test_order_by_select_alias(self, analyzer):
        plan = analyze(analyzer,
                       "SELECT price AS cost FROM hotels ORDER BY cost")
        assert plan.resolved


class TestCorrelatedSubqueries:
    def test_not_exists_resolves_with_outer_scope(self, analyzer):
        plan = analyze(analyzer, """
            SELECT name FROM hotels AS o WHERE NOT EXISTS(
                SELECT * FROM hotels AS i
                WHERE i.price < o.price)
        """)
        assert plan.resolved
        exists = [e for n in plan.iter_tree() for x in n.expressions()
                  for e in x.iter_tree() if isinstance(e, E.Exists)]
        assert exists
        # The inner filter wraps the outer column in an OuterReference.
        inner_plan = exists[0].plan
        outer_refs = [
            e for node in inner_plan.iter_tree()
            for x in node.expressions()
            for e in x.iter_tree() if isinstance(e, E.OuterReference)]
        assert outer_refs

    def test_scalar_subquery_resolved(self, analyzer):
        plan = analyze(analyzer, """
            SELECT name FROM hotels
            WHERE price = (SELECT min(price) AS m FROM hotels)
        """)
        assert plan.resolved
