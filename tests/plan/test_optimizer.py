"""Optimizer rules, including the skyline rules of Section 5.4."""

import pytest

from repro.engine import expressions as E
from repro.engine.catalog import Catalog, ForeignKey
from repro.engine.row import Field, Schema
from repro.engine.types import DOUBLE, INTEGER, STRING
from repro.plan import logical as L
from repro.plan.analyzer import Analyzer
from repro.plan.optimizer import Optimizer
from repro.sql.parser import parse_query


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(
        "hotels",
        Schema([Field("name", STRING, False),
                Field("price", DOUBLE, False),
                Field("rating", DOUBLE, True),
                Field("city_id", INTEGER, False)]),
        [("A", 100.0, 4.0, 1)],
        primary_key=("name",),
        foreign_keys=[ForeignKey(("city_id",), "cities", ("id",))])
    catalog.create_table(
        "cities",
        Schema([Field("id", INTEGER, False),
                Field("city_name", STRING, False)]),
        [(1, "Vienna")],
        primary_key=("id",))
    return catalog


@pytest.fixture
def pipeline(catalog):
    analyzer = Analyzer(catalog)
    optimizer = Optimizer(catalog)

    def run(sql):
        return optimizer.optimize(analyzer.analyze(parse_query(sql)))

    return run


def find_all(plan, node_type):
    return [n for n in plan.iter_tree() if isinstance(n, node_type)]


class TestGenericRules:
    def test_subquery_aliases_eliminated(self, pipeline):
        plan = pipeline("SELECT name FROM hotels h")
        assert not find_all(plan, L.SubqueryAlias)

    def test_constant_folding(self, pipeline):
        plan = pipeline("SELECT name FROM hotels WHERE price < 10 * 10")
        filters = find_all(plan, L.Filter)
        literals = [e for f in filters
                    for e in f.condition.iter_tree()
                    if isinstance(e, E.Literal)]
        assert any(lit.value == 100 for lit in literals)

    def test_always_true_filter_pruned(self, pipeline):
        plan = pipeline("SELECT name FROM hotels WHERE 1 < 2")
        assert not find_all(plan, L.Filter)

    def test_filters_combined(self, pipeline):
        # Filter over Filter collapses into one conjunction.
        plan = pipeline(
            "SELECT * FROM (SELECT * FROM hotels WHERE price > 1) t "
            "WHERE rating > 2")
        assert len(find_all(plan, L.Filter)) == 1

    def test_projects_collapsed(self, pipeline):
        plan = pipeline(
            "SELECT name FROM (SELECT name, price FROM hotels) t")
        assert len(find_all(plan, L.Project)) == 1

    def test_predicate_pushed_into_join_side(self, pipeline):
        plan = pipeline(
            "SELECT h.name FROM hotels h JOIN cities c "
            "ON h.city_id = c.id WHERE h.price > 10 AND c.city_name = 'V'")
        join = find_all(plan, L.Join)[0]
        # Both conjuncts moved below the join.
        assert isinstance(join.left, L.Filter) or \
            isinstance(join.left, L.LogicalRelation)
        left_filters = find_all(join.left, L.Filter)
        right_filters = find_all(join.right, L.Filter)
        assert left_filters and right_filters

    def test_boolean_simplification(self, pipeline):
        plan = pipeline("SELECT name FROM hotels WHERE price > 5 AND TRUE")
        condition = find_all(plan, L.Filter)[0].condition
        assert isinstance(condition, E.GreaterThan)


class TestExistsRewrite:
    def test_not_exists_becomes_anti_join(self, pipeline):
        plan = pipeline("""
            SELECT name FROM hotels AS o WHERE NOT EXISTS(
                SELECT * FROM hotels AS i WHERE i.price < o.price)
        """)
        joins = find_all(plan, L.Join)
        assert joins and joins[0].join_type == L.JoinType.LEFT_ANTI
        assert joins[0].condition is not None
        assert not E.contains_outer_reference(joins[0].condition)

    def test_exists_becomes_semi_join(self, pipeline):
        plan = pipeline("""
            SELECT name FROM hotels AS o WHERE EXISTS(
                SELECT * FROM hotels AS i WHERE i.price < o.price)
        """)
        joins = find_all(plan, L.Join)
        assert joins and joins[0].join_type == L.JoinType.LEFT_SEMI

    def test_remaining_conjuncts_stay_as_filter(self, pipeline):
        plan = pipeline("""
            SELECT name FROM hotels AS o WHERE o.price > 1 AND NOT EXISTS(
                SELECT * FROM hotels AS i WHERE i.price < o.price)
        """)
        joins = find_all(plan, L.Join)
        assert joins and joins[0].join_type == L.JoinType.LEFT_ANTI
        # price > 1 is still applied (pushed down or above the join).
        filters = find_all(plan, L.Filter)
        assert filters


class TestSingleDimensionSkyline:
    def test_min_dimension_rewritten_to_scalar_subquery(self, pipeline):
        plan = pipeline("SELECT name FROM hotels SKYLINE OF price MIN")
        assert not find_all(plan, L.SkylineOperator)
        subqueries = [e for node in plan.iter_tree()
                      for x in node.expressions()
                      for e in x.iter_tree()
                      if isinstance(e, E.ScalarSubquery)]
        assert subqueries
        aggregate = find_all(subqueries[0].plan, L.Aggregate)[0]
        alias = aggregate.aggregate_expressions[0]
        assert isinstance(alias.child, E.Min)

    def test_max_dimension_uses_max_aggregate(self, pipeline):
        plan = pipeline("SELECT name FROM hotels SKYLINE OF price MAX")
        subqueries = [e for node in plan.iter_tree()
                      for x in node.expressions()
                      for e in x.iter_tree()
                      if isinstance(e, E.ScalarSubquery)]
        aggregate = find_all(subqueries[0].plan, L.Aggregate)[0]
        assert isinstance(aggregate.aggregate_expressions[0].child, E.Max)

    def test_nullable_dimension_keeps_null_rows(self, pipeline):
        # rating is nullable: incomparable null rows stay in the skyline.
        plan = pipeline("SELECT name FROM hotels SKYLINE OF rating MAX")
        assert not find_all(plan, L.SkylineOperator)
        conditions = [f.condition for f in find_all(plan, L.Filter)]
        assert any(isinstance(c, E.Or) and
                   isinstance(c.left, E.IsNull) for c in conditions)

    def test_complete_keyword_drops_null_guard(self, pipeline):
        plan = pipeline(
            "SELECT name FROM hotels SKYLINE OF COMPLETE rating MAX")
        conditions = [f.condition for f in find_all(plan, L.Filter)]
        assert all(not isinstance(c, E.Or) for c in conditions)

    def test_multi_dimension_skyline_not_rewritten(self, pipeline):
        plan = pipeline(
            "SELECT name FROM hotels SKYLINE OF price MIN, rating MAX")
        assert find_all(plan, L.SkylineOperator)

    def test_diff_dimension_not_rewritten(self, pipeline):
        plan = pipeline("SELECT name FROM hotels SKYLINE OF price DIFF")
        assert find_all(plan, L.SkylineOperator)

    def test_distinct_single_dimension_limits_to_one(self, pipeline):
        plan = pipeline(
            "SELECT name FROM hotels SKYLINE OF DISTINCT price MIN")
        limits = find_all(plan, L.Limit)
        assert limits and limits[0].limit == 1


class TestPushSkylineThroughJoin:
    SQL = ("SELECT h.name FROM hotels h JOIN cities c "
           "ON h.city_id = c.id "
           "SKYLINE OF h.price MIN, h.rating MAX")

    def test_pushed_below_non_reductive_join(self, pipeline):
        plan = pipeline(self.SQL)
        skyline = find_all(plan, L.SkylineOperator)[0]
        join = find_all(plan, L.Join)[0]
        # The skyline now sits below the join, on the hotels side.
        assert skyline in list(join.left.iter_tree()) + \
            list(join.right.iter_tree())

    def test_not_pushed_without_foreign_key(self, catalog):
        # Drop the FK: non-reductiveness can no longer be established.
        catalog.lookup("hotels").foreign_keys.clear()
        analyzer, optimizer = Analyzer(catalog), Optimizer(catalog)
        plan = optimizer.optimize(analyzer.analyze(parse_query(self.SQL)))
        skyline = find_all(plan, L.SkylineOperator)[0]
        join = find_all(plan, L.Join)[0]
        assert join in list(skyline.iter_tree())

    def test_not_pushed_when_dimensions_span_sides(self, pipeline):
        plan = pipeline(
            "SELECT h.name FROM hotels h JOIN cities c "
            "ON h.city_id = c.id "
            "SKYLINE OF h.price MIN, c.id MAX")
        skyline = find_all(plan, L.SkylineOperator)[0]
        join = find_all(plan, L.Join)[0]
        assert join in list(skyline.iter_tree())

    def test_rules_can_be_disabled(self, catalog):
        analyzer = Analyzer(catalog)
        optimizer = Optimizer(catalog, enable_skyline_rules=False)
        plan = optimizer.optimize(analyzer.analyze(
            parse_query("SELECT name FROM hotels SKYLINE OF price MIN")))
        assert find_all(plan, L.SkylineOperator)


class TestOptimizedPlansStillCorrect:
    """Optimizations must not change results (Section 5.9)."""

    def test_single_dimension_results_match_unoptimized(self, catalog):
        from repro.api.session import SkylineSession
        session = SkylineSession(num_executors=2)
        session.catalog = catalog
        catalog.create_table(
            "pts",
            Schema([Field("x", INTEGER, False),
                    Field("y", INTEGER, True)]),
            [(3, 1), (1, 2), (1, 9), (2, None), (5, None)])
        optimized = session.sql("SELECT x FROM pts SKYLINE OF x MIN")
        plain = session.with_skyline_algorithm("auto")
        plain.enable_skyline_optimizations = False
        raw = plain.sql("SELECT x FROM pts SKYLINE OF x MIN")
        assert sorted(optimized.to_tuples()) == sorted(raw.to_tuples())

    def test_nullable_single_dimension_results_match(self, catalog):
        from repro.api.session import SkylineSession
        session = SkylineSession(num_executors=2)
        session.catalog = catalog
        catalog.create_table(
            "pts",
            Schema([Field("x", INTEGER, True)]),
            [(3,), (1,), (None,), (2,)])
        fast = session.sql("SELECT x FROM pts SKYLINE OF x MIN")
        slow = SkylineSession(num_executors=2,
                              enable_skyline_optimizations=False)
        slow.catalog = catalog
        raw = slow.sql("SELECT x FROM pts SKYLINE OF x MIN")
        # Both must keep the null row (incomparable) and the minimum.
        assert sorted(fast.to_tuples(), key=repr) == \
            sorted(raw.to_tuples(), key=repr)
        assert (None,) in fast.to_tuples()
