"""Unit tests for the pipelined executor's building blocks.

The end-to-end bit-identity of the pipelined mode is covered by
``tests/integration/test_pipeline_differential.py``; this module pins
the pieces the driver's correctness argument rests on: morsel splits
that reproduce the staged scan's partition boundaries, spill/reload
round-trips, operator queue accounting, and the fold identity of the
incremental-dominance kernel.
"""

from __future__ import annotations

import os

import pytest

from repro.core import make_dimensions
from repro.engine.pipeline import (DEFAULT_OPERATOR_MEMORY_MB,
                                   PIPELINE_MORSEL_ROWS, SpillManager,
                                   _fold_stream_task, _Operator,
                                   _payload_nbytes, _PipelineDriver)
from repro.engine.rdd import RDD
from tests.conftest import skyline_oracle

DIMS = make_dimensions([(0, "min"), (1, "max")])


def _rows(n: int) -> list[tuple]:
    return [((i * 7) % 53, (i * 11) % 29) for i in range(n)]


class TestSplitMorsels:
    @pytest.mark.parametrize("n,parts", [(0, 3), (5, 3), (154, 3),
                                         (5000, 4), (4097, 2)])
    def test_matches_staged_partition_boundaries(self, n, parts):
        """Concatenating a partition's morsels in order must reproduce
        the exact partition the staged scan would build -- the fold
        windows then see the same rows in the same order."""
        rows = _rows(n)
        staged = RDD.from_rows(rows, parts).partitions
        morsels = _PipelineDriver.split_morsels(rows, parts)
        rebuilt: dict[int, list] = {p: [] for p in range(len(staged))}
        for partition, chunk in morsels:
            assert len(chunk) <= PIPELINE_MORSEL_ROWS
            rebuilt[partition].extend(chunk)
        assert [rebuilt[p] for p in sorted(rebuilt)] == staged

    def test_empty_partitions_still_emit_keys(self):
        morsels = _PipelineDriver.split_morsels(_rows(2), 4)
        assert {p for p, _ in morsels} == {0, 1, 2, 3}


class TestSpillManager:
    def test_round_trip_and_cleanup(self):
        spiller = SpillManager()
        payload = _rows(100)
        path, nbytes = spiller.spill(payload)
        assert os.path.exists(path)
        assert nbytes > 0
        assert spiller.spill_count == 1
        assert spiller.load(path) == payload
        assert not os.path.exists(path)  # reload frees the disk copy
        spiller.close()

    def test_close_removes_stragglers(self):
        spiller = SpillManager()
        path, _ = spiller.spill(_rows(10))
        parent = os.path.dirname(path)
        spiller.close()
        assert not os.path.exists(parent)


class TestOperatorQueue:
    def test_enqueue_within_budget_stays_in_memory(self):
        spiller = SpillManager()
        op = _Operator("fold", budget=10_000)
        op.enqueue(0, _rows(10), 4_000, spiller)
        op.enqueue(0, _rows(10), 4_000, spiller)
        assert op.bytes_mem == 8_000
        assert op.spilled_bytes == 0
        assert not op.over_budget()
        spiller.close()

    def test_overflow_spills_but_head_stays_resident(self):
        spiller = SpillManager()
        op = _Operator("fold", budget=5_000)
        op.enqueue(0, _rows(10), 4_000, spiller)
        op.enqueue(0, _rows(10), 4_000, spiller)  # over budget: spills
        assert op.bytes_mem == 4_000  # only the head is resident
        assert op.bytes_total == 8_000
        assert op.spilled_bytes == 4_000
        assert spiller.spill_count == 1
        assert op.over_budget()  # total includes the spilled morsel
        # FIFO order survives the spill, and dequeue reloads from disk.
        first = op.dequeue(spiller)
        second = op.dequeue(spiller)
        assert first.path is None and second.path is None
        assert second.payload == _rows(10)
        assert op.bytes_mem == 0 and op.bytes_total == 0
        spiller.close()

    def test_first_morsel_never_spills_even_if_huge(self):
        spiller = SpillManager()
        op = _Operator("fold", budget=100)
        op.enqueue(0, _rows(50), 1_000_000, spiller)
        assert op.spilled_bytes == 0  # consumer can always progress
        assert op.bytes_mem == 1_000_000
        spiller.close()

    def test_peak_tracks_high_water(self):
        spiller = SpillManager()
        op = _Operator("fold", budget=1_000_000)
        op.enqueue(0, _rows(5), 300, spiller)
        op.enqueue(0, _rows(5), 500, spiller)
        op.dequeue(spiller)
        op.dequeue(spiller)
        assert op.peak_bytes == 800
        spiller.close()


class TestPayloadBytes:
    def test_rows_scale_with_size_and_width(self):
        small = _payload_nbytes(_rows(10))
        large = _payload_nbytes(_rows(1000))
        assert large > small > 0

    def test_column_batch_uses_real_nbytes(self):
        pytest.importorskip("numpy")
        from repro.engine.batch import ColumnBatch
        batch = ColumnBatch.from_rows(_rows(100), 2)
        assert _payload_nbytes(batch) == batch.nbytes


class TestFoldIdentity:
    def test_streamed_folds_equal_oracle(self):
        """Folding morsels through the incremental kernel one task at a
        time (checkpoint out, checkpoint in) must equal the all-pairs
        skyline of the union -- the invariant that lets local windows
        ship between waves."""
        rows = _rows(500)
        morsels = [rows[i:i + 50] for i in range(0, len(rows), 50)]
        state = None
        for morsel in morsels:
            state, _, comparisons = _fold_stream_task(
                state, [morsel], DIMS, False)
            assert comparisons >= 0
        got = sorted((tuple(r) for r in state["window"]), key=repr)
        want = sorted(skyline_oracle(rows, DIMS), key=repr)
        assert got == want

    def test_default_budget_is_positive(self):
        assert DEFAULT_OPERATOR_MEMORY_MB > 0
