"""CSV data source."""

import pytest

from repro import SkylineSession
from repro.engine.io import read_csv, write_csv
from repro.engine.row import Field, Schema
from repro.engine.types import DOUBLE, INTEGER, STRING
from repro.errors import AnalysisError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "hotels.csv"
    path.write_text(
        "name,price,rating\n"
        "Alpha,120.5,4\n"
        "Beach,90,3\n"
        "Gamma,,5\n")
    return path


class TestReadCsv:
    def test_inference(self, csv_file):
        schema, rows = read_csv(csv_file)
        assert schema.names == ["name", "price", "rating"]
        assert schema.field("price").dtype == DOUBLE
        assert schema.field("rating").dtype == INTEGER
        assert schema.field("price").nullable
        assert rows[2] == ("Gamma", None, 5)

    def test_explicit_schema(self, csv_file):
        schema = Schema([Field("name", STRING, False),
                         Field("price", DOUBLE, True),
                         Field("rating", DOUBLE, False)])
        _, rows = read_csv(csv_file, schema=schema)
        assert rows[0] == ("Alpha", 120.5, 4.0)

    def test_no_header(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1,2\n3,4\n")
        schema, rows = read_csv(path, header=False)
        assert schema.names == ["_c0", "_c1"]
        assert rows == [(1, 2), (3, 4)]

    def test_boolean_parsing(self, tmp_path):
        path = tmp_path / "flags.csv"
        path.write_text("flag\ntrue\nfalse\n")
        schema, rows = read_csv(path)
        assert rows == [(True,), (False,)]

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(AnalysisError, match="expected 2 fields"):
            read_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(AnalysisError, match="empty"):
            read_csv(path)

    def test_schema_width_validated(self, csv_file):
        with pytest.raises(AnalysisError, match="width"):
            read_csv(csv_file, schema=Schema([Field("x", STRING)]))


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        schema = Schema([Field("a", INTEGER, True),
                         Field("b", STRING, False)])
        rows = [(1, "x"), (None, "y")]
        path = tmp_path / "out.csv"
        write_csv(path, schema, rows)
        back_schema, back_rows = read_csv(path)
        assert back_rows == rows
        assert back_schema.names == ["a", "b"]


class TestSessionIntegration:
    def test_read_csv_into_dataframe(self, csv_file):
        session = SkylineSession(num_executors=2)
        df = session.read_csv(csv_file)
        assert df.count() == 3

    def test_read_csv_registers_table_and_skylines(self, csv_file):
        session = SkylineSession(num_executors=2)
        session.read_csv(csv_file, table_name="hotels")
        rows = session.sql(
            "SELECT name FROM hotels "
            "SKYLINE OF price MIN, rating MAX").collect()
        # Gamma (null price, top rating) dominates both other hotels on
        # the only commonly non-null dimension -- null-aware semantics.
        names = {r.name for r in rows}
        assert names == {"Gamma"}
