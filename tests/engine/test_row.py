"""Rows and schemas."""

import pytest

from repro.engine.row import Field, Row, Schema, infer_schema
from repro.engine.types import DOUBLE, INTEGER, STRING


@pytest.fixture
def schema():
    return Schema([Field("id", INTEGER, False), Field("price", DOUBLE),
                   Field("name", STRING)])


class TestSchema:
    def test_index_lookup_case_insensitive(self, schema):
        assert schema.index_of("id") == 0
        assert schema.index_of("PRICE") == 1

    def test_contains(self, schema):
        assert schema.contains("name")
        assert not schema.contains("missing")

    def test_field_access(self, schema):
        assert schema.field("price").dtype == DOUBLE
        assert schema[0].name == "id"

    def test_names_in_order(self, schema):
        assert schema.names == ["id", "price", "name"]

    def test_missing_name_raises(self, schema):
        with pytest.raises(KeyError):
            schema.index_of("ghost")

    def test_equality_and_hash(self, schema):
        clone = Schema(list(schema.fields))
        assert schema == clone
        assert hash(schema) == hash(clone)

    def test_duplicate_names_first_wins(self):
        schema = Schema([Field("x", INTEGER), Field("x", DOUBLE)])
        assert schema.index_of("x") == 0

    def test_len_and_iter(self, schema):
        assert len(schema) == 3
        assert [f.name for f in schema] == ["id", "price", "name"]


class TestInferSchema:
    def test_types_from_first_non_null(self):
        schema = infer_schema(["a", "b"], [(None, "x"), (3, "y")])
        assert schema.field("a").dtype == INTEGER
        assert schema.field("a").nullable
        assert schema.field("b").dtype == STRING
        assert not schema.field("b").nullable

    def test_all_null_column_defaults_to_string(self):
        schema = infer_schema(["a"], [(None,), (None,)])
        assert schema.field("a").dtype == STRING
        assert schema.field("a").nullable


class TestRow:
    def test_access_by_position_name_attribute(self, schema):
        row = Row((1, 9.5, "ok"), schema)
        assert row[0] == 1
        assert row["price"] == 9.5
        assert row.name == "ok"

    def test_unknown_attribute_raises(self, schema):
        row = Row((1, 9.5, "ok"), schema)
        with pytest.raises(AttributeError):
            row.ghost

    def test_as_dict_and_tuple(self, schema):
        row = Row((1, 9.5, "ok"), schema)
        assert row.as_dict() == {"id": 1, "price": 9.5, "name": "ok"}
        assert row.as_tuple() == (1, 9.5, "ok")

    def test_equality_with_rows_and_tuples(self, schema):
        row = Row((1, 9.5, "ok"), schema)
        assert row == Row((1, 9.5, "ok"), schema)
        assert row == (1, 9.5, "ok")
        assert row != (2, 9.5, "ok")

    def test_iteration_and_len(self, schema):
        row = Row((1, 9.5, "ok"), schema)
        assert list(row) == [1, 9.5, "ok"]
        assert len(row) == 3

    def test_repr_contains_names(self, schema):
        assert "price=9.5" in repr(Row((1, 9.5, "ok"), schema))
