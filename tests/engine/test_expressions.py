"""Expression trees: three-valued logic, binding, aggregates."""

import pytest

from repro.core.dominance import DimensionKind
from repro.engine import expressions as E
from repro.engine.types import BOOLEAN, DOUBLE, INTEGER, STRING
from repro.errors import AnalysisError


def bound(index, dtype=INTEGER, nullable=True):
    return E.BoundReference(index, dtype, nullable)


class TestLiteral:
    def test_eval_and_type(self):
        assert E.Literal(5).eval(()) == 5
        assert E.Literal(5).dtype == INTEGER
        assert E.Literal("x").dtype == STRING

    def test_null_literal_nullable(self):
        lit = E.Literal(None, STRING)
        assert lit.nullable
        assert not E.Literal(1).nullable

    def test_sql_rendering(self):
        assert E.Literal("o'brien").sql() == "'o''brien'"
        assert E.Literal(None, STRING).sql() == "NULL"

    def test_equality(self):
        assert E.Literal(1) == E.Literal(1)
        assert E.Literal(1) != E.Literal(1.0)


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        expr = E.LessThan(bound(0), bound(1))
        assert expr.eval((None, 1)) is None
        assert expr.eval((1, None)) is None
        assert expr.eval((0, 1)) is True

    def test_and_kleene(self):
        a, b = bound(0, BOOLEAN), bound(1, BOOLEAN)
        expr = E.And(a, b)
        assert expr.eval((False, None)) is False
        assert expr.eval((None, False)) is False
        assert expr.eval((True, None)) is None
        assert expr.eval((True, True)) is True

    def test_or_kleene(self):
        a, b = bound(0, BOOLEAN), bound(1, BOOLEAN)
        expr = E.Or(a, b)
        assert expr.eval((True, None)) is True
        assert expr.eval((None, True)) is True
        assert expr.eval((False, None)) is None
        assert expr.eval((False, False)) is False

    def test_not_propagates_null(self):
        expr = E.Not(bound(0, BOOLEAN))
        assert expr.eval((None,)) is None
        assert expr.eval((True,)) is False

    def test_null_safe_equality(self):
        expr = E.EqualNullSafe(bound(0), bound(1))
        assert expr.eval((None, None)) is True
        assert expr.eval((None, 1)) is False
        assert expr.eval((1, 1)) is True

    def test_is_null_checks(self):
        assert E.IsNull(bound(0)).eval((None,)) is True
        assert E.IsNotNull(bound(0)).eval((None,)) is False


class TestArithmetic:
    def test_basic_operations(self):
        a, b = bound(0), bound(1)
        assert E.Add(a, b).eval((2, 3)) == 5
        assert E.Subtract(a, b).eval((2, 3)) == -1
        assert E.Multiply(a, b).eval((2, 3)) == 6
        assert E.Modulo(a, b).eval((7, 3)) == 1

    def test_division_by_zero_yields_null(self):
        assert E.Divide(bound(0), bound(1)).eval((1, 0)) is None
        assert E.Modulo(bound(0), bound(1)).eval((1, 0)) is None

    def test_null_propagation(self):
        assert E.Add(bound(0), bound(1)).eval((None, 3)) is None

    def test_negate(self):
        assert E.Negate(bound(0)).eval((5,)) == -5
        assert E.Negate(bound(0)).eval((None,)) is None

    def test_type_widening(self):
        expr = E.Add(E.Literal(1), E.Literal(2.0))
        assert expr.dtype == DOUBLE

    def test_arithmetic_on_strings_unresolved(self):
        expr = E.Add(E.Literal("a"), E.Literal(1))
        assert not expr.resolved


class TestConditionalFunctions:
    def test_ifnull(self):
        expr = E.IfNull(bound(0), E.Literal(0))
        assert expr.eval((None,)) == 0
        assert expr.eval((7,)) == 7

    def test_coalesce(self):
        expr = E.Coalesce(bound(0), bound(1), E.Literal(9))
        assert expr.eval((None, None)) == 9
        assert expr.eval((None, 5)) == 5

    def test_coalesce_requires_args(self):
        with pytest.raises(AnalysisError):
            E.Coalesce()

    def test_abs(self):
        assert E.Abs(bound(0)).eval((-4,)) == 4

    def test_case_when(self):
        expr = E.CaseWhen(
            [(E.GreaterThan(bound(0), E.Literal(0)), E.Literal("pos")),
             (E.LessThan(bound(0), E.Literal(0)), E.Literal("neg"))],
            E.Literal("zero"))
        assert expr.eval((3,)) == "pos"
        assert expr.eval((-3,)) == "neg"
        assert expr.eval((0,)) == "zero"

    def test_case_when_with_children_roundtrip(self):
        expr = E.CaseWhen([(E.Literal(True), E.Literal(1))], E.Literal(2))
        clone = expr.with_children(list(expr.children))
        assert clone.eval(()) == 1


class TestAggregates:
    def test_min_max_skip_nulls(self):
        m = E.Min(bound(0))
        acc = m.initial()
        for value in (None, 3, 1, None, 2):
            acc = m.update(acc, value)
        assert m.result(acc) == 1
        m = E.Max(bound(0))
        acc = m.initial()
        for value in (None, 3, 1):
            acc = m.update(acc, value)
        assert m.result(acc) == 3

    def test_sum_empty_is_null(self):
        s = E.Sum(bound(0))
        assert s.result(s.initial()) is None

    def test_count_ignores_nulls(self):
        c = E.Count(bound(0))
        acc = c.initial()
        for value in (1, None, 2):
            acc = c.update(acc, value)
        assert c.result(acc) == 2

    def test_count_distinct(self):
        c = E.Count(bound(0), is_distinct=True)
        acc = c.initial()
        for value in (1, 1, 2, None, 2):
            acc = c.update(acc, value)
        assert c.result(acc) == 2

    def test_average(self):
        a = E.Average(bound(0))
        acc = a.initial()
        for value in (2, 4, None):
            acc = a.update(acc, value)
        assert a.result(acc) == 3.0
        assert a.result(a.initial()) is None

    def test_contains_aggregate(self):
        expr = E.Add(E.Min(bound(0)), E.Literal(1))
        assert expr.contains_aggregate()
        assert not E.Literal(1).contains_aggregate()


class TestAttributesAndBinding:
    def test_expr_ids_unique(self):
        a = E.AttributeReference("x", INTEGER)
        b = E.AttributeReference("x", INTEGER)
        assert a.expr_id != b.expr_id
        assert a != b

    def test_equality_by_id_not_name(self):
        a = E.AttributeReference("x", INTEGER)
        same = E.AttributeReference("renamed", INTEGER, expr_id=a.expr_id)
        assert a == same

    def test_with_qualifier_preserves_identity(self):
        a = E.AttributeReference("x", INTEGER)
        qualified = a.with_qualifier("t")
        assert qualified == a
        assert qualified.qualifier == "t"

    def test_bind_expression_by_id(self):
        a = E.AttributeReference("x", INTEGER)
        b = E.AttributeReference("y", INTEGER)
        expr = E.Add(b, a)
        bound_expr = E.bind_expression(expr, [a, b])
        assert bound_expr.eval((10, 20)) == 30

    def test_bind_missing_attribute_raises(self):
        a = E.AttributeReference("x", INTEGER)
        with pytest.raises(AnalysisError, match="not found in input"):
            E.bind_expression(a, [])

    def test_unbound_attribute_eval_raises(self):
        with pytest.raises(AnalysisError):
            E.AttributeReference("x", INTEGER).eval(())


class TestAlias:
    def test_to_attribute_keeps_id(self):
        alias = E.Alias(E.Literal(1), "one")
        attr = alias.to_attribute()
        assert attr.expr_id == alias.expr_id
        assert attr.name == "one"
        assert attr.dtype == INTEGER

    def test_alias_helper_method(self):
        alias = E.Literal(2).alias("two")
        assert isinstance(alias, E.Alias)
        assert alias.display_name == "two"

    def test_named_output_requires_name(self):
        with pytest.raises(AnalysisError):
            E.named_output(E.Add(E.Literal(1), E.Literal(2)))


class TestTreeTransforms:
    def test_transform_up_rebuilds_tree(self):
        expr = E.Add(E.Literal(1), E.Literal(2))

        def bump(node):
            if isinstance(node, E.Literal):
                return E.Literal(node.value + 10)
            return node

        assert expr.transform_up(bump).eval(()) == 23

    def test_iter_tree_preorder(self):
        expr = E.Add(E.Literal(1), E.Literal(2))
        kinds = [type(n).__name__ for n in expr.iter_tree()]
        assert kinds == ["Add", "Literal", "Literal"]

    def test_split_and_rebuild_conjunction(self):
        a, b, c = E.Literal(True), E.Literal(False), E.Literal(True)
        expr = E.And(E.And(a, b), c)
        assert E.split_conjuncts(expr) == [a, b, c]
        assert E.conjunction([]).eval(()) is True
        assert E.disjunction([]).eval(()) is False


class TestOuterReference:
    def test_wraps_without_exposing_reference(self):
        attr = E.AttributeReference("x", INTEGER)
        outer = E.OuterReference(attr)
        assert outer.resolved
        assert outer.dtype == INTEGER
        assert outer.references() == set()

    def test_strip_outer_references(self):
        attr = E.AttributeReference("x", INTEGER)
        expr = E.LessThan(E.OuterReference(attr), E.Literal(1))
        stripped = E.strip_outer_references(expr)
        assert attr in stripped.references()
        assert E.contains_outer_reference(expr)
        assert not E.contains_outer_reference(stripped)


class TestSkylineDimension:
    def test_resolution_requires_orderable_type(self):
        dim = E.SkylineDimension(E.Literal(1), DimensionKind.MIN)
        assert dim.resolved
        assert dim.sql() == "1 MIN"

    def test_copy_replaces_parts(self):
        dim = E.SkylineDimension(E.Literal(1), DimensionKind.MIN)
        flipped = dim.copy(kind=DimensionKind.MAX)
        assert flipped.kind is DimensionKind.MAX
        assert flipped.child is dim.child

    def test_accepts_string_kind(self):
        dim = E.SkylineDimension(E.Literal(1), "diff")
        assert dim.kind is DimensionKind.DIFF
