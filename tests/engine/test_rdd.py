"""RDD partitioning semantics."""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.rdd import RDD, stable_hash


class TestConstruction:
    def test_from_rows_splits_evenly(self):
        rdd = RDD.from_rows([(i,) for i in range(10)], 3)
        assert rdd.partition_sizes() == [4, 3, 3]
        assert rdd.count() == 10

    def test_from_rows_single_partition(self):
        rdd = RDD.from_rows([(1,), (2,)], 1)
        assert rdd.num_partitions == 1

    def test_more_partitions_than_rows(self):
        rdd = RDD.from_rows([(1,)], 4)
        assert rdd.num_partitions == 4
        assert rdd.partition_sizes() == [1, 0, 0, 0]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            RDD.from_rows([], 0)

    def test_empty(self):
        assert RDD.empty(3).count() == 0
        assert RDD.empty(3).num_partitions == 3

    @given(st.lists(st.tuples(st.integers()), max_size=50),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_split_preserves_order_and_content(self, rows, k):
        assert RDD.from_rows(rows, k).collect() == rows


class TestTransformations:
    def test_map_rows(self):
        rdd = RDD.from_rows([(1,), (2,)], 2)
        assert rdd.map_rows(lambda r: (r[0] * 10,)).collect() == \
            [(10,), (20,)]

    def test_filter_rows(self):
        rdd = RDD.from_rows([(i,) for i in range(6)], 2)
        assert rdd.filter_rows(lambda r: r[0] % 2 == 0).collect() == \
            [(0,), (2,), (4,)]

    def test_map_partitions_sees_partition_lists(self):
        rdd = RDD.from_rows([(i,) for i in range(4)], 2)
        counted = rdd.map_partitions(lambda p: [(len(p),)])
        assert counted.collect() == [(2,), (2,)]


class TestShuffles:
    def test_coalesce_to_one_is_alltuples(self):
        rdd = RDD.from_rows([(i,) for i in range(5)], 3)
        merged = rdd.coalesce_to_one()
        assert merged.num_partitions == 1
        assert merged.collect() == rdd.collect()

    def test_repartition(self):
        rdd = RDD.from_rows([(i,) for i in range(9)], 2).repartition(3)
        assert rdd.num_partitions == 3
        assert rdd.count() == 9

    def test_partition_by_key_groups_all_equal_keys(self):
        rows = [(1, "a"), (2, "b"), (1, "c"), (3, "d")]
        rdd = RDD.from_rows(rows, 2).partition_by_key(lambda r: r[0])
        partitions = [set(p) for p in rdd.partitions]
        assert {(1, "a"), (1, "c")} in partitions
        assert len(rdd.partitions) == 3

    def test_partition_by_key_on_empty(self):
        rdd = RDD.empty(2).partition_by_key(lambda r: r[0])
        assert rdd.num_partitions == 1
        assert rdd.count() == 0

    def test_hash_partition_deterministic_and_lossless(self):
        rows = [(i,) for i in range(20)]
        rdd = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 4)
        assert rdd.num_partitions == 4
        assert sorted(rdd.collect()) == rows
        again = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 4)
        assert rdd.partitions == again.partitions

    def test_hash_partition_validates_count(self):
        with pytest.raises(ValueError):
            RDD.empty().hash_partition(lambda r: r, 0)

    def test_hash_partition_handles_string_keys(self):
        rows = [(word,) for word in
                "alpha beta gamma delta epsilon zeta".split()]
        rdd = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 3)
        assert sorted(rdd.collect()) == sorted(rows)


_PLACEMENT_SCRIPT = """
import json, sys
from repro.engine.rdd import RDD
rows = [(word, i) for i, word in enumerate(
    "alpha beta gamma delta epsilon zeta eta theta".split())]
rdd = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 4)
print(json.dumps([[list(row) for row in p] for p in rdd.partitions]))
"""


class TestStableHashPlacement:
    """``hash_partition`` must place rows identically across processes.

    The builtin ``hash()`` is seeded per process for strings
    (PYTHONHASHSEED), which made shuffle placement differ between the
    driver and pool workers and across runs; :func:`stable_hash` pins
    it.  The regression test runs the same shuffle in two subprocesses
    with *different* hash seeds and asserts identical placement.
    """

    def _placement(self, hash_seed: str) -> list:
        import pathlib
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", _PLACEMENT_SCRIPT],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": str(src),
                 "PATH": "/usr/bin:/bin"})
        return json.loads(result.stdout)

    def test_placement_identical_across_hash_seeds(self):
        first = self._placement("1")
        second = self._placement("4242")
        assert first == second
        assert first == self._placement("random")

    def test_stable_hash_is_deterministic_for_common_key_types(self):
        # Pinned values: changing them silently would re-shuffle every
        # persisted placement, so make that an explicit decision.
        assert stable_hash("alpha") == stable_hash("alpha")
        assert stable_hash(("a", 1, 2.5, None, True)) == \
            stable_hash(("a", 1, 2.5, None, True))
        assert stable_hash("alpha") != stable_hash("beta")

    def test_stable_hash_co_locates_numerically_equal_keys(self):
        # hash() guarantees hash(x) == hash(y) whenever x == y; the
        # stable replacement must keep equal keys in one partition.
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(-0.0) == stable_hash(False)
        assert stable_hash(2 ** 60) == stable_hash(2.0 ** 60)
        assert stable_hash(("k", 1)) == stable_hash(("k", 1.0))
        assert stable_hash(1.5) != stable_hash(1)


class TestBatchRDDShuffles:
    """Batch-native shuffles must place rows exactly like the row RDD."""

    ROWS = [(float(i % 7), float(i % 4), i) for i in range(40)]

    def _batch_rdd(self):
        from repro.engine.batch import ColumnBatch
        from repro.engine.rdd import BatchRDD
        half = len(self.ROWS) // 2
        return BatchRDD([ColumnBatch.from_rows(self.ROWS[:half], 3),
                         ColumnBatch.from_rows(self.ROWS[half:], 3)])

    def test_hash_partition_matches_row_rdd(self):
        key = lambda row: row[0]
        expected = RDD.from_rows(self.ROWS, 1).hash_partition(key, 4)
        shuffled = self._batch_rdd().hash_partition(key, 4)
        assert [b.to_rows() for b in shuffled.batches] == \
            expected.partitions

    def test_hash_partition_rejects_bad_count(self):
        with pytest.raises(ValueError):
            self._batch_rdd().hash_partition(lambda r: r[0], 0)

    def test_take_partitions_slices_iteration_order(self):
        shuffled = self._batch_rdd().take_partitions([[0, 2], [1], []])
        parts = [b.to_rows() for b in shuffled.batches]
        assert parts == [[self.ROWS[0], self.ROWS[2]], [self.ROWS[1]], []]

    def test_take_partitions_empty_keeps_schema(self):
        shuffled = self._batch_rdd().take_partitions([])
        assert len(shuffled.batches) == 1
        only = shuffled.batches[0]
        assert only.num_rows == 0
        assert len(only.columns) == 3
