"""RDD partitioning semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.rdd import RDD


class TestConstruction:
    def test_from_rows_splits_evenly(self):
        rdd = RDD.from_rows([(i,) for i in range(10)], 3)
        assert rdd.partition_sizes() == [4, 3, 3]
        assert rdd.count() == 10

    def test_from_rows_single_partition(self):
        rdd = RDD.from_rows([(1,), (2,)], 1)
        assert rdd.num_partitions == 1

    def test_more_partitions_than_rows(self):
        rdd = RDD.from_rows([(1,)], 4)
        assert rdd.num_partitions == 4
        assert rdd.partition_sizes() == [1, 0, 0, 0]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            RDD.from_rows([], 0)

    def test_empty(self):
        assert RDD.empty(3).count() == 0
        assert RDD.empty(3).num_partitions == 3

    @given(st.lists(st.tuples(st.integers()), max_size=50),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_split_preserves_order_and_content(self, rows, k):
        assert RDD.from_rows(rows, k).collect() == rows


class TestTransformations:
    def test_map_rows(self):
        rdd = RDD.from_rows([(1,), (2,)], 2)
        assert rdd.map_rows(lambda r: (r[0] * 10,)).collect() == \
            [(10,), (20,)]

    def test_filter_rows(self):
        rdd = RDD.from_rows([(i,) for i in range(6)], 2)
        assert rdd.filter_rows(lambda r: r[0] % 2 == 0).collect() == \
            [(0,), (2,), (4,)]

    def test_map_partitions_sees_partition_lists(self):
        rdd = RDD.from_rows([(i,) for i in range(4)], 2)
        counted = rdd.map_partitions(lambda p: [(len(p),)])
        assert counted.collect() == [(2,), (2,)]


class TestShuffles:
    def test_coalesce_to_one_is_alltuples(self):
        rdd = RDD.from_rows([(i,) for i in range(5)], 3)
        merged = rdd.coalesce_to_one()
        assert merged.num_partitions == 1
        assert merged.collect() == rdd.collect()

    def test_repartition(self):
        rdd = RDD.from_rows([(i,) for i in range(9)], 2).repartition(3)
        assert rdd.num_partitions == 3
        assert rdd.count() == 9

    def test_partition_by_key_groups_all_equal_keys(self):
        rows = [(1, "a"), (2, "b"), (1, "c"), (3, "d")]
        rdd = RDD.from_rows(rows, 2).partition_by_key(lambda r: r[0])
        partitions = [set(p) for p in rdd.partitions]
        assert {(1, "a"), (1, "c")} in partitions
        assert len(rdd.partitions) == 3

    def test_partition_by_key_on_empty(self):
        rdd = RDD.empty(2).partition_by_key(lambda r: r[0])
        assert rdd.num_partitions == 1
        assert rdd.count() == 0

    def test_hash_partition_deterministic_and_lossless(self):
        rows = [(i,) for i in range(20)]
        rdd = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 4)
        assert rdd.num_partitions == 4
        assert sorted(rdd.collect()) == rows
        again = RDD.from_rows(rows, 2).hash_partition(lambda r: r[0], 4)
        assert rdd.partitions == again.partitions

    def test_hash_partition_validates_count(self):
        with pytest.raises(ValueError):
            RDD.empty().hash_partition(lambda r: r, 0)
