"""Catalog and constraint metadata."""

import pytest

from repro.engine.catalog import Catalog, ForeignKey, Table
from repro.engine.row import Field, Schema
from repro.engine.types import INTEGER, STRING
from repro.errors import AnalysisError


@pytest.fixture
def catalog():
    return Catalog()


def make_schema():
    return Schema([Field("id", INTEGER, False), Field("name", STRING)])


class TestCatalog:
    def test_register_and_lookup_case_insensitive(self, catalog):
        catalog.create_table("Users", make_schema(), [(1, "a")])
        assert catalog.lookup("users").name == "Users"
        assert catalog.exists("USERS")

    def test_lookup_missing_raises(self, catalog):
        with pytest.raises(AnalysisError, match="not found"):
            catalog.lookup("ghost")

    def test_replace_semantics(self, catalog):
        catalog.create_table("t", make_schema(), [(1, "a")])
        catalog.create_table("t", make_schema(), [(2, "b")])
        assert catalog.lookup("t").rows == [(2, "b")]

    def test_register_no_replace(self, catalog):
        catalog.create_table("t", make_schema(), [])
        with pytest.raises(AnalysisError, match="already exists"):
            catalog.register(Table("t", make_schema(), []), replace=False)

    def test_drop_and_names(self, catalog):
        catalog.create_table("a", make_schema(), [])
        catalog.create_table("b", make_schema(), [])
        catalog.drop("a")
        assert catalog.table_names() == ["b"]
        catalog.drop("a")  # idempotent


class TestTable:
    def test_row_width_validated(self):
        with pytest.raises(AnalysisError, match="row width"):
            Table("t", make_schema(), [(1,)])

    def test_constraints_recorded(self, catalog):
        table = catalog.create_table(
            "orders", make_schema(), [],
            primary_key=("id",),
            foreign_keys=[ForeignKey(("id",), "users", ("id",))],
            unique_keys=[("name",)])
        assert table.primary_key == ("id",)
        assert table.foreign_keys[0].ref_table == "users"
        assert table.unique_keys == [("name",)]

    def test_num_rows(self):
        assert Table("t", make_schema(), [(1, "a")]).num_rows == 1
