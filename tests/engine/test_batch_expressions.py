"""Differential suite for batch expression evaluation.

Every vectorizable expression class is evaluated via ``eval_batch``
against the row-at-a-time ``eval`` reference on generated data covering
nulls, mixed dtypes, ±inf/NaN, big integers (forcing the exactness
fallback) and empty batches -- mirroring the PR-3 oracle-suite pattern
for the skyline kernels.  Any divergence between the columnar forms and
the scalar three-valued-logic semantics surfaces here as a value- or
type-level mismatch.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.engine import expressions as E
from repro.engine.batch import ColumnBatch

SEED = 20230331


def _value_pool(kind: str) -> list:
    if kind == "float":
        return [0.0, -0.0, 1.5, -2.25, 3.0, 1e16, -1e16,
                float("inf"), float("-inf"), float("nan"), None]
    if kind == "int":
        return [0, 1, -1, 7, 100, -3, 2 ** 40, -2 ** 40, None]
    if kind == "bigint":
        return [0, 5, 2 ** 60, -2 ** 60, 2 ** 70, None]
    if kind == "bool":
        return [True, False, None]
    if kind == "str":
        return ["a", "b", "", None]
    raise AssertionError(kind)


def make_rows(kinds: list[str], n: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    pools = [_value_pool(kind) for kind in kinds]
    return [tuple(rng.choice(pool) for pool in pools) for _ in range(n)]


def same_value(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
    if type(a) is not type(b):
        # Identical types required even for numerics: the batch plane
        # must not turn an int into a float (or vice versa).
        return False
    return a == b


def assert_batch_matches_rows(expr: E.Expression, rows: list[tuple],
                              width: int) -> None:
    batch = ColumnBatch.from_rows(rows, width)
    got = expr.eval_batch(batch).to_values()
    want = [expr.eval(row) for row in rows]
    assert len(got) == len(want)
    for g, w, row in zip(got, want, rows):
        assert same_value(g, w), (expr, row, g, w)


def col(i: int, dtype=None) -> E.BoundReference:
    from repro.engine.types import DOUBLE
    return E.BoundReference(i, dtype or DOUBLE)


ARITHMETIC = [
    lambda a, b: E.Add(a, b),
    lambda a, b: E.Subtract(a, b),
    lambda a, b: E.Multiply(a, b),
    lambda a, b: E.Divide(a, b),
    lambda a, b: E.Modulo(a, b),
]

COMPARISONS = [
    lambda a, b: E.EqualTo(a, b),
    lambda a, b: E.NotEqualTo(a, b),
    lambda a, b: E.LessThan(a, b),
    lambda a, b: E.LessThanOrEqual(a, b),
    lambda a, b: E.GreaterThan(a, b),
    lambda a, b: E.GreaterThanOrEqual(a, b),
    lambda a, b: E.EqualNullSafe(a, b),
]

UNARY = [
    lambda a: E.Negate(a),
    lambda a: E.Abs(a),
    lambda a: E.IsNull(a),
    lambda a: E.IsNotNull(a),
]

#: Column-kind pairs every binary operator is exercised on: uniform
#: floats, uniform ints, the int/float mix, big ints (fallback) and
#: strings (fallback for comparisons).
KIND_PAIRS = [("float", "float"), ("int", "int"), ("int", "float"),
              ("bigint", "int"), ("bigint", "float")]


@pytest.mark.parametrize("make", ARITHMETIC + COMPARISONS)
@pytest.mark.parametrize("kinds", KIND_PAIRS)
def test_binary_operators_match_row_eval(make, kinds):
    rows = make_rows(list(kinds), 80, SEED)
    expr = make(col(0), col(1))
    assert_batch_matches_rows(expr, rows, 2)


@pytest.mark.parametrize("make", ARITHMETIC + COMPARISONS)
def test_binary_operators_on_empty_batch(make):
    assert_batch_matches_rows(make(col(0), col(1)), [], 2)


@pytest.mark.parametrize("make", UNARY)
@pytest.mark.parametrize("kind", ["float", "int", "bigint", "bool",
                                  "str"])
def test_unary_operators_match_row_eval(make, kind):
    # Abs/Negate raise on strings in both planes; skip that pairing.
    rows = make_rows([kind], 60, SEED + 1)
    expr = make(col(0))
    if kind == "str" and isinstance(expr, (E.Negate, E.Abs)):
        pytest.skip("arithmetic on strings is a type error in both "
                    "planes")
    assert_batch_matches_rows(expr, rows, 1)


@pytest.mark.parametrize("kinds", [("bool", "bool")])
def test_kleene_logic_matches_row_eval(kinds):
    rows = make_rows(list(kinds), 120, SEED + 2)
    a, b = col(0), col(1)
    for expr in (E.And(a, b), E.Or(a, b), E.Not(a),
                 E.And(E.Not(a), E.Or(a, b))):
        assert_batch_matches_rows(expr, rows, 2)


def test_predicate_trees_over_mixed_columns():
    rows = make_rows(["float", "int", "str", "bool"], 150, SEED + 3)
    a, b, s, flag = col(0), col(1), col(2), col(3)
    predicates = [
        E.And(E.LessThan(a, E.Literal(1.0)),
              E.GreaterThan(b, E.Literal(0))),
        E.Or(E.IsNull(a), E.And(flag, E.IsNotNull(s))),
        E.Not(E.Or(E.EqualTo(a, b), E.IsNull(b))),
        E.And(E.EqualNullSafe(a, b), E.NotEqualTo(b, E.Literal(7))),
    ]
    for predicate in predicates:
        assert_batch_matches_rows(predicate, rows, 4)


def test_conditional_and_null_functions():
    rows = make_rows(["float", "float", "int"], 100, SEED + 4)
    a, b, c = col(0), col(1), col(2)
    exprs = [
        E.IfNull(a, b),
        E.IfNull(a, E.Literal(0.0)),
        E.Coalesce(a, b),
        E.Coalesce(a, b, E.Literal(-1.0)),
        # Mixed kinds (float fallback to int) must keep the original
        # value types -- exercised via the row fallback.
        E.Coalesce(a, c),
        E.CaseWhen([(E.GreaterThan(a, E.Literal(0.0)), b)], a),
    ]
    for expr in exprs:
        assert_batch_matches_rows(expr, rows, 3)


def test_literals_broadcast():
    rows = make_rows(["float"], 10, SEED + 5)
    for value in (1.5, 7, True, "x", None):
        assert_batch_matches_rows(E.Literal(value), rows, 1)


def test_arithmetic_composition():
    rows = make_rows(["float", "int", "float"], 120, SEED + 6)
    a, b, c = col(0), col(1), col(2)
    exprs = [
        E.Add(E.Multiply(a, E.Literal(2.0)), E.Negate(c)),
        E.Divide(E.Subtract(a, c), E.Add(b, E.Literal(1))),
        E.Modulo(b, E.Literal(3)),
        E.Abs(E.Subtract(a, c)),
    ]
    for expr in exprs:
        assert_batch_matches_rows(expr, rows, 3)


def test_int64_overflow_guards_fall_back_exactly():
    # Values big enough that int64 arithmetic would overflow: the
    # batch plane must detect the bound and take the row fallback,
    # where Python's arbitrary precision is the reference.
    near = 2 ** 62 - 10
    rows = [(near, near), (-near, near), (2 ** 35, 2 ** 35), (3, 4)]
    for make in ARITHMETIC:
        assert_batch_matches_rows(make(col(0), col(1)), rows, 2)


def test_int64_min_does_not_defeat_the_overflow_guard():
    # Regression: np.abs(INT64_MIN) overflows to INT64_MIN, so an
    # abs-based magnitude check silently let wrapping arithmetic
    # through; the guards must use min/max bounds instead.
    rows = [(-2 ** 63, 1), (-2 ** 63 + 1, -1), (5, 7)]
    for make in ARITHMETIC + COMPARISONS:
        assert_batch_matches_rows(make(col(0), col(1)), rows, 2)
    for make in UNARY:
        assert_batch_matches_rows(make(col(0)), [r[:1] for r in rows], 1)


def test_division_and_modulo_by_zero_yield_null():
    rows = [(1.0, 0.0), (1.0, -0.0), (5.0, 2.0), (0.0, 0.0),
            (float("inf"), 0.0), (7.0, None), (None, 0.0)]
    assert_batch_matches_rows(E.Divide(col(0), col(1)), rows, 2)
    assert_batch_matches_rows(E.Modulo(col(0), col(1)), rows, 2)
    int_rows = [(7, 0), (7, 2), (-7, 3), (0, 0), (None, 0), (6, None)]
    assert_batch_matches_rows(E.Divide(col(0), col(1)), int_rows, 2)
    assert_batch_matches_rows(E.Modulo(col(0), col(1)), int_rows, 2)


def test_string_comparisons_fall_back():
    rows = make_rows(["str", "str"], 60, SEED + 7)
    for make in COMPARISONS:
        assert_batch_matches_rows(make(col(0), col(1)), rows, 2)
