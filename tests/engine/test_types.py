"""SQL type system."""

import pytest

from repro.engine.types import (BOOLEAN, DOUBLE, INTEGER, STRING,
                                DoubleType, IntegerType, common_type,
                                infer_type, is_numeric, is_orderable)


class TestSingletons:
    def test_equality_by_class(self):
        assert IntegerType() == INTEGER
        assert DoubleType() == DOUBLE
        assert INTEGER != DOUBLE

    def test_hashable(self):
        assert len({INTEGER, IntegerType(), DOUBLE}) == 2

    def test_names(self):
        assert INTEGER.name == "INTEGER"
        assert STRING.name == "STRING"


class TestAccepts:
    def test_integer_rejects_bool(self):
        assert INTEGER.accepts(5)
        assert not INTEGER.accepts(True)

    def test_double_accepts_int_and_float(self):
        assert DOUBLE.accepts(1.5)
        assert DOUBLE.accepts(2)
        assert not DOUBLE.accepts(True)

    def test_string_and_boolean(self):
        assert STRING.accepts("x")
        assert BOOLEAN.accepts(False)
        assert not BOOLEAN.accepts(0)


class TestPredicates:
    def test_is_numeric(self):
        assert is_numeric(INTEGER)
        assert is_numeric(DOUBLE)
        assert not is_numeric(STRING)

    def test_is_orderable(self):
        assert all(is_orderable(t)
                   for t in (INTEGER, DOUBLE, STRING, BOOLEAN))


class TestCommonType:
    def test_identical_types(self):
        assert common_type(INTEGER, INTEGER) == INTEGER

    def test_numeric_widening(self):
        assert common_type(INTEGER, DOUBLE) == DOUBLE
        assert common_type(DOUBLE, INTEGER) == DOUBLE

    def test_incompatible(self):
        assert common_type(INTEGER, STRING) is None
        assert common_type(BOOLEAN, DOUBLE) is None


class TestInferType:
    def test_basic_inference(self):
        assert infer_type(1) == INTEGER
        assert infer_type(1.0) == DOUBLE
        assert infer_type("x") == STRING
        assert infer_type(True) == BOOLEAN
        assert infer_type(None) == STRING

    def test_rejects_exotic_values(self):
        with pytest.raises(TypeError):
            infer_type([1, 2])
