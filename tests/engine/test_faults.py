"""Fault-injection and fault-tolerance tests.

Covers the deterministic :class:`FaultPlan` subsystem, the per-task
retry machinery in every backend (including real worker-process crashes
and ``BrokenProcessPool`` recovery), deadline enforcement mid-stage,
speculative re-execution on task timeouts, and the chaos differential
grid: under a seeded fault plan every query must return results
bit-identical to its fault-free run.
"""

from __future__ import annotations

import itertools
import os
import random
import time

import pytest

from repro import QueryTimeout, SessionConfig, SkylineSession
from repro.engine.backends import (LocalBackend, ProcessBackend,
                                   RetryPolicy, StageTask, ThreadBackend,
                                   is_retryable)
from repro.engine.cluster import ExecutionContext
from repro.engine.faults import (FAULT_PLAN_ENV, FaultPlan, InjectedFault,
                                 SimulatedWorkerCrash, activate,
                                 active_plan, maybe_inject)
from repro.engine.types import DOUBLE, INTEGER
from repro.errors import (BenchmarkTimeout, TaskError, WorkerCrashError)
from repro.plan.planner import PARTITIONING_SCHEMES

SEED = 20230331


# -- FaultPlan determinism -------------------------------------------------


class TestFaultPlan:
    def test_roll_is_deterministic_and_uniformish(self):
        plan = FaultPlan(seed=7)
        values = [plan.roll(f"k{i}", 0, "crash") for i in range(200)]
        assert values == [plan.roll(f"k{i}", 0, "crash")
                          for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.2 < sum(values) / len(values) < 0.8

    def test_decide_depends_on_seed_key_attempt(self):
        a, b = FaultPlan(seed=1, crash_p=0.5), FaultPlan(seed=2,
                                                         crash_p=0.5)
        decisions_a = [a.decide(f"k{i}", 0) for i in range(50)]
        assert decisions_a == [a.decide(f"k{i}", 0) for i in range(50)]
        assert decisions_a != [b.decide(f"k{i}", 0) for i in range(50)]

    def test_attempts_past_max_injections_are_clean(self):
        plan = FaultPlan(seed=3, crash_p=1.0, error_p=1.0, delay_p=1.0,
                         max_injections=2)
        for key in ("a", "b", "c"):
            assert plan.decide(key, 0) is not None
            assert plan.decide(key, 1) is not None
            assert plan.decide(key, 2) is None
            assert plan.decide(key, 99) is None

    def test_poison_crashes_matching_keys_only(self):
        plan = FaultPlan(seed=5, poison="#2")
        assert plan.decide("stage#2", 0) == "crash"
        assert plan.decide("stage#2", 1) == "crash"
        assert plan.decide("stage#2", 2) is None  # below the cap only
        assert plan.decide("stage#0", 0) is None

    def test_spec_round_trip(self):
        plan = FaultPlan(seed=42, crash_p=0.2, delay_p=0.1,
                         delay_s=0.003, max_injections=3, poison="#1")
        assert FaultPlan.from_spec(plan.to_spec()) == plan
        assert FaultPlan.from_spec("seed=9").seed == 9

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_spec("frobnicate=1")
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.from_spec("seed")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_p=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_s=-1)
        with pytest.raises(ValueError):
            FaultPlan(max_injections=-1)

    def test_from_env_and_activate(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan(seed=7, crash_p=0.25)
        assert FaultPlan.from_env(
            {FAULT_PLAN_ENV: plan.to_spec()}) == plan
        assert active_plan() is None
        with activate(plan):
            assert os.environ[FAULT_PLAN_ENV] == plan.to_spec()
            assert active_plan() == plan
            with activate(None):
                assert active_plan() is None
            assert active_plan() == plan
        assert active_plan() is None

    def test_maybe_inject_kinds(self):
        with activate(FaultPlan(seed=3, error_p=1.0)):
            with pytest.raises(InjectedFault):
                maybe_inject("k", 0)
        with activate(FaultPlan(seed=3, crash_p=1.0)):
            with pytest.raises(SimulatedWorkerCrash):
                maybe_inject("k", 0)
        with activate(FaultPlan(seed=3, delay_p=1.0, delay_s=0.0)):
            maybe_inject("k", 0)  # delay of zero: returns
        maybe_inject("k", 0)  # no plan active: no-op


# -- RetryPolicy -----------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.05, seed=9)
        delays = [policy.backoff_delay("k", a) for a in range(6)]
        assert delays == [policy.backoff_delay("k", a) for a in range(6)]
        assert all(0.0 < d <= 2.0 for d in delays)
        # Exponential shape: attempt 3 outgrows attempt 0's ceiling.
        assert delays[3] > 0.05 * 0.5 * 8 / 2

    def test_backoff_respects_deadline(self):
        policy = RetryPolicy(backoff_s=10.0,
                             deadline=time.perf_counter() + 0.01)
        assert policy.backoff_delay("k", 5) <= 0.011

    @pytest.mark.parametrize("backend_factory",
                             [LocalBackend, lambda: ThreadBackend(2)])
    def test_backoff_never_sleeps_past_deadline(self, backend_factory):
        """A retry whose backoff would cross the query deadline must
        raise QueryTimeout promptly instead of sleeping the remaining
        budget away and surfacing the timeout afterwards."""
        plan = FaultPlan(seed=3, poison="t#0", max_injections=10)
        policy = RetryPolicy(max_attempts=6, backoff_s=5.0,
                             deadline=time.perf_counter() + 0.05)
        start = time.perf_counter()
        with activate(plan), backend_factory() as backend:
            with pytest.raises(QueryTimeout):
                backend.run_stage(_tasks(1, _value_of), policy)
        # Prompt: well under one un-clamped backoff interval.
        assert time.perf_counter() - start < 1.0
        # The retry never ran, so it must not be counted.
        assert policy.stats.retries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=0)

    def test_classification(self):
        assert is_retryable(InjectedFault("x"))
        assert is_retryable(SimulatedWorkerCrash("x"))
        assert is_retryable(ConnectionError())
        assert is_retryable(EOFError())
        assert not is_retryable(ValueError("deterministic"))
        assert not is_retryable(TypeError())


# -- backend retry behaviour ----------------------------------------------


def _tasks(n, fn_for):
    return [StageTask(partition=i, rows_in=0, fn=fn_for(i), key=f"t#{i}")
            for i in range(n)]


def _value_of(i):
    return lambda: [i]


class TestRetries:
    @pytest.mark.parametrize("backend_factory",
                             [LocalBackend, lambda: ThreadBackend(2)])
    def test_injected_faults_are_retried_to_success(self, backend_factory):
        plan = FaultPlan(seed=3, error_p=1.0, max_injections=2)
        policy = RetryPolicy(max_attempts=4, backoff_s=0.0)
        with activate(plan), backend_factory() as backend:
            outcomes = backend.run_stage(_tasks(3, _value_of), policy)
        assert [o.result for o in outcomes] == [[0], [1], [2]]
        assert all(o.attempts == 3 for o in outcomes)
        assert policy.stats.retries == 6

    def test_simulated_crashes_count_recoveries(self):
        plan = FaultPlan(seed=3, poison="t#1", max_injections=2)
        policy = RetryPolicy(max_attempts=4, backoff_s=0.0)
        with activate(plan), ThreadBackend(2) as backend:
            outcomes = backend.run_stage(_tasks(3, _value_of), policy)
        assert [o.result for o in outcomes] == [[0], [1], [2]]
        assert policy.stats.retries == 2
        assert policy.stats.crash_recoveries == 2

    @pytest.mark.parametrize("backend_factory",
                             [LocalBackend, lambda: ThreadBackend(2)])
    def test_exhausted_crash_budget_is_worker_crash_error(
            self, backend_factory):
        plan = FaultPlan(seed=3, poison="t#0", max_injections=10)
        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        with activate(plan), backend_factory() as backend:
            with pytest.raises(WorkerCrashError) as info:
                backend.run_stage(_tasks(3, _value_of), policy)
        assert info.value.attempts == 3
        assert info.value.task_key == "t#0"

    @pytest.mark.parametrize("backend_factory",
                             [LocalBackend, lambda: ThreadBackend(2)])
    def test_deterministic_errors_fail_fast(self, backend_factory):
        def fn_for(i):
            if i == 1:
                def boom():
                    raise ValueError("bad data")
                return boom
            return _value_of(i)

        policy = RetryPolicy(max_attempts=4, backoff_s=0.0)
        with backend_factory() as backend:
            with pytest.raises(TaskError) as info:
                backend.run_stage(_tasks(3, fn_for), policy)
        assert not isinstance(info.value, WorkerCrashError)
        assert info.value.attempts == 1  # no retry for pure task bugs
        assert policy.stats.retries == 0

    def test_failed_stage_leaves_thread_backend_reusable(self):
        """Satellite: a mid-stage failure must cancel/drain outstanding
        futures, leaving the pool clean for the next stage."""
        def fn_for(i):
            if i == 0:
                def boom():
                    raise ValueError("boom")
                return boom
            return lambda: time.sleep(0.05) or [i]

        with ThreadBackend(2) as backend:
            with pytest.raises(TaskError):
                backend.run_stage(_tasks(4, fn_for), RetryPolicy())
            outcomes = backend.run_stage(_tasks(3, _value_of),
                                         RetryPolicy())
            assert [o.result for o in outcomes] == [[0], [1], [2]]


class TestTimeouts:
    def test_deadline_exceeded_mid_stage_raises_query_timeout(self):
        def fn_for(i):
            return lambda: time.sleep(0.5) or [i]

        policy = RetryPolicy(deadline=time.perf_counter() + 0.05)
        with ThreadBackend(2) as backend:
            with pytest.raises(QueryTimeout):
                backend.run_stage(_tasks(2, fn_for), policy)

    def test_task_timeout_triggers_speculative_retry(self):
        # Attempt 0 of every task is delayed past the task timeout;
        # attempt 1 is clean (max_injections=1) and wins the race while
        # the original still sleeps.
        plan = FaultPlan(seed=1, delay_p=1.0, delay_s=0.4,
                         max_injections=1)
        policy = RetryPolicy(max_attempts=3, backoff_s=0.0,
                             task_timeout_s=0.05)
        with activate(plan), ThreadBackend(4) as backend:
            outcomes = backend.run_stage(_tasks(2, _value_of), policy)
        assert [o.result for o in outcomes] == [[0], [1]]
        assert policy.stats.retries == 2
        assert policy.stats.speculative_wins >= 1
        assert any(o.speculative_win for o in outcomes)

    def test_task_timeout_budget_exhaustion_is_task_error(self):
        def fn_for(i):
            return lambda: time.sleep(0.3) or [i]

        policy = RetryPolicy(max_attempts=2, backoff_s=0.0,
                             task_timeout_s=0.02)
        with ThreadBackend(4) as backend:
            with pytest.raises(TaskError, match="timed out"):
                backend.run_stage(_tasks(2, fn_for), policy)

    def test_session_budget_carries_partial_progress(self):
        session = SkylineSession(config=SessionConfig(time_budget_s=0.0))
        session.create_table("t", [("x", INTEGER, False)],
                             [(i,) for i in range(50)])
        with pytest.raises(QueryTimeout) as info:
            session.sql("SELECT * FROM t SKYLINE OF x MIN").collect()
        assert "stages_completed" in info.value.partial_stats
        assert info.value.budget == 0.0

    def test_benchmark_timeout_alias_still_catches(self):
        assert BenchmarkTimeout is QueryTimeout
        context = ExecutionContext()
        context.set_budget(0.0)
        with pytest.raises(BenchmarkTimeout):
            context.check_deadline()


# -- process-pool worker crashes ------------------------------------------


def _identity(value):
    return value


class TestProcessPoolRecovery:
    def test_worker_crash_is_recovered_without_losing_results(self):
        # task#1's worker really dies (os._exit) on attempts 0 and 1,
        # breaking the pool; the backend must rebuild it, re-run only
        # the lost tasks, and still return every result in order.
        plan = FaultPlan(seed=3, poison="task#1", max_injections=2)
        policy = RetryPolicy(max_attempts=4, backoff_s=0.0)
        tasks = [StageTask(partition=i, rows_in=1, func=_identity,
                           args=([i],)) for i in range(4)]
        with activate(plan), ProcessBackend(2) as backend:
            outcomes = backend.run_stage(tasks, policy)
        assert [o.result for o in outcomes] == [[0], [1], [2], [3]]
        assert policy.stats.crash_recoveries >= 1
        assert policy.stats.retries >= 2

    def test_repeatedly_dying_task_surfaces_worker_crash_error(self):
        plan = FaultPlan(seed=3, poison="task#0", max_injections=10)
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        tasks = [StageTask(partition=i, rows_in=1, func=_identity,
                           args=([i],)) for i in range(3)]
        with activate(plan), ProcessBackend(2) as backend:
            with pytest.raises(WorkerCrashError):
                backend.run_stage(tasks, policy)

    def test_pool_is_rebuilt_for_the_next_stage(self):
        plan = FaultPlan(seed=3, poison="task#0", max_injections=2)
        tasks = [StageTask(partition=i, rows_in=1, func=_identity,
                           args=([i],)) for i in range(3)]
        with ProcessBackend(2) as backend:
            with activate(plan):
                backend.run_stage(tasks, RetryPolicy(backoff_s=0.0))
            # Fault plan gone: the rebuilt pool serves a clean stage.
            outcomes = backend.run_stage(tasks, RetryPolicy())
            assert [o.result for o in outcomes] == [[0], [1], [2]]


# -- the chaos differential grid ------------------------------------------

#: crash p=0.2, delays, injected errors, and one poisoned partition --
#: the satellite's scenario.  Injection decisions are SHA-256 of
#: (seed, key, attempt), so this grid fails identically everywhere.
CHAOS_PLAN = FaultPlan(seed=SEED, crash_p=0.2, error_p=0.05,
                       delay_p=0.1, delay_s=0.001, poison="#2")

COMPLETE_ALGORITHMS = ("distributed-complete", "non-distributed-complete",
                       "distributed-incomplete", "sfs")

SQL3 = "SELECT * FROM t SKYLINE OF a MIN, b MAX, c MIN"


def _random_rows(n, seed, null_probability=0.0):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        def value():
            if null_probability and rng.random() < null_probability:
                return None
            return rng.choice([0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0])
        rows.append((i, value(), value(), value()))
    return rows


COMPLETE_ROWS = _random_rows(120, SEED)
INCOMPLETE_ROWS = _random_rows(90, SEED + 1, null_probability=0.25)


def _chaos_session(rows, nullable, algorithm, scheme, backend):
    config = SessionConfig(
        num_executors=3, skyline_algorithm=algorithm,
        skyline_partitioning=scheme, skyline_partitions=3,
        backend=backend, max_task_retries=3, retry_backoff_s=0.0)
    session = SkylineSession(config=config)
    session.create_table(
        "t",
        [("id", INTEGER, False), ("a", DOUBLE, nullable),
         ("b", DOUBLE, nullable), ("c", DOUBLE, nullable)],
        rows)
    return session


def _run_clean_and_chaos(rows, nullable, algorithm, scheme, backend):
    with _chaos_session(rows, nullable, algorithm, scheme,
                        backend) as session:
        clean = sorted(session.sql(SQL3).to_tuples(), key=repr)
    with activate(CHAOS_PLAN):
        with _chaos_session(rows, nullable, algorithm, scheme,
                            backend) as session:
            result = session.sql(SQL3).run()
    chaos = sorted(result.as_tuples(), key=repr)
    return clean, chaos, result.context.fault_stats


@pytest.mark.parametrize(
    "algorithm,scheme",
    list(itertools.product(COMPLETE_ALGORITHMS, PARTITIONING_SCHEMES)))
def test_chaos_differential_local(algorithm, scheme):
    clean, chaos, _ = _run_clean_and_chaos(
        COMPLETE_ROWS, False, algorithm, scheme, "local")
    assert chaos == clean, (
        f"{algorithm}/{scheme} diverged under the fault plan")


@pytest.mark.parametrize("algorithm", COMPLETE_ALGORITHMS)
def test_chaos_differential_thread(algorithm):
    clean, chaos, _ = _run_clean_and_chaos(
        COMPLETE_ROWS, False, algorithm, "random", "thread")
    assert chaos == clean


@pytest.mark.parametrize("algorithm",
                         ("distributed-complete", "sfs"))
def test_chaos_differential_process(algorithm):
    """Real worker crashes (os._exit in the pool children) mid-query;
    answers must still be bit-identical to the fault-free run."""
    clean, chaos, _ = _run_clean_and_chaos(
        COMPLETE_ROWS, False, algorithm, "random", "process")
    assert chaos == clean


def test_chaos_differential_incomplete_data():
    clean, chaos, _ = _run_clean_and_chaos(
        INCOMPLETE_ROWS, True, "distributed-incomplete", "grid", "local")
    assert chaos == clean


def test_chaos_run_actually_injected_and_counted():
    """Guard against a vacuous grid: the plan must have injected faults
    and the context must have counted the recoveries."""
    totals = 0
    for scheme in PARTITIONING_SCHEMES:
        _, _, faults = _run_clean_and_chaos(
            COMPLETE_ROWS, False, "distributed-complete", scheme,
            "local")
        totals += faults.retries + faults.crash_recoveries
    assert totals > 0


def test_chaos_counters_reach_the_summary():
    with activate(CHAOS_PLAN):
        with _chaos_session(COMPLETE_ROWS, False, "distributed-complete",
                            "random", "local") as session:
            result = session.sql(SQL3).run()
    summary = result.context.summary()
    assert summary["faults"]["retries"] == \
        result.context.fault_stats.retries
    stage_retries = sum(s["retries"] for s in summary["stages"])
    assert stage_retries == summary["faults"]["retries"]
