"""ColumnBatch storage semantics: exact round-trips and slicing."""

import math
import pickle

import pytest

from repro.engine.batch import (HAVE_NUMPY, OBJ, ColumnBatch,
                                encode_numeric_column)

NAN = float("nan")
INF = float("inf")


def same_value(a, b) -> bool:
    """Equality that treats NaN as equal to NaN and checks types."""
    if a is None or b is None:
        return a is None and b is None
    if type(a) is not type(b):
        return False
    if isinstance(a, float) and math.isnan(a):
        return isinstance(b, float) and math.isnan(b)
    return a == b


def assert_round_trip(rows, width):
    batch = ColumnBatch.from_rows(list(rows), width)
    # Drop the cached row view so to_rows really decodes the columns.
    batch._rows = None
    back = batch.to_rows()
    assert len(back) == len(rows)
    for original, decoded in zip(rows, back):
        for a, b in zip(original, decoded):
            assert same_value(a, b), (original, decoded)


class TestRoundTrip:
    def test_float_int_bool_string_columns(self):
        rows = [(1.5, 7, True, "x"), (2.5, -3, False, "y"),
                (0.0, 2 ** 60, True, "z")]
        assert_round_trip(rows, 4)

    def test_nulls_in_every_kind(self):
        rows = [(1.5, 7, True, "x"), (None, None, None, None)]
        assert_round_trip(rows, 4)

    def test_nan_and_inf_stay_distinct_from_null(self):
        rows = [(NAN,), (INF,), (-INF,), (None,), (1.0,)]
        assert_round_trip(rows, 1)

    def test_int_beyond_int64_falls_back_to_list(self):
        rows = [(2 ** 70,), (-2 ** 70,), (5,)]
        batch = ColumnBatch.from_rows(rows, 1)
        assert batch.column(0).kind == OBJ
        assert_round_trip(rows, 1)

    def test_mixed_int_float_column_keeps_types(self):
        rows = [(1,), (2.5,)]
        batch = ColumnBatch.from_rows(rows, 1)
        assert batch.column(0).kind == OBJ
        assert_round_trip(rows, 1)

    def test_empty_batch(self):
        batch = ColumnBatch.from_rows([], 3)
        assert batch.num_rows == 0
        assert batch.to_rows() == []

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_typed_storage_is_used_when_faithful(self):
        rows = [(1.5, 7, True), (2.5, -3, False)]
        batch = ColumnBatch.from_rows(rows, 3)
        assert [c.kind for c in batch.columns] == ["f8", "i8", "b1"]


class TestSlicing:
    ROWS = [(1.0, "a", 1), (2.0, "b", None), (None, "c", 3),
            (4.0, "d", 4)]

    def test_take_preserves_order_and_values(self):
        batch = ColumnBatch.from_rows(self.ROWS, 3)
        taken = batch.take([2, 0])
        assert taken.to_rows() == [self.ROWS[2], self.ROWS[0]]

    def test_compress(self):
        batch = ColumnBatch.from_rows(self.ROWS, 3)
        kept = batch.compress([True, False, True, False])
        assert kept.to_rows() == [self.ROWS[0], self.ROWS[2]]

    def test_concat_same_and_mixed_kinds(self):
        left = ColumnBatch.from_rows(self.ROWS[:2], 3)
        right = ColumnBatch.from_rows(self.ROWS[2:], 3)
        merged = ColumnBatch.concat([left, right])
        assert merged.to_rows() == self.ROWS
        # Mixed storage kinds (f8 vs obj) re-encode via values.
        odd = ColumnBatch.from_rows([(2 ** 70, "x", 1)], 3)
        merged = ColumnBatch.concat([left, odd])
        assert merged.to_rows() == self.ROWS[:2] + [(2 ** 70, "x", 1)]

    def test_pickle_round_trip(self):
        batch = ColumnBatch.from_rows(self.ROWS, 3)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.to_rows() == self.ROWS


class TestZeroRowBatches:
    """Zero-row batches flow through shuffles and merge rounds; their
    storage kind and null masks must survive every operation."""

    def test_pickle_round_trip_preserves_shape(self):
        batch = ColumnBatch.from_rows([], 3)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.num_rows == 0
        assert len(clone.columns) == 3
        assert clone.to_rows() == []

    def test_take_nothing_from_empty(self):
        batch = ColumnBatch.from_rows([], 2)
        assert batch.take([]).to_rows() == []
        assert batch.compress([]).to_rows() == []

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_concat_with_empty_keeps_typed_kind(self):
        typed = ColumnBatch.from_rows([(1.5, 7), (2.5, -3)], 2)
        empty = typed.take([])
        assert [c.kind for c in typed.columns] == ["f8", "i8"]
        for order in ([empty, typed], [typed, empty],
                      [empty, typed, empty]):
            merged = ColumnBatch.concat(order)
            assert merged.to_rows() == typed.to_rows()
            assert [c.kind for c in merged.columns] == ["f8", "i8"]

    def test_concat_of_only_empties(self):
        a = ColumnBatch.from_rows([], 2)
        b = ColumnBatch.from_rows([], 2)
        merged = ColumnBatch.concat([a, b])
        assert merged.num_rows == 0
        assert len(merged.columns) == 2

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_concat_with_empty_keeps_null_mask(self):
        batch = ColumnBatch.from_rows([(1.0,), (None,)], 1)
        empty = batch.take([])
        merged = ColumnBatch.concat([empty, batch])
        assert merged.to_rows() == [(1.0,), (None,)]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_columnize_batch_on_zero_rows(self):
        from repro.core.algorithms import make_dimensions
        from repro.core.vectorized import columnize_batch
        batch = ColumnBatch.from_rows([(1.0, 2.0)], 2).take([])
        block = columnize_batch(batch,
                                make_dimensions([(0, "min"), (1, "min")]))
        assert block is None or block.values.shape[0] == 0


class TestEncodeNumericColumn:
    """The shared columnization point keeps the pinned semantics."""

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_nulls_become_nan_plus_mask(self):
        import numpy as np
        data, mask = encode_numeric_column([1.0, None, 3.0])
        assert mask.tolist() == [False, True, False]
        assert np.isnan(data[1])

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_nan_data_stays_unmasked(self):
        import numpy as np
        data, mask = encode_numeric_column([NAN, 2.0])
        assert mask.tolist() == [False, False]
        assert np.isnan(data[0])

    def test_non_numeric_refuses(self):
        assert encode_numeric_column(["a", 1.0]) is None

    def test_int_beyond_float64_exact_refuses(self):
        assert encode_numeric_column([2 ** 53 + 1]) is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not available")
    def test_bools_and_exact_ints_encode(self):
        data, mask = encode_numeric_column([True, False, 2 ** 53])
        assert data.tolist() == [1.0, 0.0, float(2 ** 53)]
        assert not mask.any()
