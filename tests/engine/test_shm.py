"""SharedColumnStore: handle round-trips, lifecycle, crash hygiene."""

import gc
import pickle

import pytest

from repro.engine import shm
from repro.engine.batch import HAVE_NUMPY, ColumnBatch
from repro.engine.shm import (SHM_STATE_TAG, SharedColumnStore, activation,
                              active_store, leaked_segments,
                              shared_memory_available)

pytestmark = pytest.mark.skipif(
    not (HAVE_NUMPY and shared_memory_available()),
    reason="shared memory not available on this platform")


def make_batch(n=4096, width=3):
    rows = [tuple(float(i * width + j) for j in range(width))
            for i in range(n)]
    return ColumnBatch.from_rows(rows, width)


def make_mixed_batch(n=4096):
    rows = [(float(i), None if i % 7 == 0 else i, f"s{i}")
            for i in range(n)]
    return ColumnBatch.from_rows(rows, 3)


@pytest.fixture
def store():
    instance = SharedColumnStore()
    yield instance
    instance.close()


class TestAvailabilityProbe:
    def test_probe_is_cached(self):
        first = shared_memory_available()
        assert shared_memory_available() is first

    def test_probe_reset_hook(self):
        shm._reset_probe()
        assert shm._AVAILABLE is None
        assert isinstance(shared_memory_available(), bool)


class TestRegistration:
    def test_state_for_shares_large_batch(self, store):
        batch = make_batch()
        state = store.state_for(batch)
        assert state is not None
        assert state[0] == SHM_STATE_TAG
        assert state[2] == batch.num_rows
        assert store.stats()["segments_created"] == 1

    def test_repeat_state_for_reuses_segment(self, store):
        batch = make_batch()
        first = store.state_for(batch)
        second = store.state_for(batch)
        assert first is second
        assert store.stats()["segments_created"] == 1
        assert store.stats()["handles_served"] == 2

    def test_small_batch_falls_back(self, store):
        batch = make_batch(n=8)
        assert store.state_for(batch) is None
        assert store.stats()["pickle_fallbacks"] == 1

    def test_zero_row_batch_falls_back(self, store):
        batch = ColumnBatch.from_rows([], 3)
        assert store.state_for(batch) is None

    def test_budget_exhaustion_falls_back(self):
        store = SharedColumnStore(max_bytes=1)
        try:
            assert store.state_for(make_batch()) is None
            assert store.stats()["pickle_fallbacks"] == 1
        finally:
            store.close()

    def test_closed_store_falls_back(self, store):
        store.close()
        assert store.state_for(make_batch()) is None

    def test_object_columns_travel_inline(self, store):
        batch = make_mixed_batch()
        state = store.state_for(batch)
        assert state is not None
        restored = shm.restore_state(state)
        assert restored[1] == batch.num_rows


class TestHandleRoundTrip:
    def test_pickle_round_trip_bit_identical(self, store):
        batch = make_mixed_batch()
        with activation(store):
            blob = pickle.dumps(batch)
        back = pickle.loads(blob)
        assert back.to_rows() == batch.to_rows()
        # The handle is far smaller than the data it stands for.
        assert len(blob) < batch.num_rows * 8

    def test_restored_arrays_are_read_only(self, store):
        batch = make_batch()
        with activation(store):
            back = pickle.loads(pickle.dumps(batch))
        import numpy as np
        for column in back.columns:
            assert isinstance(column.data, np.ndarray)
            assert not column.data.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                column.data[0] = 0.0

    def test_inactive_store_pickles_by_value(self, store):
        batch = make_batch()
        blob = pickle.dumps(batch)  # no activation
        assert pickle.loads(blob).to_rows() == batch.to_rows()
        assert store.stats()["segments_created"] == 0


class TestActivation:
    def test_activation_scopes_the_global(self, store):
        assert active_store() is None
        with activation(store):
            assert active_store() is store
        assert active_store() is None

    def test_activation_none_is_a_no_op(self):
        with activation(None):
            assert active_store() is None

    def test_closed_store_never_active(self, store):
        store.close()
        with activation(store):
            assert active_store() is None


class TestLifecycle:
    def test_end_stage_releases_transients(self, store):
        store.state_for(make_batch())
        assert store.stats()["active_segments"] == 1
        store.end_stage()
        assert store.stats()["active_segments"] == 0
        assert store.stats()["segments_released"] == 1

    def test_pinned_survives_end_stage(self, store):
        batch = make_batch()
        assert store.pin([batch]) == 1
        store.end_stage()
        assert store.stats()["active_segments"] == 1
        store.unpin([batch])
        assert store.stats()["active_segments"] == 0

    def test_pin_upgrades_transient(self, store):
        batch = make_batch()
        store.state_for(batch)
        assert store.pin([batch]) == 1
        assert store.stats()["segments_created"] == 1
        store.end_stage()
        assert store.stats()["active_segments"] == 1

    def test_dead_pinned_batch_is_swept(self, store):
        batch = make_batch()
        store.pin([batch])
        del batch
        gc.collect()
        store.end_stage()  # sweeps
        assert store.stats()["active_segments"] == 0

    def test_pin_ignores_non_batches(self, store):
        assert store.pin([None, "rows", 7]) == 0

    def test_close_releases_everything(self, store):
        pinned = make_batch()
        store.pin([pinned])
        store.state_for(make_batch(n=5000))
        names = store.segment_names()
        assert len(names) == 2
        store.close()
        assert store.closed
        assert store.stats()["active_segments"] == 0
        for name in names:
            assert name.lstrip("/") not in leaked_segments()

    def test_no_leaked_segments_after_close(self, store):
        before = set(leaked_segments())
        store.state_for(make_batch())
        store.close()
        assert set(leaked_segments()) <= before


class TestStats:
    def test_stats_keys(self, store):
        stats = store.stats()
        for key in ("active_segments", "active_bytes", "segments_created",
                    "segments_released", "bytes_shared", "handles_served",
                    "pickle_fallbacks"):
            assert key in stats

    def test_bytes_accounting_balances(self, store):
        store.state_for(make_batch())
        assert store.stats()["active_bytes"] > 0
        store.end_stage()
        assert store.stats()["active_bytes"] == 0
