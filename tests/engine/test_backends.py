"""Execution backends: ordering, pickling fallback, metrics plumbing."""

import pytest

from repro.core.algorithms import local_bnl_task, make_dimensions
from repro.engine.backends import (BACKEND_NAMES, Backend, LocalBackend,
                                   ProcessBackend, StageTask, ThreadBackend,
                                   create_backend, default_num_workers)
from repro.engine.cluster import ClusterConfig, ExecutionContext

MIN2 = make_dimensions([(0, "min"), (1, "min")])


def _square(x):
    return [(x * x,)]


def _tasks(n):
    return [StageTask(partition=i, rows_in=1, fn=lambda i=i: [(i,)],
                      func=_square, args=(i,))
            for i in range(n)]


@pytest.fixture(params=["local", "thread", "process"])
def backend(request):
    instance = create_backend(request.param, num_workers=2)
    yield instance
    instance.close()


class TestStageTask:
    def test_requires_some_callable(self):
        with pytest.raises(ValueError):
            StageTask(partition=0, rows_in=0)

    def test_inline_prefers_fn(self):
        task = StageTask(partition=0, rows_in=1,
                         fn=lambda: ["fn"], func=_square, args=(2,))
        assert task.run_inline() == ["fn"]

    def test_inline_falls_back_to_func(self):
        task = StageTask(partition=0, rows_in=1, func=_square, args=(3,))
        assert task.run_inline() == [(9,)]
        assert task.picklable


class TestBackends:
    def test_results_in_submission_order(self, backend):
        outcomes = backend.run_stage(_tasks(8))
        # The process backend ships func (square); others run fn.
        expected = ([[(i * i,)] for i in range(8)]
                    if backend.name == "process"
                    else [[(i,)] for i in range(8)])
        assert [o.result for o in outcomes] == expected

    def test_durations_measured_per_task(self, backend):
        outcomes = backend.run_stage(_tasks(4))
        assert all(o.duration_s >= 0 for o in outcomes)

    def test_empty_stage(self, backend):
        assert backend.run_stage([]) == []

    def test_close_is_idempotent_and_reusable(self, backend):
        backend.close()
        backend.close()
        outcomes = backend.run_stage(_tasks(3))
        assert len(outcomes) == 3

    def test_context_manager(self):
        with create_backend("thread", 2) as backend:
            assert backend.run_stage(_tasks(2))


class TestProcessBackend:
    def test_closure_only_tasks_run_inline(self):
        marker = []
        tasks = [StageTask(partition=i, rows_in=0,
                           fn=lambda i=i: marker.append(i) or [(i,)])
                 for i in range(3)]
        with ProcessBackend(num_workers=2) as backend:
            outcomes = backend.run_stage(tasks)
        # Side effects prove driver-side execution; no pickling happened.
        assert marker == [0, 1, 2]
        assert [o.result for o in outcomes] == [[(0,)], [(1,)], [(2,)]]

    def test_mixed_stage_preserves_order(self):
        tasks = [
            StageTask(partition=0, rows_in=0, func=_square, args=(5,)),
            StageTask(partition=1, rows_in=0, fn=lambda: ["inline"]),
            StageTask(partition=2, rows_in=0, func=_square, args=(6,)),
        ]
        with ProcessBackend(num_workers=2) as backend:
            outcomes = backend.run_stage(tasks)
        assert [o.result for o in outcomes] == [[(25,)], ["inline"], [(36,)]]

    def test_skyline_kernel_round_trips(self):
        rows = [(1, 4), (2, 3), (3, 3), (0, 9)]
        tasks = [StageTask(partition=0, rows_in=len(rows),
                           func=local_bnl_task, args=(rows, MIN2, False)),
                 StageTask(partition=1, rows_in=len(rows),
                           func=local_bnl_task, args=(rows, MIN2, False))]
        with ProcessBackend(num_workers=2) as backend:
            outcomes = backend.run_stage(tasks)
        skyline, peak, comparisons = outcomes[0].result
        assert sorted(skyline) == [(0, 9), (1, 4), (2, 3)]
        assert comparisons > 0 and peak > 0
        assert outcomes[0].result == outcomes[1].result


class TestFactory:
    def test_known_names(self):
        for name in BACKEND_NAMES:
            backend = create_backend(name, 1)
            assert backend.name == name
            backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_backend("gpu")

    def test_instance_passthrough(self):
        backend = LocalBackend()
        assert create_backend(backend) is backend

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_default_worker_count_positive(self):
        assert default_num_workers() >= 1

    def test_default_worker_count_prefers_affinity(self, monkeypatch):
        """A cgroup/affinity mask narrower than the machine must win:
        cpu_count() overcommits containers and CI runners."""
        import os
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_num_workers() == 2

    def test_default_worker_count_falls_back_to_cpu_count(self,
                                                          monkeypatch):
        import os

        def unavailable(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", unavailable,
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_num_workers() == 3

    def test_base_backend_abstract(self):
        with pytest.raises(NotImplementedError):
            Backend().run_stage([])


class TestExecutionContextIntegration:
    def test_run_stage_records_per_task_metrics(self):
        ctx = ExecutionContext(ClusterConfig(num_executors=2))
        tasks = [StageTask(partition=i, rows_in=3, fn=lambda: [(1,), (2,)])
                 for i in range(3)]
        results = ctx.run_stage("s", tasks)
        assert results == [[(1,), (2,)]] * 3
        stage = ctx.stages[0]
        assert len(stage.tasks) == 3
        assert [t.partition for t in stage.tasks] == [0, 1, 2]
        assert stage.real_time_s > 0
        assert ctx.real_time_s() == pytest.approx(stage.real_time_s)

    def test_run_stage_accumulates_comparisons(self):
        ctx = ExecutionContext()
        tasks = [StageTask(partition=0, rows_in=1,
                           fn=lambda: ([(1,)], 4, 11))]
        ctx.run_stage("s", tasks)
        assert ctx.dominance_comparisons == 11
        assert ctx.stages[0].tasks[0].peak_held_rows == 4

    def test_parallel_backend_keeps_simulated_model(self):
        """Simulated time depends only on task durations + config, not on
        which backend executed the tasks."""
        for name in BACKEND_NAMES:
            backend = create_backend(name, 2)
            ctx = ExecutionContext(ClusterConfig(num_executors=2),
                                   backend=backend)
            ctx.run_stage("s", _tasks(4))
            assert ctx.simulated_time_s() > 0
            assert len(ctx.stages[0].tasks) == 4
            backend.close()

    def test_summary_reports_backend(self):
        ctx = ExecutionContext(backend=LocalBackend())
        ctx.run_task("s", 0, lambda: [(1,)], 1)
        summary = ctx.summary()
        assert summary["backend"] == "local"
        assert summary["real_time_s"] > 0
