"""Column-builder helpers (smin/smax/sdiff and friends)."""

from repro.core.dominance import DimensionKind
from repro.engine import expressions as E
from repro.engine.functions import (avg, coalesce, col, count, ifnull, lit,
                                    sdiff, smax, smin, sql_max, sql_min,
                                    sql_sum)


class TestColumnBuilders:
    def test_col_simple(self):
        expr = col("price")
        assert isinstance(expr, E.UnresolvedAttribute)
        assert expr.name == "price"
        assert expr.qualifier is None

    def test_col_qualified(self):
        expr = col("t.price")
        assert expr.qualifier == "t"
        assert expr.name == "price"

    def test_lit(self):
        assert lit(5).eval(()) == 5


class TestSkylineBuilders:
    def test_smin_smax_sdiff_kinds(self):
        assert smin("a").kind is DimensionKind.MIN
        assert smax("a").kind is DimensionKind.MAX
        assert sdiff("a").kind is DimensionKind.DIFF

    def test_accepts_expressions(self):
        dim = smin(E.Add(col("a"), lit(1)))
        assert isinstance(dim.child, E.Add)

    def test_accepts_strings(self):
        dim = smax("t.rating")
        assert isinstance(dim.child, E.UnresolvedAttribute)
        assert dim.child.qualifier == "t"


class TestScalarHelpers:
    def test_ifnull_wraps_literal_default(self):
        expr = ifnull("a", 0)
        assert isinstance(expr, E.IfNull)
        assert isinstance(expr.children[1], E.Literal)

    def test_coalesce(self):
        expr = coalesce("a", "b")
        assert isinstance(expr, E.Coalesce)
        assert len(expr.children) == 2


class TestAggregateHelpers:
    def test_aggregate_builders(self):
        assert isinstance(sql_min("a"), E.Min)
        assert isinstance(sql_max("a"), E.Max)
        assert isinstance(sql_sum("a"), E.Sum)
        assert isinstance(avg("a"), E.Average)

    def test_count_star(self):
        expr = count()
        assert isinstance(expr, E.Count)
        assert isinstance(expr.child, E.Literal)

    def test_count_column(self):
        expr = count("a")
        assert isinstance(expr.child, E.UnresolvedAttribute)
