"""Simulated cluster: makespan scheduling and the memory model."""

import pytest

from repro.engine.cluster import (ClusterConfig, ExecutionContext,
                                  _makespan)
from repro.errors import BenchmarkTimeout


class TestMakespan:
    def test_single_worker_sums(self):
        makespan, loads = _makespan([1.0, 2.0, 3.0], 1)
        assert makespan == 6.0
        assert loads == [6.0]

    def test_perfect_split(self):
        makespan, _ = _makespan([2.0, 2.0], 2)
        assert makespan == 2.0

    def test_lpt_schedules_longest_first(self):
        # LPT on [3,3,2,2,2] over 2 workers: 3+2+2 vs 3+2 -> makespan 7
        # (LPT is a 4/3-approximation; optimal here would be 6).
        makespan, loads = _makespan([2.0, 3.0, 2.0, 3.0, 2.0], 2)
        assert makespan == 7.0
        assert sorted(loads) == [5.0, 7.0]

    def test_one_long_task_bounds_makespan(self):
        # The global skyline situation: parallelism cannot help.
        makespan, _ = _makespan([10.0, 0.1, 0.1], 8)
        assert makespan == 10.0

    def test_empty_tasks(self):
        makespan, _ = _makespan([], 4)
        assert makespan == 0.0


class TestExecutionContext:
    def test_run_task_records_metrics(self):
        ctx = ExecutionContext(ClusterConfig(num_executors=2))
        result = ctx.run_task("stage-1", 0, lambda: [(1,), (2,)], 5)
        assert result == [(1,), (2,)]
        task = ctx.stages[0].tasks[0]
        assert task.rows_in == 5
        assert task.rows_out == 2
        assert task.duration_s >= 0

    def test_run_task_accepts_peak_held_rows(self):
        ctx = ExecutionContext()
        ctx.run_task("s", 0, lambda: ([(1,)], 7), 1)
        assert ctx.stages[0].tasks[0].peak_held_rows == 7

    def test_stage_nonparallelizable_is_sticky(self):
        ctx = ExecutionContext()
        ctx.stage("g")  # default parallelizable
        ctx.run_task("g", 0, lambda: [], 0, parallelizable=False)
        assert not ctx.stage("g").parallelizable
        ctx.stage("g", parallelizable=True)
        assert not ctx.stage("g").parallelizable

    def test_simulated_time_decreases_with_executors(self):
        def build(executors):
            ctx = ExecutionContext(ClusterConfig(
                num_executors=executors, app_startup_s=0.0,
                executor_startup_s=0.0, task_overhead_s=0.0))
            for i in range(8):
                ctx.stage("local").tasks.append(
                    _task("local", i, 1.0))
            return ctx.simulated_time_s()

        assert build(4) < build(1)
        assert build(4) == pytest.approx(2.0)

    def test_nonparallel_stage_ignores_executors(self):
        ctx = ExecutionContext(ClusterConfig(
            num_executors=10, app_startup_s=0.0, executor_startup_s=0.0,
            task_overhead_s=0.0))
        stage = ctx.stage("global", parallelizable=False)
        stage.tasks.append(_task("global", 0, 3.0))
        stage.tasks.append(_task("global", 1, 3.0))
        assert ctx.simulated_time_s() == pytest.approx(6.0)

    def test_shuffle_cost_added(self):
        config = ClusterConfig(num_executors=1, app_startup_s=0.0,
                               executor_startup_s=0.0, task_overhead_s=0.0,
                               shuffle_cost_per_row_s=0.001)
        ctx = ExecutionContext(config)
        ctx.record_shuffle("s", 1000)
        assert ctx.simulated_time_s() == pytest.approx(1.0)

    def test_startup_grows_with_executors(self):
        base = ClusterConfig(num_executors=1).app_startup_s
        one = ExecutionContext(ClusterConfig(num_executors=1))
        ten = ExecutionContext(ClusterConfig(num_executors=10))
        assert ten.simulated_time_s() > one.simulated_time_s() >= base

    def test_summary_shape(self):
        ctx = ExecutionContext()
        ctx.run_task("s", 0, lambda: [(1,)], 1)
        summary = ctx.summary()
        assert summary["stages"][0]["name"] == "s"
        assert summary["stages"][0]["rows_out"] == 1
        assert "simulated_time_s" in summary


class TestMemoryModel:
    def test_base_memory_scales_with_executors(self):
        small = ExecutionContext(ClusterConfig(num_executors=1))
        large = ExecutionContext(ClusterConfig(num_executors=10))
        assert large.peak_memory_mb() > small.peak_memory_mb()
        config = small.config
        expected = (config.driver_base_memory_mb
                    + config.executor_base_memory_mb)
        assert small.peak_memory_mb() == pytest.approx(expected)

    def test_data_residency_counted(self):
        config = ClusterConfig(num_executors=1, bytes_per_row=1024 * 1024)
        ctx = ExecutionContext(config)
        stage = ctx.stage("s")
        stage.tasks.append(_task("s", 0, 0.1, rows_in=100))
        base = (config.driver_base_memory_mb
                + config.executor_base_memory_mb)
        assert ctx.peak_memory_mb() == pytest.approx(base + 100.0)

    def test_memory_scale_multiplies_data_term(self):
        config = ClusterConfig(num_executors=1, bytes_per_row=1024 * 1024,
                               memory_scale=10.0)
        ctx = ExecutionContext(config)
        ctx.stage("s").tasks.append(_task("s", 0, 0.1, rows_in=10))
        base = (config.driver_base_memory_mb
                + config.executor_base_memory_mb)
        assert ctx.peak_memory_mb() == pytest.approx(base + 100.0)

    def test_window_rows_counted(self):
        config = ClusterConfig(num_executors=1, bytes_per_row=1024 * 1024)
        ctx = ExecutionContext(config)
        ctx.stage("s").tasks.append(
            _task("s", 0, 0.1, rows_in=10, peak_held_rows=5))
        base = (config.driver_base_memory_mb
                + config.executor_base_memory_mb)
        assert ctx.peak_memory_mb() == pytest.approx(base + 15.0)


class TestDeadline:
    def test_budget_exceeded_raises(self):
        ctx = ExecutionContext()
        ctx.set_budget(-1.0)
        with pytest.raises(BenchmarkTimeout):
            ctx.check_deadline()

    def test_no_budget_never_raises(self):
        ctx = ExecutionContext()
        ctx.set_budget(None)
        ctx.check_deadline()


def _task(stage, partition, duration, rows_in=0, rows_out=0,
          peak_held_rows=0):
    from repro.engine.cluster import TaskMetrics
    return TaskMetrics(stage=stage, partition=partition,
                       duration_s=duration, rows_in=rows_in,
                       rows_out=rows_out, peak_held_rows=peak_held_rows)
