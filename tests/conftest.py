"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro import DOUBLE, INTEGER, STRING, SkylineSession


@pytest.fixture
def session() -> SkylineSession:
    return SkylineSession(num_executors=2)


@pytest.fixture
def hotels_session() -> SkylineSession:
    """The running example of the paper: hotels with price and rating."""
    session = SkylineSession(num_executors=2)
    session.create_table(
        "hotels",
        [("name", STRING, False), ("price", DOUBLE, False),
         ("rating", DOUBLE, False), ("distance", DOUBLE, False)],
        [
            ("Alpha", 120.0, 4.5, 0.3),
            ("Beach", 90.0, 4.0, 1.2),
            ("Cheap", 150.0, 3.0, 2.0),
            ("Delta", 80.0, 3.5, 0.9),
            ("Exquisite", 95.0, 4.8, 0.5),
            ("Far", 60.0, 3.2, 8.0),
            ("Grand", 200.0, 4.9, 0.1),
        ])
    return session


@pytest.fixture
def nullable_session() -> SkylineSession:
    """A table with nulls in skyline dimensions (incomplete data)."""
    session = SkylineSession(num_executors=2)
    session.create_table(
        "items",
        [("id", INTEGER, False), ("a", INTEGER, True),
         ("b", INTEGER, True), ("c", INTEGER, True)],
        [
            (1, 1, None, 10),
            (2, 3, 2, None),
            (3, None, 5, 3),
            (4, 2, 2, 2),
            (5, 9, 9, 9),
        ])
    return session


def skyline_oracle(rows, dims, complete=True):
    """Brute-force skyline oracle used by many tests.

    ``dims`` are BoundDimension descriptors; semantics follow the paper's
    definitions exactly (Definitions 3.1/3.2 and the incomplete variant).
    """
    from repro.core import dominates, dominates_incomplete

    test = dominates if complete else dominates_incomplete
    return [r for r in rows
            if not any(test(s, r, dims) for s in rows)]
