"""DataFrame API, including the skyline functions of Section 5.8."""

import pytest

from repro import (AnalysisError, col, count, lit, sdiff, smax, smin,
                   sql_min)


class TestTransformations:
    def test_select_by_name(self, hotels_session):
        rows = hotels_session.table("hotels").select("name").collect()
        assert len(rows[0]) == 1

    def test_select_with_expression(self, hotels_session):
        df = hotels_session.table("hotels").select(
            (col("price") * lit(2)).alias("double_price"))
        assert df.collect()[0].double_price == 240.0

    def test_select_star(self, hotels_session):
        df = hotels_session.table("hotels").select("*")
        assert df.columns == ["name", "price", "rating", "distance"]

    def test_select_requires_columns(self, hotels_session):
        with pytest.raises(AnalysisError):
            hotels_session.table("hotels").select()

    def test_where_with_string_condition(self, hotels_session):
        rows = hotels_session.table("hotels").where(
            "price < 90").collect()
        assert {r.name for r in rows} == {"Delta", "Far"}

    def test_filter_alias(self, hotels_session):
        df = hotels_session.table("hotels")
        assert df.filter("price < 90").count() == \
            df.where("price < 90").count()

    def test_order_by_descending(self, hotels_session):
        rows = hotels_session.table("hotels").order_by(
            "price", ascending=False).collect()
        assert rows[0].name == "Grand"

    def test_order_by_mixed_directions(self, hotels_session):
        rows = hotels_session.table("hotels").order_by(
            "rating", "price", ascending=[False, True]).collect()
        assert rows[0].name == "Grand"

    def test_order_by_direction_mismatch(self, hotels_session):
        with pytest.raises(AnalysisError):
            hotels_session.table("hotels").order_by(
                "price", ascending=[True, False])

    def test_limit_and_count(self, hotels_session):
        assert hotels_session.table("hotels").limit(3).count() == 3

    def test_distinct(self, session):
        df = session.create_dataframe([(1,), (1,), (2,)], ["x"])
        assert df.distinct().count() == 2

    def test_group_by_agg(self, session):
        df = session.create_dataframe(
            [("a", 1), ("a", 2), ("b", 5)], ["k", "v"])
        rows = df.group_by("k").agg(
            sql_min("v").alias("lo"), count().alias("n")).collect()
        by_key = {r.k: (r.lo, r.n) for r in rows}
        assert by_key == {"a": (1, 2), "b": (5, 1)}

    def test_group_by_count_shortcut(self, session):
        df = session.create_dataframe([("a",), ("a",), ("b",)], ["k"])
        rows = df.group_by("k").count().collect()
        assert {(r.k, r.count) for r in rows} == {("a", 2), ("b", 1)}

    def test_agg_requires_arguments(self, session):
        df = session.create_dataframe([(1,)], ["x"])
        with pytest.raises(AnalysisError):
            df.group_by("x").agg()


class TestJoins:
    @pytest.fixture
    def two_tables(self, session):
        left = session.create_dataframe(
            [(1, "l1"), (2, "l2"), (3, "l3")], ["id", "l"])
        right = session.create_dataframe(
            [(1, "r1"), (2, "r2"), (4, "r4")], ["id", "r"])
        return left, right

    def test_inner_join_using(self, two_tables):
        left, right = two_tables
        rows = left.join(right, on=["id"]).collect()
        assert {r.id for r in rows} == {1, 2}

    def test_left_join_keeps_unmatched(self, two_tables):
        left, right = two_tables
        rows = left.join(right, on=["id"], how="left").collect()
        by_id = {r.id: r.r for r in rows}
        assert by_id[3] is None

    def test_join_with_condition_expression(self, two_tables):
        left, right = two_tables
        condition = col("a.id").eq_value(col("b.id"))
        rows = left.alias("a").join(right.alias("b"),
                                    on=condition).collect()
        assert len(rows) == 2

    def test_join_with_operator_condition(self, two_tables):
        left, right = two_tables
        rows = left.alias("a").join(
            right.alias("b"), on=col("a.id") < col("b.id")).collect()
        # (1,2), (1,4), (2,4), (3,4)
        assert len(rows) == 4

    def test_cross_join(self, two_tables):
        left, right = two_tables
        assert left.join(right).count() == 9

    def test_anti_join(self, two_tables):
        left, right = two_tables
        rows = left.join(right, on=["id"], how="anti").collect()
        assert {r.id for r in rows} == {3}

    def test_semi_join(self, two_tables):
        left, right = two_tables
        rows = left.join(right, on=["id"], how="semi").collect()
        assert {r.id for r in rows} == {1, 2}

    def test_unknown_join_type(self, two_tables):
        left, right = two_tables
        with pytest.raises(AnalysisError, match="join type"):
            left.join(right, on=["id"], how="diagonal")


class TestSkylineApi:
    def test_skyline_with_column_functions(self, hotels_session):
        rows = hotels_session.table("hotels").skyline(
            smin("price"), smax("rating")).collect()
        assert {r.name for r in rows} == {"Far", "Delta", "Beach",
                                          "Exquisite", "Grand"}

    def test_skyline_of_pairs(self, hotels_session):
        rows = hotels_session.table("hotels").skyline_of(
            [("price", "min"), ("rating", "max")]).collect()
        assert {r.name for r in rows} == {"Far", "Delta", "Beach",
                                          "Exquisite", "Grand"}

    def test_skyline_matches_sql(self, hotels_session):
        api = hotels_session.table("hotels").skyline(
            smin("price"), smax("rating"), smin("distance"))
        sql = hotels_session.sql(
            "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX, "
            "distance MIN")
        assert sorted(api.to_tuples()) == sorted(sql.to_tuples())

    def test_skyline_distinct_flag(self, session):
        df = session.create_dataframe(
            [(1, 1, "a"), (1, 1, "b"), (0, 2, "c")], ["x", "y", "t"])
        rows = df.skyline(smin("x"), smin("y"), distinct=True).collect()
        assert len(rows) == 2

    def test_skyline_with_sdiff(self, session):
        df = session.create_dataframe(
            [("red", 1), ("red", 2), ("blue", 5)], ["color", "price"])
        rows = df.skyline(sdiff("color"), smin("price")).collect()
        values = {tuple(r) for r in rows}
        assert values == {("red", 1), ("blue", 5)}

    def test_skyline_requires_dimension_columns(self, hotels_session):
        with pytest.raises(AnalysisError):
            hotels_session.table("hotels").skyline()
        with pytest.raises(AnalysisError):
            hotels_session.table("hotels").skyline(col("price"))

    def test_skyline_of_requires_dimensions(self, hotels_session):
        with pytest.raises(AnalysisError):
            hotels_session.table("hotels").skyline_of([])

    def test_complete_flag_selects_complete_algorithm(self, session):
        df = session.create_dataframe([(1, 2), (2, 1)], ["x", "y"])
        plan = df.skyline(smin("x"), smin("y"), complete=True).plan
        assert plan.complete


class TestActions:
    def test_show_renders_table(self, hotels_session, capsys):
        text = hotels_session.table("hotels").limit(2).show()
        assert "name" in text
        assert "+" in text
        assert capsys.readouterr().out

    def test_show_truncation_note(self, hotels_session):
        text = hotels_session.table("hotels").show(n=2)
        assert "only showing top 2" in text

    def test_explain_prints(self, hotels_session, capsys):
        hotels_session.table("hotels").skyline(smin("price")).explain()
        assert "Physical Plan" in capsys.readouterr().out

    def test_to_tuples(self, session):
        df = session.create_dataframe([(1,)], ["x"])
        assert df.to_tuples() == [(1,)]
