"""SkylineSession: configuration and the query pipeline."""

import pytest

from repro import (INTEGER, STRING, BenchmarkTimeout, SkylineSession)
from repro.engine.cluster import ClusterConfig
from repro.engine.row import Field, Schema
from repro.sql.parser import parse_query


class TestConfiguration:
    def test_executor_count_applied(self):
        session = SkylineSession(num_executors=7)
        assert session.cluster_config.num_executors == 7

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError, match="skyline_algorithm"):
            SkylineSession(skyline_algorithm="warp")

    def test_with_executors_shares_catalog(self, hotels_session):
        clone = hotels_session.with_executors(5)
        assert clone.catalog is hotels_session.catalog
        assert clone.cluster_config.num_executors == 5
        # Original unchanged.
        assert hotels_session.cluster_config.num_executors == 2

    def test_with_skyline_algorithm(self, hotels_session):
        clone = hotels_session.with_skyline_algorithm("sfs")
        assert clone.skyline_algorithm == "sfs"
        with pytest.raises(ValueError):
            hotels_session.with_skyline_algorithm("warp")

    def test_cluster_config_override(self):
        config = ClusterConfig(executor_base_memory_mb=100.0)
        session = SkylineSession(num_executors=3, cluster_config=config)
        assert session.cluster_config.executor_base_memory_mb == 100.0
        assert session.cluster_config.num_executors == 3


class TestCatalogManagement:
    def test_create_table_with_tuples(self, session):
        table = session.create_table(
            "t", [("a", INTEGER, False), ("b", STRING)], [(1, "x")])
        assert table.schema.field("a").nullable is False
        assert table.schema.field("b").nullable is True

    def test_create_table_with_schema(self, session):
        schema = Schema([Field("a", INTEGER)])
        session.create_table("t", schema, [(1,)])
        assert session.catalog.lookup("t").schema == schema

    def test_create_dataframe_infers_schema(self, session):
        df = session.create_dataframe([(1, "x"), (2, None)], ["n", "s"])
        rows = df.collect()
        assert rows[0].n == 1
        assert rows[1].s is None

    def test_table_unknown_fails_fast(self, session):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError):
            session.table("nope")


class TestQueryExecution:
    def test_sql_end_to_end(self, hotels_session):
        rows = hotels_session.sql(
            "SELECT name FROM hotels WHERE price < 100 "
            "ORDER BY price").collect()
        assert [r.name for r in rows] == ["Far", "Delta", "Beach",
                                          "Exquisite"]

    def test_query_result_metrics(self, hotels_session):
        result = hotels_session.sql("SELECT name FROM hotels").run()
        assert result.simulated_time_s > 0
        assert result.peak_memory_mb > 0
        assert result.schema.names == ["name"]

    def test_time_budget_timeout(self, hotels_session):
        hotels_session.set_time_budget(-1.0)
        with pytest.raises(BenchmarkTimeout):
            hotels_session.sql(
                "SELECT name, price, rating FROM hotels "
                "SKYLINE OF price MIN, rating MAX").collect()

    def test_explain_shows_all_stages(self, hotels_session):
        text = hotels_session.explain(
            hotels_session.sql(
                "SELECT name FROM hotels SKYLINE OF price MIN, "
                "rating MAX").plan)
        assert "Analyzed Logical Plan" in text
        assert "Optimized Logical Plan" in text
        assert "Physical Plan" in text
        assert "Skyline" in text


class TestBackendConfiguration:
    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError):
            SkylineSession(backend="gpu")

    def test_clone_shares_lazily_created_pool(self):
        # The pool must be shared even when the clone is created before
        # the backend is materialised: exactly one pool per session tree.
        session = SkylineSession(backend="thread", num_workers=2)
        clone = session.with_executors(5)
        assert session.backend is clone.backend
        session.close()

    def test_close_through_any_sharer_closes_the_one_pool(self):
        from repro.engine.backends import StageTask
        session = SkylineSession(backend="thread", num_workers=2)
        clone = session.with_executors(3)
        backend = clone.backend
        # Materialise the pool (a multi-task stage bypasses the inline
        # short-cut), then close through the *other* sharer.
        backend.run_stage([StageTask(partition=i, rows_in=0, fn=list)
                           for i in range(2)])
        assert backend._pool is not None
        session.close()
        assert backend._pool is None

    def test_with_backend_gets_its_own_spec(self):
        session = SkylineSession(backend="local")
        clone = session.with_backend("thread", num_workers=2)
        assert session.backend.name == "local"
        assert clone.backend.name == "thread"
        assert session.catalog is clone.catalog
        clone.close()

    def test_backend_instance_passthrough(self):
        from repro.engine.backends import LocalBackend
        backend = LocalBackend()
        session = SkylineSession(backend=backend)
        assert session.backend is backend
        assert session.with_executors(4).backend is backend


class TestVectorizedConfiguration:
    def test_default_is_auto(self):
        session = SkylineSession()
        assert session.vectorized == "auto"
        from repro.core.vectorized import numpy_available
        assert session.vectorized_enabled == numpy_available()

    def test_false_disables(self):
        assert SkylineSession(vectorized=False).vectorized_enabled is False

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="vectorized"):
            SkylineSession(vectorized="yes")
        with pytest.raises(ValueError, match="vectorized"):
            SkylineSession().with_vectorized("maybe")

    def test_int_aliases_rejected(self):
        # Regression: 1 == True under membership tests, but the NumPy
        # requirement check uses identity -- so vectorized=1 would pass
        # validation yet silently require nothing.  Reject ints.
        for bad in (1, 0):
            with pytest.raises(ValueError, match="vectorized"):
                SkylineSession(vectorized=bad)
            with pytest.raises(ValueError, match="vectorized"):
                SkylineSession().with_vectorized(bad)

    def test_with_vectorized_clones_and_shares_catalog(self):
        session = SkylineSession(vectorized=False)
        session.create_table("v", [("a", INTEGER, False)], [(1,), (2,)])
        clone = session.with_vectorized("auto")
        assert clone.catalog is session.catalog
        assert session.vectorized is False
        assert clone.vectorized == "auto"

    def test_clones_inherit_the_flag(self):
        session = SkylineSession(vectorized=False)
        assert session.with_executors(4).vectorized is False

    def test_true_requires_numpy(self):
        from repro.core.vectorized import numpy_available
        if numpy_available():
            assert SkylineSession(vectorized=True).vectorized_enabled
        else:
            with pytest.raises(ValueError, match="NumPy"):
                SkylineSession(vectorized=True)

    def test_explain_labels_the_kernels(self):
        from repro.core.vectorized import numpy_available
        if not numpy_available():
            pytest.skip("NumPy not available")
        session = SkylineSession(vectorized=True)
        session.create_table(
            "pts", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(1, 2), (2, 1)])
        text = session.explain(parse_query(
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN"))
        assert "vectorized BNL" in text
        scalar = session.with_vectorized(False)
        assert "vectorized" not in scalar.explain(parse_query(
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN"))


class TestColumnarConfiguration:
    def test_invalid_flags_rejected(self):
        for bad in (1, 0, "yes", None):
            with pytest.raises(ValueError, match="columnar"):
                SkylineSession(columnar=bad)
            with pytest.raises(ValueError, match="columnar"):
                SkylineSession().with_columnar(bad)

    def test_with_columnar_clones_and_shares_catalog(self):
        session = SkylineSession(columnar=False)
        session.create_table("c", [("a", INTEGER, False)], [(1,), (2,)])
        clone = session.with_columnar(True)
        assert clone.catalog is session.catalog
        assert session.columnar is False
        assert clone.columnar is True
        assert session.with_executors(4).columnar is False

    def test_true_works_without_numpy(self):
        # Unlike vectorized=True, the batch plane has a scalar-list
        # fallback, so forcing it never requires NumPy.
        session = SkylineSession(columnar=True)
        assert session.columnar_enabled
        session.create_table("c", [("a", INTEGER, False),
                                   ("b", INTEGER, False)],
                             [(1, 2), (2, 1), (3, 3)])
        result = session.sql(
            "SELECT * FROM c SKYLINE OF a MIN, b MIN").to_tuples()
        assert sorted(result) == [(1, 2), (2, 1)]

    def test_auto_honours_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_COLUMNAR", "1")
        assert not SkylineSession(columnar="auto").columnar_enabled
        assert SkylineSession(columnar=True).columnar_enabled

    def test_explain_reports_per_operator_modes(self):
        from repro.core.vectorized import numpy_available
        if not numpy_available():
            pytest.skip("NumPy not available")
        session = SkylineSession(columnar=True)
        session.create_table(
            "pts", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(1, 2), (2, 1)])
        query = parse_query(
            "SELECT a FROM pts WHERE b > 0 SKYLINE OF a MIN, b MIN")
        text = session.explain(query)
        assert "[batch]" in text
        assert "Filter" in text and "Scan" in text
        row_text = session.with_columnar(False).explain(query)
        assert "[row]" in row_text
        assert "[batch]" not in row_text

    def test_repartitioned_skyline_stays_batch(self):
        from repro.core.vectorized import numpy_available
        if not numpy_available():
            pytest.skip("NumPy not available")
        session = SkylineSession(
            columnar=True, skyline_partitioning="grid",
            skyline_partitions=4)
        session.create_table(
            "pts", [("a", INTEGER, False), ("b", INTEGER, False)],
            [(i, 10 - i) for i in range(10)])
        text = session.explain(parse_query(
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN"))
        # The grid shuffle routes batch indices natively, so the whole
        # plan stays batch-mode instead of dropping to rows above it.
        assert "SkylineRepartition(grid, 4 partitions) [batch]" in text
        assert "[row]" not in text
        result = session.sql(
            "SELECT * FROM pts SKYLINE OF a MIN, b MIN").to_tuples()
        assert len(result) == 10
