"""SessionConfig, repro.connect, and the deprecation shims."""

from __future__ import annotations

import pytest

import repro
from repro import SessionConfig, SkylineSession
from repro.errors import BenchmarkTimeout


class TestSessionConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.num_executors == 2
        assert config.skyline_algorithm == "auto"
        assert config.adaptive is False
        assert config.backend == "local"
        assert config.time_budget_s is None

    def test_frozen(self):
        config = SessionConfig()
        with pytest.raises(AttributeError):
            config.num_executors = 4

    def test_validation_num_executors(self):
        with pytest.raises(ValueError):
            SessionConfig(num_executors=0)

    def test_validation_algorithm(self):
        with pytest.raises(ValueError):
            SessionConfig(skyline_algorithm="nope")

    def test_validation_partitioning(self):
        with pytest.raises(ValueError):
            SessionConfig(skyline_partitioning="zigzag")

    def test_validation_backend(self):
        with pytest.raises(ValueError):
            SessionConfig(backend="gpu")

    def test_validation_vectorized_rejects_ints(self):
        with pytest.raises(ValueError):
            SessionConfig(vectorized=1)

    def test_adaptive_normalisation(self):
        assert SessionConfig(adaptive=True).skyline_algorithm == "adaptive"
        assert SessionConfig(
            skyline_algorithm="adaptive").adaptive is True

    def test_adaptive_conflict(self):
        with pytest.raises(ValueError):
            SessionConfig(adaptive=True, skyline_algorithm="sfs")

    def test_with_options(self):
        config = SessionConfig().with_options(backend="thread",
                                              num_workers=2)
        assert config.backend == "thread"
        assert config.num_workers == 2
        # the original is untouched
        assert SessionConfig().backend == "local"

    def test_with_options_unknown_name(self):
        with pytest.raises(TypeError, match="unknown session option"):
            SessionConfig().with_options(executors=4)

    def test_with_options_clears_adaptive(self):
        config = SessionConfig(adaptive=True).with_options(
            skyline_algorithm="sfs")
        assert config.adaptive is False
        assert config.skyline_algorithm == "sfs"

    def test_fingerprint_hashable_and_sensitive(self):
        a = SessionConfig().fingerprint()
        b = SessionConfig(num_executors=5).fingerprint()
        assert hash(a) != hash(b) or a != b
        assert a == SessionConfig().fingerprint()

    def test_as_dict_is_jsonable(self):
        import json
        json.dumps(SessionConfig().as_dict())

    def test_shared_memory_default_is_auto(self):
        assert SessionConfig().shared_memory == "auto"

    @pytest.mark.parametrize("value", (True, False, "auto"))
    def test_shared_memory_accepts_valid_values(self, value):
        assert SessionConfig(shared_memory=value).shared_memory == value

    @pytest.mark.parametrize("value", ("yes", 1, 0, None, "AUTO"))
    def test_shared_memory_rejects_other_values(self, value):
        with pytest.raises(ValueError):
            SessionConfig(shared_memory=value)

    def test_shared_memory_false_never_enabled(self):
        assert SessionConfig(shared_memory=False).shared_memory_enabled \
            is False

    def test_shared_memory_enabled_tracks_platform(self):
        from repro.engine.shm import shared_memory_available
        config = SessionConfig(shared_memory="auto")
        assert config.shared_memory_enabled == shared_memory_available()
        forced = SessionConfig(shared_memory=True)
        assert forced.shared_memory_enabled == shared_memory_available()

    def test_fingerprint_sees_shared_memory(self):
        from repro.engine.shm import shared_memory_available
        on = SessionConfig(shared_memory="auto").fingerprint()
        off = SessionConfig(shared_memory=False).fingerprint()
        # Distinct exactly when the platform can serve segments;
        # identical otherwise (both resolve to the pickled transport).
        assert (on != off) == shared_memory_available()


class TestConnect:
    def test_connect_returns_session(self):
        session = repro.connect()
        assert isinstance(session, SkylineSession)

    def test_connect_with_options(self):
        session = repro.connect(num_executors=5, vectorized=False)
        assert session.config.num_executors == 5
        assert session.cluster_config.num_executors == 5

    def test_connect_with_config(self):
        config = SessionConfig(skyline_algorithm="sfs")
        session = repro.connect(config=config)
        assert session.skyline_algorithm == "sfs"

    def test_connect_emits_no_warnings(self, recwarn):
        repro.connect(num_executors=3)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_all_exports(self):
        for name in ("connect", "SessionConfig", "SkylineSession",
                     "QueryResult", "DataFrame", "AnalysisError",
                     "ParseError", "ExecutionError"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_time_budget_config_field(self):
        session = repro.connect(time_budget_s=0.0)
        session.create_table("t", [("x", repro.INTEGER, False)],
                             [(i,) for i in range(100)])
        with pytest.raises(BenchmarkTimeout):
            session.sql("SELECT * FROM t SKYLINE OF x MIN").collect()


class TestDeprecatedSurface:
    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning):
            session = SkylineSession(num_executors=7)
        assert session.cluster_config.num_executors == 7

    def test_config_and_kwargs_merge(self):
        # Legacy kwargs layered on an explicit config still warn, and
        # the kwarg wins (it is the more specific request).
        with pytest.warns(DeprecationWarning):
            session = SkylineSession(num_executors=3,
                                     config=SessionConfig())
        assert session.config.num_executors == 3

    @pytest.mark.parametrize("method,args,attr,expected", [
        ("with_executors", (6,), None, None),
        ("with_backend", ("thread",), None, None),
        ("with_skyline_algorithm", ("sfs",), "skyline_algorithm", "sfs"),
        ("with_vectorized", (False,), "vectorized", False),
        ("with_columnar", (False,), "columnar", False),
        ("with_skyline_partitioning", ("random", 4),
         "skyline_partitioning", "random"),
    ])
    def test_builders_warn_and_delegate(self, method, args, attr,
                                        expected):
        session = repro.connect()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            derived = getattr(session, method)(*args)
        assert isinstance(derived, SkylineSession)
        assert derived is not session
        if attr is not None:
            assert getattr(derived, attr) == expected

    def test_with_options_no_warning(self, recwarn):
        session = repro.connect().with_options(skyline_algorithm="sfs")
        assert session.skyline_algorithm == "sfs"
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_with_options_shares_catalog(self):
        base = repro.connect()
        base.create_table("t", [("x", repro.INTEGER, False)], [(1,)])
        derived = base.with_options(num_executors=4)
        assert derived.catalog is base.catalog
        assert derived.sql("SELECT * FROM t").collect()


class TestQueryResultFields:
    def test_benign_defaults(self, hotels_session):
        result = hotels_session.sql(
            "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX"
        ).run()
        assert result.cache_hit is False
        assert result.scheduler_wait_s == 0.0
