"""Benchmark harness and Appendix-D-style reporting."""

import pytest

from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, executors_sweep,
                         format_memory_table, format_percent_table,
                         format_time_table, render_sweep, run_query,
                         tuples_sweep)
from repro.bench.harness import RunResult
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload


@pytest.fixture(scope="module")
def workload():
    return store_sales_workload(250)


class TestRunQuery:
    def test_integrated_run_records_metrics(self, workload):
        result = run_query(workload, Algorithm.DISTRIBUTED_COMPLETE,
                           num_dimensions=3, num_executors=2)
        assert not result.timed_out
        assert result.simulated_time_s > 0
        assert result.peak_memory_mb > 0
        assert result.result_rows > 0
        assert result.dominance_comparisons > 0

    def test_reference_run_matches_integrated_result_size(self, workload):
        integrated = run_query(workload, Algorithm.DISTRIBUTED_COMPLETE,
                               3, 2)
        reference = run_query(workload, Algorithm.REFERENCE, 3, 2)
        assert integrated.result_rows == reference.result_rows

    def test_timeout_marks_run(self, workload):
        result = run_query(workload, Algorithm.REFERENCE, 6, 2,
                           budget_s=0.0)
        assert result.timed_out
        assert result.simulated_time_s == float("inf")

    def test_all_strategies_run(self, workload):
        for algorithm in ALGORITHMS_COMPLETE:
            result = run_query(workload, algorithm, 2, 2)
            assert not result.timed_out


class TestSweeps:
    def test_dimensions_sweep_shape(self, workload):
        results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, 2,
                                   dimension_values=(1, 2))
        assert set(results) == set(ALGORITHMS_INCOMPLETE)
        assert all(len(v) == 2 for v in results.values())
        assert results[Algorithm.REFERENCE][0].num_dimensions == 1

    def test_executors_sweep_shape(self, workload):
        results = executors_sweep(workload,
                                  [Algorithm.DISTRIBUTED_COMPLETE], 2,
                                  executor_values=(1, 4))
        cells = results[Algorithm.DISTRIBUTED_COMPLETE]
        assert [c.num_executors for c in cells] == [1, 4]

    def test_tuples_sweep_builds_workloads(self):
        results = tuples_sweep(
            lambda n: store_sales_workload(n),
            sizes=(50, 100),
            algorithms=[Algorithm.DISTRIBUTED_COMPLETE],
            num_dimensions=2, num_executors=2)
        cells = results[Algorithm.DISTRIBUTED_COMPLETE]
        assert [c.num_tuples for c in cells] == [50, 100]


def _cell(algorithm, time_s, timed_out=False):
    return RunResult(
        algorithm=algorithm, dataset="d", num_dimensions=1, num_tuples=1,
        num_executors=1, simulated_time_s=time_s, peak_memory_mb=1000.0,
        result_rows=1, dominance_comparisons=1, wall_time_s=time_s,
        timed_out=timed_out)


class TestReporting:
    RESULTS = {
        Algorithm.DISTRIBUTED_COMPLETE: [
            _cell(Algorithm.DISTRIBUTED_COMPLETE, 1.0),
            _cell(Algorithm.DISTRIBUTED_COMPLETE, 2.0)],
        Algorithm.REFERENCE: [
            _cell(Algorithm.REFERENCE, 4.0),
            _cell(Algorithm.REFERENCE, 0.0, timed_out=True)],
    }

    def test_time_table_contains_timeouts(self):
        text = format_time_table("T", "x", [1, 2], self.RESULTS)
        assert "t.o." in text
        assert "4.000" in text

    def test_percent_table_reference_is_100(self):
        text = format_percent_table("T", "x", [1, 2], self.RESULTS)
        assert "100.00%" in text
        assert "25.00%" in text
        # Column with timed-out reference becomes n.a.
        assert "n.a." in text

    def test_percent_requires_reference(self):
        partial = {Algorithm.DISTRIBUTED_COMPLETE:
                   self.RESULTS[Algorithm.DISTRIBUTED_COMPLETE]}
        with pytest.raises(ValueError):
            format_percent_table("T", "x", [1, 2], partial)

    def test_memory_table(self):
        text = format_memory_table("M", "x", [1, 2], self.RESULTS)
        assert "1000.0" in text

    def test_render_sweep_combines_sections(self):
        text = render_sweep("Fig", "x", [1, 2], self.RESULTS,
                            include_memory=True)
        assert "execution time" in text
        assert "relative to reference" in text
        assert "peak memory" in text
