"""Global-merge ablation bench (`repro.bench --global-merge`)."""

import json

from repro.bench.global_merge import (measure_merge_speedup,
                                      render_merge_report)
from repro.bench.smoke import main


class TestMeasureMergeSpeedup:
    def test_report_shape_and_bit_identity(self):
        report = measure_merge_speedup(num_rows=2000, num_partitions=12,
                                       repeats=1)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "global_merge"
        assert encoded["bit_identical"] is True
        assert encoded["speedup"] > 0
        flat = encoded["runs"]["flat"]
        hier = encoded["runs"]["hierarchical"]
        assert flat["strategy"] == "flat"
        assert flat["rounds_completed"] == 0
        assert hier["strategy"] == "hierarchical"
        assert hier["rounds_completed"] >= 2
        assert hier["skyline_rows"] == flat["skyline_rows"] > 0
        assert hier["fallback"] is None

    def test_render_report(self):
        report = measure_merge_speedup(num_rows=1500, num_partitions=8,
                                       repeats=1)
        text = render_merge_report(report)
        assert "global-merge ablation" in text
        assert "hierarchical" in text
        assert "bit-identical answers: True" in text
        assert "speedup" in text


class TestCli:
    def test_global_merge_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--global-merge", "--rows", "1500"])
        assert status == 0
        report = json.loads(
            (tmp_path / "BENCH_global_merge.json").read_text())
        assert report["bit_identical"] is True
        assert "global-merge ablation" in capsys.readouterr().out

    def test_min_merge_speedup_gate_fails_when_unmet(self, tmp_path,
                                                     monkeypatch,
                                                     capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--global-merge", "--rows", "1500",
                       "--min-merge-speedup", "1000000"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().err
