"""Pipelined executor ablation bench (`repro.bench --pipeline`)."""

import json
import math

import pytest

from repro.bench.pipeline import measure_pipeline, render_pipeline_report
from repro.bench.smoke import main

SMALL = dict(num_rows=6000, num_executors=4, num_workers=2, repeats=1)


class TestMeasurePipeline:
    def test_report_shape_and_invariants(self):
        report = measure_pipeline(**SMALL)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "pipeline"
        overlap = encoded["overlap"]
        assert overlap["bit_identical"] is True
        assert overlap["staged_s"] > 0 and overlap["pipelined_s"] > 0
        assert overlap["speedup"] > 0
        assert overlap["ttfb_speedup"] > 0
        assert overlap["skyline_rows"] > 0
        assert overlap["waves"] >= 1
        ooc = encoded["out_of_core"]
        assert ooc["bit_identical"] is True
        assert ooc["ratio"] >= 4.0
        assert ooc["spilled_bytes"] > 0  # the gate must not be vacuous
        assert ooc["fold_peak_bytes"] is not None

    def test_render_report(self):
        report = measure_pipeline(**SMALL)
        text = render_pipeline_report(report)
        assert "pipelined executor ablation" in text
        assert "staged" in text and "pipelined" in text
        assert "out-of-core" in text
        assert "bit-identical: True" in text


class TestTimeToFirstBatch:
    def test_smoke_records_ttfb(self):
        """Satellite: `repro.bench --smoke` reports time-to-first-batch
        for every backend run."""
        from repro.bench.smoke import run_smoke
        report = run_smoke(num_rows=120, num_executors=2)
        assert report["runs"]
        for run in report["runs"]:
            ttfb = run["time_to_first_batch_s"]
            assert ttfb is not None
            assert not math.isnan(ttfb)
            assert 0.0 <= ttfb <= run["wall_time_s"] + 1.0


class TestCli:
    def test_pipeline_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--pipeline", "--rows", "6000"])
        assert status == 0
        report = json.loads((tmp_path / "BENCH_pipeline.json").read_text())
        assert report["overlap"]["bit_identical"] is True
        assert report["out_of_core"]["spilled_bytes"] > 0
        assert "pipelined executor ablation" in capsys.readouterr().out

    def test_overlap_gate_fails_when_unmet(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--pipeline", "--rows", "6000",
                       "--min-pipeline-speedup", "1000000",
                       "--min-ttfb-speedup", "1000000"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().err

    def test_rss_gate_fails_when_unmet(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--pipeline", "--rows", "6000",
                       "--max-pipeline-rss-mb", "0.001"])
        assert status == 1
        assert "RSS" in capsys.readouterr().err
