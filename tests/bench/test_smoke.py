"""Smoke/speedup bench modes and the backend comparison table."""

import json

from repro.bench import backends_sweep, format_backend_table
from repro.bench.smoke import main, measure_speedup, run_smoke
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload


class TestRunSmoke:
    def test_report_is_json_serialisable(self):
        report = run_smoke(num_rows=80, num_workers=2)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "smoke"
        # two workloads x three backends
        assert len(encoded["runs"]) == 6
        assert {run["backend"] for run in encoded["runs"]} == \
            {"local", "thread", "process"}
        assert all(run["result_rows"] > 0 for run in encoded["runs"])

    def test_backends_agree_per_workload(self):
        report = run_smoke(num_rows=60, num_workers=2)
        by_dataset = {}
        for run in report["runs"]:
            by_dataset.setdefault(run["num_tuples"], set()).add(
                run["result_rows"])
        assert all(len(sizes) == 1 for sizes in by_dataset.values())


class TestMeasureSpeedup:
    def test_speedup_fields(self):
        result = measure_speedup(num_rows=300, num_dimensions=3,
                                 num_workers=2)
        assert result["speedup"] > 0
        assert result["local_s"] > 0 and result["process_s"] > 0
        assert result["global_skyline_rows"] > 0


class TestCli:
    def test_smoke_flag_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        status = main(["--smoke", "--rows", "60", "--workers", "2",
                       "--out", str(out)])
        assert status == 0
        report = json.loads(out.read_text())
        assert report["num_rows"] == 60

    def test_requires_a_mode(self, capsys):
        import pytest
        with pytest.raises(SystemExit):
            main([])


class TestBackendTable:
    def test_real_vs_simulated_side_by_side(self):
        workload = store_sales_workload(120)
        results = backends_sweep(workload, Algorithm.DISTRIBUTED_COMPLETE,
                                 num_dimensions=2, num_executors=2,
                                 num_workers=2)
        assert set(results) == {"local", "thread", "process"}
        text = format_backend_table("Backends", results)
        assert "real [s]" in text and "simulated [s]" in text
        assert "process" in text and "1.00x" in text


class TestVectorizedAblation:
    def test_report_fields_and_agreement(self):
        import pytest
        from repro.bench.vectorized import (measure_vectorized_speedup,
                                           render_vectorized_report)
        from repro.core.vectorized import numpy_available
        if not numpy_available():
            with pytest.raises(RuntimeError, match="NumPy"):
                measure_vectorized_speedup(num_rows=100)
            return
        report = measure_vectorized_speedup(num_rows=400,
                                            num_dimensions=3,
                                            num_partitions=2)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "vectorized"
        assert len(encoded["workloads"]) == 2
        for entry in encoded["workloads"]:
            assert set(entry["kernels"]) == {"bnl", "sfs"}
            assert entry["query"]["skyline_rows"] > 0
        assert encoded["best_local_speedup"] > 0
        text = render_vectorized_report(report)
        assert "best local-phase speedup" in text
        assert "full query" in text


class TestColumnarAblation:
    def test_report_fields_and_agreement(self):
        from repro.bench.columnar import (measure_columnar_speedup,
                                          render_columnar_report)
        report = measure_columnar_speedup(num_rows=600, repeats=1)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "columnar"
        assert len(encoded["workloads"]) == 2
        for entry in encoded["workloads"]:
            # The row/batch agreement assertion ran inside the
            # measurement; here just sanity-check the shape.
            assert entry["skyline_rows"] > 0
            assert entry["row_s"] > 0 and entry["columnar_s"] > 0
            assert "SKYLINE OF" in entry["sql"]
        text = render_columnar_report(report)
        assert "best end-to-end speedup" in text
        assert "batch plane" in text
