"""Shared-memory transport ablation bench (`repro.bench --shm`)."""

import json

import pytest

from repro.bench.shm import measure_shm_speedup, render_shm_report
from repro.bench.smoke import main
from repro.core.vectorized import numpy_available
from repro.engine.shm import shared_memory_available

pytestmark = pytest.mark.skipif(
    not (numpy_available() and shared_memory_available()),
    reason="shared memory not available on this platform")

SMALL = dict(num_rows=4000, num_executors=4, num_workers=2, repeats=1,
             wide_columns=8)


class TestMeasureShmSpeedup:
    def test_report_shape_and_invariants(self):
        report = measure_shm_speedup(**SMALL)
        encoded = json.loads(json.dumps(report))
        assert encoded["kind"] == "shm"
        assert encoded["bit_identical"] is True
        assert encoded["leaked_segments"] == []
        assert encoded["speedup"] > 0
        assert encoded["pickle_s"] > 0 and encoded["shm_s"] > 0
        assert encoded["skyline_rows"] > 0
        # The shm leg really used the zero-copy path.
        assert encoded["shm_stats"]["handles_served"] > 0
        assert encoded["shm_stats"]["segments_created"] > 0

    def test_render_report(self):
        report = measure_shm_speedup(**SMALL)
        text = render_shm_report(report)
        assert "shared-memory transport ablation" in text
        assert "pickle" in text and "shm" in text
        assert "bit-identical: True" in text


class TestCli:
    def test_shm_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--shm", "--rows", "4000"])
        assert status == 0
        report = json.loads((tmp_path / "BENCH_shm.json").read_text())
        assert report["bit_identical"] is True
        assert report["leaked_segments"] == []
        assert "shared-memory transport ablation" in \
            capsys.readouterr().out

    def test_min_shm_speedup_gate_fails_when_unmet(self, tmp_path,
                                                   monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["--shm", "--rows", "4000",
                       "--min-shm-speedup", "1000000"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().err
