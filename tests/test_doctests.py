"""Doctest examples on the public API, wired into the tier-1 run.

CI additionally runs ``pytest --doctest-modules`` over the same
modules; this file keeps the examples exercised by the plain
``python -m pytest`` invocation too.
"""

import doctest

import pytest

import repro.api.config
import repro.api.dataframe
import repro.api.session
import repro.stats.statistics
import repro.stats.store

DOCTESTED_MODULES = [
    repro.api.config,
    repro.api.session,
    repro.api.dataframe,
    repro.stats.statistics,
    repro.stats.store,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES,
    ids=[m.__name__ for m in DOCTESTED_MODULES])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}")
