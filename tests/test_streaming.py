"""Streaming skyline maintenance (Section 7 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bnl_skyline, make_dimensions
from repro.errors import ExecutionError
from repro.streaming import SkylineStream, skyline_of_stream
from tests.conftest import skyline_oracle

MIN2 = make_dimensions([(0, "min"), (1, "min")])

rows_2d = st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   max_size=50)
maybe_int = st.one_of(st.none(), st.integers(0, 6))
rows_nullable = st.lists(st.tuples(maybe_int, maybe_int), max_size=30)


class TestSkylineStream:
    def test_empty_stream(self):
        stream = SkylineStream(MIN2)
        assert stream.current() == []
        assert stream.window_size == 0

    def test_requires_dimensions(self):
        with pytest.raises(ExecutionError):
            SkylineStream([])

    def test_add_reports_survival(self):
        stream = SkylineStream(MIN2)
        assert stream.add((2, 2)) is True
        assert stream.add((3, 3)) is False  # dominated on arrival
        assert stream.add((1, 1)) is True   # evicts (2,2)
        assert stream.current() == [(1, 1)]

    def test_counters(self):
        stream = SkylineStream(MIN2)
        stream.add_all([(2, 2), (3, 3), (1, 1)])
        assert stream.rows_seen == 3
        assert stream.rows_dropped == 2

    def test_distinct_mode(self):
        stream = SkylineStream(MIN2, distinct=True)
        stream.add_all([(1, 1), (1, 1)])
        assert stream.current() == [(1, 1)]

    def test_null_rows_rejected_by_default(self):
        stream = SkylineStream(MIN2)
        with pytest.raises(ExecutionError, match="allow_nulls"):
            stream.add((None, 1))

    def test_null_rows_buffered_when_allowed(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add((2, 5))
        stream.add((None, 1))
        # (None,1) beats (2,5) on the common non-null dimension, so the
        # null-aware skyline keeps only the null row.
        assert sorted(stream.current(), key=repr) == [(None, 1)]

    @given(rows_2d)
    @settings(max_examples=80, deadline=None)
    def test_stream_matches_batch(self, rows):
        stream = SkylineStream(MIN2)
        stream.add_all(rows)
        assert sorted(stream.current()) == \
            sorted(bnl_skyline(rows, MIN2))

    @given(rows_nullable)
    @settings(max_examples=50, deadline=None)
    def test_nullable_stream_matches_oracle(self, rows):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all(rows)
        expected = skyline_oracle(rows, MIN2, complete=False)
        assert sorted(stream.current(), key=repr) == \
            sorted(expected, key=repr)


class TestMicroBatches:
    def test_batch_delta_reporting(self):
        stream = SkylineStream(MIN2)
        first = stream.process_batch([(2, 2), (3, 3)])
        assert first["added"] == [(2, 2)]
        assert first["evicted"] == []
        second = stream.process_batch([(1, 1)])
        assert second["added"] == [(1, 1)]
        assert second["evicted"] == [(2, 2)]
        assert second["skyline_size"] == 1

    @given(rows_2d, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_batching_is_transparent(self, rows, batch_size):
        stream = SkylineStream(MIN2)
        for start in range(0, len(rows), batch_size):
            stream.process_batch(rows[start:start + batch_size])
        assert sorted(stream.current()) == \
            sorted(bnl_skyline(rows, MIN2))


class TestCheckpointing:
    def test_checkpoint_restore_roundtrip(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all([(2, 2), (3, 3), (1, 4)])
        stream.add((None, 0))
        state = stream.checkpoint()
        restored = SkylineStream.restore(MIN2, state, allow_nulls=True)
        assert sorted(restored.current(), key=repr) == \
            sorted(stream.current(), key=repr)
        assert restored.rows_seen == stream.rows_seen
        # The restored stream keeps working.
        restored.add((0, 0))
        assert (0, 0) in restored.current()


class TestNullBuffering:
    """The ``allow_nulls=True`` buffering path (Section 5.7 cost
    profile): null rows are parked and the skyline is recomputed with
    the flag-based algorithm on demand."""

    def test_null_rows_count_as_seen_not_dropped(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all([(None, 1), (2, 2), (1, None)])
        assert stream.rows_seen == 3
        assert stream.rows_dropped == 0
        # The window holds only the complete row; nulls sit in the
        # buffer and do not inflate window_size.
        assert stream.window_size == 1

    def test_add_reports_survival_for_buffered_nulls(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        assert stream.add((None, 5)) is True  # buffered, not judged yet
        # Even a row the current skyline would reject is buffered.
        stream.add((0, 0))
        assert stream.add((None, 9)) is True

    def test_current_is_recomputed_after_each_add(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add((None, 1))
        assert sorted(stream.current(), key=repr) == [(None, 1)]
        stream.add((3, 0))
        # (3, 0) beats (None, 1) on the common dimension.
        assert sorted(stream.current(), key=repr) == [(3, 0)]
        stream.add((None, 0))
        expected = skyline_oracle([(None, 1), (3, 0), (None, 0)], MIN2,
                                  complete=False)
        assert sorted(stream.current(), key=repr) == \
            sorted(expected, key=repr)

    def test_process_batch_with_nulls_reports_skyline_size(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        report = stream.process_batch([(2, 2), (None, 1)])
        # The delta tracks the complete-row window; the size reflects
        # the full null-aware skyline.
        assert report["added"] == [(2, 2)]
        assert report["skyline_size"] == len(stream.current())

    def test_distinct_applies_to_buffered_nulls(self):
        stream = SkylineStream(MIN2, distinct=True, allow_nulls=True)
        stream.add_all([(None, 0), (None, 0), (9, 9)])
        assert sorted(stream.current(), key=repr) == [(None, 0)]

    def test_checkpoint_preserves_null_buffer(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all([(1, 1), (None, 0), (None, 2)])
        state = stream.checkpoint()
        assert sorted(state["null_buffer"]) == [(None, 0), (None, 2)]
        restored = SkylineStream.restore(MIN2, state, allow_nulls=True)
        restored.add((None, 3))
        expected = skyline_oracle(
            [(1, 1), (None, 0), (None, 2), (None, 3)], MIN2,
            complete=False)
        assert sorted(restored.current(), key=repr) == \
            sorted(expected, key=repr)

    def test_restore_preserves_null_mask_window_state(self):
        """Regression: a round trip used to silently restore with
        ``allow_nulls=False``, so a stream whose checkpoint carried a
        null buffer rejected the very rows it had been accepting."""
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all([(2, 2), (None, 0)])
        restored = SkylineStream.restore(MIN2, stream.checkpoint())
        assert restored.allow_nulls is True
        restored.add((None, 1))  # must buffer, not raise
        expected = skyline_oracle([(2, 2), (None, 0), (None, 1)], MIN2,
                                  complete=False)
        assert sorted(restored.current(), key=repr) == \
            sorted(expected, key=repr)

    def test_restore_preserves_distinct_mode(self):
        stream = SkylineStream(MIN2, distinct=True)
        stream.add((1, 1))
        restored = SkylineStream.restore(MIN2, stream.checkpoint())
        assert restored.distinct is True
        restored.add((1, 1))
        assert restored.current() == [(1, 1)]

    def test_restore_explicit_override_beats_checkpoint_flags(self):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add((2, 2))
        restored = SkylineStream.restore(MIN2, stream.checkpoint(),
                                         allow_nulls=False)
        with pytest.raises(ExecutionError, match="allow_nulls"):
            restored.add((None, 1))

    def test_restore_version1_state_defaults_to_strict(self):
        """Old checkpoints (no mode flags) restore with the historical
        constructor defaults."""
        state = {"window": [(2, 2)], "null_buffer": [],
                 "rows_seen": 1, "rows_dropped": 0}
        restored = SkylineStream.restore(MIN2, state)
        assert restored.allow_nulls is False and \
            restored.distinct is False
        with pytest.raises(ExecutionError, match="allow_nulls"):
            restored.add((None, 1))

    def test_incomplete_dominance_streams_nulls_through_window(self):
        """The pipelined incomplete fold path: an explicit restricted
        dominance test lets null rows flow through the window (no
        buffering) -- sound within one null-bitmap partition."""
        from repro.core.dominance import dominates_incomplete
        stream = SkylineStream(MIN2, dominance=dominates_incomplete)
        stream.add_all([(None, 2), (None, 1), (None, 3)])
        assert stream.window_size == 1
        assert stream.current() == [(None, 1)]
        assert stream.comparisons > 0


class TestStreamMatchesBatchEngine:
    """SkylineStream and the batch engine must agree on the same row
    sequence -- the stream is the incremental view of the same query."""

    def _engine_skyline(self, rows, nullable=False):
        from repro import SkylineSession
        from repro.engine.types import INTEGER
        session = SkylineSession(num_executors=2)
        session.create_table(
            "s", [("a", INTEGER, nullable), ("b", INTEGER, nullable)],
            rows)
        return session.sql(
            "SELECT * FROM s SKYLINE OF a MIN, b MIN").to_tuples()

    @given(rows_2d)
    @settings(max_examples=40, deadline=None)
    def test_complete_sequences_agree(self, rows):
        stream = SkylineStream(MIN2)
        stream.add_all(rows)
        assert sorted(stream.current()) == \
            sorted(self._engine_skyline(rows))

    @given(rows_nullable)
    @settings(max_examples=30, deadline=None)
    def test_nullable_sequences_agree(self, rows):
        stream = SkylineStream(MIN2, allow_nulls=True)
        stream.add_all(rows)
        assert sorted(stream.current(), key=repr) == \
            sorted(self._engine_skyline(rows, nullable=True), key=repr)

    def test_micro_batches_agree_with_engine(self):
        rows = [(i % 7, (i * 3) % 5) for i in range(40)]
        stream = SkylineStream(MIN2)
        for start in range(0, len(rows), 8):
            stream.process_batch(rows[start:start + 8])
        assert sorted(stream.current()) == \
            sorted(self._engine_skyline(rows))


class TestOneShotHelper:
    def test_skyline_of_stream(self):
        rows = [(2, 2), (1, 1), (1, 3)]
        assert sorted(skyline_of_stream(iter(rows), MIN2)) == [(1, 1)]
