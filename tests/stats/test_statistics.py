"""Statistics subsystem: histograms, column stats, cache invalidation."""

import pytest

from repro import SkylineSession
from repro.core import make_dimensions
from repro.datasets import anticorrelated_rows, correlated_rows
from repro.engine.types import DOUBLE, INTEGER, STRING
from repro.stats import (Histogram, StatsStore, collect_table_stats,
                         stats_for_table)


class TestHistogram:
    def test_counts_and_bounds(self):
        h = Histogram.from_values([0.0, 1.0, 2.0, 3.0], num_buckets=2)
        assert (h.low, h.high) == (0.0, 3.0)
        assert h.counts == (2, 2)
        assert h.total == 4

    def test_empty_input_gives_none(self):
        assert Histogram.from_values([], num_buckets=4) is None

    def test_constant_column_collapses_to_one_bucket(self):
        h = Histogram.from_values([5.0] * 10, num_buckets=8)
        assert h.counts == (10,)
        assert h.selectivity_below(5.0) == 1.0
        assert h.selectivity_below(4.9) == 0.0

    def test_selectivity_below(self):
        h = Histogram.from_values([float(i) for i in range(100)],
                                  num_buckets=10)
        assert h.selectivity_below(-1.0) == 0.0
        assert h.selectivity_below(1000.0) == 1.0
        # Roughly half the values are below the midpoint.
        assert h.selectivity_below(49.5) == pytest.approx(0.5, abs=0.05)
        assert h.selectivity_above(49.5) == pytest.approx(0.5, abs=0.05)

    def test_inclusive_boundaries_never_estimate_zero(self):
        # Regression: 'c >= 5.0' on a constant column (or '>= max',
        # '<= min' generally) must not collapse to selectivity 0.0 --
        # the boundary-valued rows always qualify.
        constant = Histogram.from_values([5.0] * 10, num_buckets=8)
        assert constant.selectivity_above(5.0) == 1.0
        assert constant.selectivity_above(5.1) == 0.0
        h = Histogram.from_values([float(i) for i in range(100)],
                                  num_buckets=10)
        assert h.selectivity_above(h.high) > 0.0
        assert h.selectivity_below(h.low) > 0.0
        assert h.selectivity_above(h.high + 1) == 0.0

    def test_non_empty_buckets_measures_spread(self):
        spread = Histogram.from_values([float(i) for i in range(16)],
                                       num_buckets=16)
        clumped = Histogram.from_values([0.0] * 15 + [100.0],
                                        num_buckets=16)
        assert spread.non_empty_buckets == 16
        assert clumped.non_empty_buckets == 2

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            Histogram.from_values([1.0], num_buckets=0)

    def test_non_finite_values_are_excluded(self):
        # Regression: NaN used to poison the bucket bounds and raise.
        h = Histogram.from_values(
            [1.0, float("nan"), 2.0, float("inf")], num_buckets=2)
        assert h.total == 2
        assert (h.low, h.high) == (1.0, 2.0)
        assert Histogram.from_values([float("nan")]) is None

    def test_nan_column_stats_collect_without_error(self):
        stats = collect_table_stats(
            "t", ["a"], [(1.0,), (float("nan"),), (2.0,)])
        assert stats.column("a").histogram.total == 2


class TestCollectTableStats:
    def test_column_stats(self):
        stats = collect_table_stats(
            "t", ["a", "b", "s"],
            [(1, None, "x"), (2, 5.0, "y"), (3, 7.0, "x")])
        a = stats.column("a")
        assert (a.min_value, a.max_value) == (1, 3)
        assert a.num_nulls == 0 and a.num_distinct == 3
        b = stats.column("b")
        assert b.num_nulls == 1
        assert b.null_fraction == pytest.approx(1 / 3)
        s = stats.column("s")
        assert s.histogram is None  # non-numeric
        assert s.num_distinct == 2

    def test_lookup_is_case_insensitive(self):
        stats = collect_table_stats("t", ["Price"], [(1.0,), (2.0,)])
        assert stats.column("price") is not None
        assert stats.column("PRICE").max_value == 2.0

    def test_sample_is_bounded_and_deterministic(self):
        rows = [(float(i),) for i in range(10_000)]
        one = collect_table_stats("t", ["a"], rows, sample_rows=64)
        two = collect_table_stats("t", ["a"], rows, sample_rows=64)
        assert len(one.sample) == 64
        assert one.sample == two.sample

    def test_skyline_density_orders_distributions(self):
        dims = make_dimensions([(0, "min"), (1, "min"), (2, "min")])
        sparse = collect_table_stats(
            "c", ["a", "b", "c"], correlated_rows(2000, 3, spread=0.05))
        dense = collect_table_stats(
            "a", ["a", "b", "c"],
            anticorrelated_rows(2000, 3, spread=0.02))
        assert sparse.skyline_density(dims) < dense.skyline_density(dims)
        assert dense.skyline_density(dims) > 0.25

    def test_skyline_density_skips_null_rows(self):
        dims = make_dimensions([(0, "min"), (1, "min")])
        rows = [(None, 1.0)] * 50 + [(float(i), float(i))
                                     for i in range(50)]
        stats = collect_table_stats("t", ["a", "b"], rows)
        # Only the 50 complete rows are usable; they form a chain, so
        # the sample skyline is a single tuple.
        assert stats.skyline_density(dims) == pytest.approx(1 / 50)

    def test_skyline_density_none_when_sample_too_small(self):
        dims = make_dimensions([(0, "min")])
        stats = collect_table_stats("t", ["a"], [(1.0,), (2.0,)])
        assert stats.skyline_density(dims) is None


class TestStatsStoreInvalidation:
    def _session(self):
        session = SkylineSession()
        session.create_table(
            "t", [("a", INTEGER, False)], [(1,), (2,), (3,)])
        return session

    def test_stats_are_cached(self):
        session = self._session()
        first = session.catalog.statistics("t")
        assert session.catalog.statistics("t") is first

    def test_reregistering_invalidates(self):
        session = self._session()
        stale = session.catalog.statistics("t")
        session.create_table("t", [("a", INTEGER, False)], [(9,)])
        fresh = session.catalog.statistics("t")
        assert fresh is not stale
        assert fresh.num_rows == 1

    def test_row_append_detected_by_fingerprint(self):
        session = self._session()
        stale = session.catalog.statistics("t")
        session.catalog.lookup("t").rows.append((4,))
        fresh = session.catalog.statistics("t")
        assert fresh is not stale
        assert fresh.num_rows == 4

    def test_drop_clears_cache_entry(self):
        session = self._session()
        session.catalog.statistics("t")
        session.catalog.drop("t")
        assert session.catalog.stats.peek("t") is None

    def test_refresh_forces_recollection(self):
        session = self._session()
        stale = session.catalog.statistics("t")
        assert session.catalog.statistics("t", refresh=True) is not stale

    def test_store_get_via_table_object(self):
        session = self._session()
        store = StatsStore()
        table = session.catalog.lookup("t")
        assert store.get(table) is store.get(table)
        assert store.get(table).fingerprint == \
            stats_for_table(table).fingerprint


class TestSessionStatsApi:
    def test_table_stats_and_refresh(self):
        session = SkylineSession()
        session.create_table(
            "t", [("a", DOUBLE, True)], [(1.0,), (None,), (3.0,)])
        stats = session.table_stats("t")
        assert stats.column("a").num_nulls == 1
        refreshed = session.stats_refresh()
        assert set(refreshed) == {"t"}
        assert refreshed["t"] is not stats

    def test_analyze_table_sql(self):
        session = SkylineSession()
        session.create_table(
            "items", [("name", STRING, False), ("price", DOUBLE, True)],
            [("a", 1.0), ("b", None), ("c", 3.0)])
        rows = session.sql(
            "ANALYZE TABLE items COMPUTE STATISTICS").to_tuples()
        by_column = {row[1]: row for row in rows}
        assert set(by_column) == {"name", "price"}
        # (table, column, rows, nulls, null_fraction, min, max, ...)
        assert by_column["price"][2] == 3
        assert by_column["price"][3] == 1
        assert by_column["price"][5] == "1.0"
        # The command seeds the cache.
        assert session.catalog.stats.peek("items") is not None

    def test_analyze_table_without_compute_suffix(self):
        session = SkylineSession()
        session.create_table("t", [("a", INTEGER, False)], [(1,)])
        assert session.sql("ANALYZE TABLE t").count() == 1

    def test_analyze_unknown_table_fails(self):
        from repro import AnalysisError
        session = SkylineSession()
        with pytest.raises(AnalysisError):
            session.sql("ANALYZE TABLE nope").collect()
