"""Figure 7 / Tables 11-12: number of executors vs execution time on
store_sales (6 dimensions; complete at the largest size, incomplete at
half of it).

Paper shape: on this large dataset the distributed complete algorithm
clearly profits from executors while the non-distributed one cannot;
the reference times out at low executor counts (Table 11: t.o. for 1-5
executors) and stays slowest where it finishes.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSIONS = 6
COMPLETE_ROWS = scaled(8000)
INCOMPLETE_ROWS = scaled(4000)
#: Simulated budget chosen so the reference times out on few executors
#: but finishes on many (the Table 11 pattern).
SIMULATED_TIMEOUT_S = 1.0


@pytest.fixture(scope="module")
def complete_results():
    workload = store_sales_workload(COMPLETE_ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, DIMENSIONS,
                              executor_values=EXECUTOR_VALUES,
                              simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record("fig7_tables11_store_sales_complete", render_sweep(
        f"Fig 7 left / Table 11: store_sales complete "
        f"({COMPLETE_ROWS} tuples, {DIMENSIONS} dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    # No simulated timeout here: Table 12's reference column finishes at
    # almost all executor counts (a single t.o. at 5 executors).
    workload = store_sales_workload(INCOMPLETE_ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE,
                              DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig7_tables12_store_sales_incomplete", render_sweep(
        f"Fig 7 right / Table 12: store_sales incomplete "
        f"({INCOMPLETE_ROWS} tuples, {DIMENSIONS} dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


def test_no_specialized_timeouts(complete_results):
    assert_no_specialized_timeouts(complete_results)


def test_reference_times_out_on_one_executor(complete_results):
    assert complete_results[Algorithm.REFERENCE][0].timed_out


def test_reference_finishes_with_many_executors(complete_results):
    # The reference "is also able to make (limited) use of parallelism".
    assert not complete_results[Algorithm.REFERENCE][-1].timed_out


def test_distributed_complete_profits_from_executors(complete_results):
    cells = complete_results[Algorithm.DISTRIBUTED_COMPLETE]
    assert cells[-1].simulated_time_s < cells[0].simulated_time_s


def test_specialized_beat_reference(complete_results):
    assert_reference_is_slowest_overall(complete_results)


def test_incomplete_beats_reference(incomplete_results):
    assert_reference_is_slowest_overall(incomplete_results,
                                        tolerance=1.1)


def test_benchmark_distributed_complete(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, store_sales_workload(COMPLETE_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 10)
