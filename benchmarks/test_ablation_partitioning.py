"""Ablation study: partitioning schemes for the local skyline stage.

The paper keeps Spark's default (even) distribution and lists grid- and
angle-based partitioning [25, 42] as future work (Section 7).  This
bench compares the three schemes (plus grid-cell dominance pruning [41])
on the canonical distributions, reporting the quantity that matters for
the distributed pipeline: how many tuples survive the local stage (the
non-parallelizable global stage's input) and the dominance checks spent.
"""

import pytest

from helpers import record, scaled
from repro.bench.reporting import _render_rows
from repro.core import (DominanceStats, bnl_skyline, make_dimensions,
                        partition_rows)
from repro.datasets import (anticorrelated_rows, correlated_rows,
                            independent_rows)

ROWS = scaled(4000)
DIMENSIONS = 3
PARTITIONS = 8
SCHEMES = ("random", "grid", "angle")
DISTRIBUTIONS = {
    "independent": independent_rows,
    "correlated": correlated_rows,
    "anticorrelated": anticorrelated_rows,
}
DIMS = make_dimensions([(i, "min") for i in range(DIMENSIONS)])


def run_scheme(rows, scheme: str):
    """Local skylines under one scheme; returns metrics + final result."""
    partitions = partition_rows(rows, DIMS, scheme, PARTITIONS,
                                prune_cells=(scheme == "grid"))
    stats = DominanceStats()
    local_union = []
    for partition in partitions:
        local_union.extend(bnl_skyline(partition, DIMS, stats=stats))
    final = bnl_skyline(local_union, DIMS, stats=stats)
    return {
        "local_survivors": len(local_union),
        "comparisons": stats.comparisons,
        "skyline": sorted(final),
    }


@pytest.fixture(scope="module")
def ablation():
    table = {name: {scheme: run_scheme(generator(ROWS, DIMENSIONS,
                                                 seed=29), scheme)
                    for scheme in SCHEMES}
             for name, generator in DISTRIBUTIONS.items()}
    rows = []
    for scheme in SCHEMES:
        rows.append((f"{scheme}: global-stage input", [
            str(table[d][scheme]["local_survivors"])
            for d in DISTRIBUTIONS]))
    for scheme in SCHEMES:
        rows.append((f"{scheme}: dominance checks", [
            str(table[d][scheme]["comparisons"])
            for d in DISTRIBUTIONS]))
    record("ablation_partitioning", _render_rows(
        f"Ablation: partitioning schemes, {ROWS} tuples x "
        f"{DIMENSIONS} dims, {PARTITIONS} partitions",
        "metric", list(DISTRIBUTIONS), rows))
    return table


def test_all_schemes_compute_the_same_skyline(ablation):
    for distribution, by_scheme in ablation.items():
        skylines = {tuple(map(tuple, data["skyline"]))
                    for data in by_scheme.values()}
        assert len(skylines) == 1, distribution


def test_grid_pruning_shrinks_global_input_on_independent_data(ablation):
    independent = ablation["independent"]
    assert independent["grid"]["local_survivors"] <= \
        independent["random"]["local_survivors"]


def test_angle_partitioning_balances_anticorrelated_data(ablation):
    # On anti-correlated data the skyline is huge; no scheme can shrink
    # the global input below the skyline itself, but angle partitioning
    # must not be *worse* than random by more than a small margin.
    anti = ablation["anticorrelated"]
    assert anti["angle"]["local_survivors"] <= \
        1.2 * anti["random"]["local_survivors"]


def test_benchmark_grid_scheme(benchmark, ablation):
    rows = independent_rows(ROWS, DIMENSIONS, seed=29)

    def run():
        return run_scheme(rows, "grid")

    benchmark.pedantic(run, rounds=1, iterations=1)
