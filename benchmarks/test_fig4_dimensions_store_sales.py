"""Figure 4 / Tables 5-6: number of dimensions vs execution time on the
DSB store_sales dataset (complete left at full size, incomplete right at
a 10x smaller size to avoid timeouts; 10 executors).

Paper shape: on the *complete* data the reference query is
catastrophically slow at one dimension (Table 5: 2463 s vs 54-65 s,
>95% saving) because ss_quantity has many ties at its maximum and the
integrated plan uses the single-dimension scalar-subquery rewrite; cost
then dips for 2-4 dimensions and rises again toward 6.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

DIMS = list(range(1, 7))
EXECUTORS = 10
COMPLETE_ROWS = scaled(6000)
INCOMPLETE_ROWS = scaled(1500)   # the paper uses a 10x smaller dataset


@pytest.fixture(scope="module")
def complete_results():
    workload = store_sales_workload(COMPLETE_ROWS)
    results = dimensions_sweep(workload, ALGORITHMS_COMPLETE, EXECUTORS,
                               dimension_values=DIMS)
    record("fig4_tables5_store_sales_complete", render_sweep(
        f"Fig 4 left / Table 5: store_sales complete "
        f"({COMPLETE_ROWS} tuples, {EXECUTORS} executors)",
        "dimensions", DIMS, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    workload = store_sales_workload(INCOMPLETE_ROWS, incomplete=True)
    results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, EXECUTORS,
                               dimension_values=DIMS)
    record("fig4_tables6_store_sales_incomplete", render_sweep(
        f"Fig 4 right / Table 6: store_sales incomplete "
        f"({INCOMPLETE_ROWS} tuples, {EXECUTORS} executors)",
        "dimensions", DIMS, results))
    return results


def test_specialized_beat_reference(complete_results):
    assert_reference_is_slowest_overall(complete_results, tolerance=1.05)
    assert_no_specialized_timeouts(complete_results)


def test_one_dimension_reference_blowup(complete_results):
    """The Table 5 signature: the 1-dimension reference query costs a
    multiple of the integrated single-dimension rewrite."""
    reference = complete_results[Algorithm.REFERENCE][0]
    integrated = complete_results[Algorithm.DISTRIBUTED_COMPLETE][0]
    assert reference.simulated_time_s > 3 * integrated.simulated_time_s


def test_one_dimension_reference_slower_than_mid_dimensions(
        complete_results):
    cells = complete_results[Algorithm.REFERENCE]
    # Dip from 1 -> 2 dimensions (ties resolved by the 2nd dimension).
    assert cells[0].simulated_time_s > cells[1].simulated_time_s


def test_incomplete_results_close_to_reference_or_better(
        incomplete_results):
    # Table 6 even shows one cell where the reference wins narrowly; we
    # only require the overall total to favour the specialized algorithm.
    assert_reference_is_slowest_overall(incomplete_results,
                                        tolerance=1.15)


def test_benchmark_single_dimension_rewrite(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, store_sales_workload(COMPLETE_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, 1, EXECUTORS)
