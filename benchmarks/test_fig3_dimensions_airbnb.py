"""Figure 3 / Tables 3-4: number of dimensions vs execution time on the
Inside Airbnb dataset (complete left, incomplete right; 5 executors).

Paper shape: execution time grows with the dimension count, most steeply
for the reference algorithm; every specialized algorithm beats the
reference (Table 3: 46-97% of reference; Table 4: 35-88%).
"""

import pytest

from helpers import (assert_memory_comparable,
                     assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import airbnb_workload

DIMS = list(range(1, 7))
EXECUTORS = 5
RAW_ROWS = scaled(2500)


@pytest.fixture(scope="module")
def complete_results():
    workload = airbnb_workload(RAW_ROWS)
    results = dimensions_sweep(workload, ALGORITHMS_COMPLETE, EXECUTORS,
                               dimension_values=DIMS)
    record("fig3_tables3_airbnb_complete", render_sweep(
        f"Fig 3 left / Table 3: airbnb complete "
        f"({workload.num_rows} tuples, {EXECUTORS} executors)",
        "dimensions", DIMS, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    workload = airbnb_workload(RAW_ROWS, incomplete=True)
    results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, EXECUTORS,
                               dimension_values=DIMS)
    record("fig3_tables4_airbnb_incomplete", render_sweep(
        f"Fig 3 right / Table 4: airbnb incomplete "
        f"({workload.num_rows} tuples, {EXECUTORS} executors)",
        "dimensions", DIMS, results))
    return results


def test_specialized_beat_reference_on_complete_data(complete_results):
    assert_reference_is_slowest_overall(complete_results, tolerance=1.05)
    assert_no_specialized_timeouts(complete_results)


def test_memory_comparable_across_algorithms(complete_results):
    assert_memory_comparable(complete_results)


def test_reference_time_grows_with_dimensions(complete_results):
    cells = complete_results[Algorithm.REFERENCE]
    assert cells[-1].simulated_time_s > cells[0].simulated_time_s


def test_incomplete_algorithm_beats_reference(incomplete_results):
    assert_reference_is_slowest_overall(incomplete_results,
                                        tolerance=1.05)


def test_results_agree_between_algorithms(complete_results):
    for dims_index in range(len(DIMS)):
        sizes = {a: cells[dims_index].result_rows
                 for a, cells in complete_results.items()}
        assert len(set(sizes.values())) == 1, sizes


def test_benchmark_distributed_complete_6d(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, airbnb_workload(RAW_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, 6, EXECUTORS)
