"""Figure 12: number of dimensions vs execution time on store_sales
(5M tuples in the paper, scaled here), one grid per executor count.

Paper shape: the two opposing dimensionality effects are clearly
visible on the reference curve (expensive at 1 dimension, dip to 2-3,
rise again to 6); specialized algorithms stay below the reference; the
incomplete variant suffers reference timeouts.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

DIMS = list(range(1, 7))
EXECUTOR_GRIDS = (2, 5)
ROWS = scaled(3000)
SIMULATED_TIMEOUT_S = 2.5


@pytest.fixture(scope="module", params=EXECUTOR_GRIDS)
def complete_grid(request):
    executors = request.param
    workload = store_sales_workload(ROWS)
    results = dimensions_sweep(workload, ALGORITHMS_COMPLETE, executors,
                               dimension_values=DIMS,
                               simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record(f"fig12_store_sales_complete_{executors}executors",
           render_sweep(
               f"Fig 12: store_sales complete, dims vs time "
               f"({ROWS} tuples, {executors} executors)",
               "dimensions", DIMS, results))
    return results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = store_sales_workload(ROWS, incomplete=True)
    results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, 5,
                               dimension_values=DIMS,
                               simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record("fig12_store_sales_incomplete_5executors", render_sweep(
        f"Fig 12: store_sales incomplete, dims vs time "
        f"({ROWS} tuples, 5 executors)", "dimensions", DIMS, results))
    return results


def test_specialized_beat_reference(complete_grid):
    assert_reference_is_slowest_overall(complete_grid, tolerance=1.1)
    assert_no_specialized_timeouts(complete_grid)


def test_dimensionality_dip_on_reference(complete_grid):
    cells = complete_grid[Algorithm.REFERENCE]
    finished = [c.simulated_time_s for c in cells if not c.timed_out]
    if len(finished) >= 3:
        # 1-dim more expensive than the cheapest middle dimension.
        assert finished[0] > min(finished[1:4])


def test_incomplete_no_specialized_timeouts(incomplete_grid):
    assert_no_specialized_timeouts(incomplete_grid)


def test_benchmark_representative(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, store_sales_workload(ROWS),
                         Algorithm.NON_DISTRIBUTED_COMPLETE, 6, 5)
