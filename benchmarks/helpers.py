"""Shared helpers for the per-figure benchmark modules.

Each ``benchmarks/test_fig*.py`` regenerates one table/figure of the
paper: it runs the harness grid, writes the paper-style tables to
``benchmarks/results/<name>.txt`` (and stdout), asserts the *shape* of
the result (who wins, where timeouts fall), and registers one
representative cell with pytest-benchmark.
"""

from __future__ import annotations

import math
import os
import pathlib
from typing import Mapping, Sequence

from repro.bench.harness import RunResult, run_query
from repro.core.algorithms import Algorithm

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Global size multiplier; raise (e.g. REPRO_BENCH_SCALE=4) for slower,
#: higher-fidelity runs, lower for smoke tests.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Scale a default workload size by REPRO_BENCH_SCALE."""
    return max(50, int(n * SCALE))


def record(name: str, text: str) -> None:
    """Persist a rendered table and echo it for interactive runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def finished(cells: Sequence[RunResult]) -> list[RunResult]:
    return [c for c in cells if not c.timed_out]


def total_time(cells: Sequence[RunResult]) -> float:
    return sum(c.simulated_time_s for c in finished(cells))


def comparable_totals(results: Mapping[Algorithm, list[RunResult]]
                      ) -> dict[Algorithm, float]:
    """Total time per algorithm over the cells every algorithm finished."""
    algorithms = list(results)
    length = len(results[algorithms[0]])
    totals = {a: 0.0 for a in algorithms}
    for i in range(length):
        if any(results[a][i].timed_out for a in algorithms):
            continue
        for a in algorithms:
            totals[a] += results[a][i].simulated_time_s
    return totals


def assert_reference_is_slowest_overall(
        results: Mapping[Algorithm, list[RunResult]],
        tolerance: float = 1.0) -> None:
    """The paper's headline: specialized algorithms beat the reference.

    Checked on totals over commonly-finished cells; ``tolerance`` > 1
    loosens the bound for noisy small-scale runs.
    """
    totals = comparable_totals(results)
    reference = totals.pop(Algorithm.REFERENCE)
    assert reference > 0, "reference timed out everywhere"
    for algorithm, total in totals.items():
        assert total <= reference * tolerance, (
            f"{algorithm.value} ({total:.3f}s) is not faster than the "
            f"reference ({reference:.3f}s)")


def assert_distributed_complete_wins(
        results: Mapping[Algorithm, list[RunResult]],
        tolerance: float = 1.15) -> None:
    """For complete data the distributed complete algorithm performs best
    (Section 6.6), within a noise tolerance."""
    totals = comparable_totals(results)
    best = totals[Algorithm.DISTRIBUTED_COMPLETE]
    for algorithm, total in totals.items():
        assert best <= total * tolerance, (
            f"distributed complete ({best:.3f}s) lost to "
            f"{algorithm.value} ({total:.3f}s)")


def assert_no_specialized_timeouts(
        results: Mapping[Algorithm, list[RunResult]]) -> None:
    """The paper 'never [has] the opposite situation that a specialized
    algorithm times out but not the reference' (Appendix D)."""
    reference = results.get(Algorithm.REFERENCE)
    for algorithm, cells in results.items():
        if algorithm is Algorithm.REFERENCE:
            continue
        for i, cell in enumerate(cells):
            if cell.timed_out and reference is not None:
                assert reference[i].timed_out, (
                    f"{algorithm.value} timed out where the reference "
                    f"did not (cell {i})")


def assert_memory_comparable(
        results: Mapping[Algorithm, list[RunResult]],
        factor: float = 3.0) -> None:
    """Appendix C: no algorithm pays significantly more memory.

    Compared per grid cell (same x value) across algorithms -- memory
    legitimately grows along the x axis (executors/tuples).
    """
    algorithms = list(results)
    length = len(results[algorithms[0]])
    checked = 0
    for i in range(length):
        values = [results[a][i].peak_memory_mb for a in algorithms
                  if not results[a][i].timed_out
                  and not math.isnan(results[a][i].peak_memory_mb)]
        if len(values) < 2:
            continue
        checked += 1
        assert max(values) <= min(values) * factor, (
            f"memory diverges at cell {i}: {values}")
    assert checked > 0


def bench_representative(benchmark, workload, algorithm: Algorithm,
                         num_dimensions: int, num_executors: int) -> None:
    """Register one representative cell with pytest-benchmark."""

    def run() -> RunResult:
        return run_query(workload, algorithm, num_dimensions,
                         num_executors, budget_s=None)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.timed_out
