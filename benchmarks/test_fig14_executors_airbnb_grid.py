"""Figure 14: number of executors vs execution time on Inside Airbnb,
one grid per dimension count (3, 4, 5, 6).

Paper shape: the distributed complete algorithm "hardly profits from
additional executors" on this small dataset, yet the reference never
outperforms any specialized algorithm.
"""

import pytest

from helpers import (assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import airbnb_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSION_GRIDS = (3, 6)
RAW_ROWS = scaled(1600)


@pytest.fixture(scope="module", params=DIMENSION_GRIDS)
def complete_grid(request):
    dims = request.param
    workload = airbnb_workload(RAW_ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, dims,
                              executor_values=EXECUTOR_VALUES)
    record(f"fig14_airbnb_complete_{dims}dims", render_sweep(
        f"Fig 14: airbnb complete, executors vs time ({dims} dims)",
        "executors", EXECUTOR_VALUES, results))
    return dims, results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = airbnb_workload(RAW_ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE, 4,
                              executor_values=EXECUTOR_VALUES)
    record("fig14_airbnb_incomplete_4dims", render_sweep(
        "Fig 14: airbnb incomplete, executors vs time (4 dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


def test_specialized_beat_reference(complete_grid):
    _, results = complete_grid
    assert_reference_is_slowest_overall(results, tolerance=1.1)


def test_distributed_complete_flat_on_small_data(complete_grid):
    _, results = complete_grid
    times = [c.simulated_time_s
             for c in results[Algorithm.DISTRIBUTED_COMPLETE]]
    assert max(times) < 4 * min(times)


def test_incomplete_beats_reference(incomplete_grid):
    assert_reference_is_slowest_overall(incomplete_grid, tolerance=1.1)


def test_benchmark_representative(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, airbnb_workload(RAW_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, 4, 5)
