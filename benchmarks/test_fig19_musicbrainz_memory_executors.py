"""Figure 19: number of executors vs memory consumption for the complex
MusicBrainz queries.

Paper shape: memory grows with the executor count and stays comparable
across the algorithms.
"""

import pytest

from helpers import (assert_memory_comparable, bench_representative,
                     record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, executors_sweep,
                         format_memory_table)
from repro.core.algorithms import Algorithm
from repro.datasets import musicbrainz_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSIONS = 6
RECORDINGS = scaled(700)


@pytest.fixture(scope="module")
def results():
    workload = musicbrainz_workload(RECORDINGS)
    sweep = executors_sweep(workload, ALGORITHMS_COMPLETE, DIMENSIONS,
                            executor_values=EXECUTOR_VALUES)
    record("fig19_musicbrainz_memory_executors", format_memory_table(
        f"Fig 19: musicbrainz, executors vs memory "
        f"({RECORDINGS} recordings, {DIMENSIONS} dims)",
        "executors", EXECUTOR_VALUES, sweep))
    return sweep


def test_memory_grows_with_executors(results):
    for cells in results.values():
        memory = [c.peak_memory_mb for c in cells if not c.timed_out]
        assert memory[-1] > memory[0]


def test_memory_comparable(results):
    assert_memory_comparable(results)


def test_benchmark_memory_run(benchmark, results):
    bench_representative(benchmark, musicbrainz_workload(RECORDINGS),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 10)
