"""Figure 15: number of executors vs execution time on store_sales
(5M tuples in the paper, scaled here), one grid per dimension count.

Paper shape: on this larger dataset additional executors still help the
distributed complete algorithm (in contrast to the small Airbnb data of
Figure 14); the reference runs into timeouts on the incomplete variant
and is otherwise the slowest.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSION_GRIDS = (4, 6)
ROWS = scaled(4000)
SIMULATED_TIMEOUT_S = 1.5


@pytest.fixture(scope="module", params=DIMENSION_GRIDS)
def complete_grid(request):
    dims = request.param
    workload = store_sales_workload(ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, dims,
                              executor_values=EXECUTOR_VALUES)
    record(f"fig15_store_sales_complete_{dims}dims", render_sweep(
        f"Fig 15: store_sales complete, executors vs time "
        f"({ROWS} tuples, {dims} dims)",
        "executors", EXECUTOR_VALUES, results))
    return dims, results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = store_sales_workload(ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE, 6,
                              executor_values=EXECUTOR_VALUES,
                              simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record("fig15_store_sales_incomplete_6dims", render_sweep(
        f"Fig 15: store_sales incomplete, executors vs time "
        f"({ROWS} tuples, 6 dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


def test_specialized_beat_reference(complete_grid):
    _, results = complete_grid
    assert_reference_is_slowest_overall(results, tolerance=1.05)


def test_executors_help_distributed_complete(complete_grid):
    dims, results = complete_grid
    cells = results[Algorithm.DISTRIBUTED_COMPLETE]
    if dims >= 6:
        assert cells[-1].simulated_time_s < cells[0].simulated_time_s


def test_incomplete_no_specialized_timeouts(incomplete_grid):
    assert_no_specialized_timeouts(incomplete_grid)


def test_benchmark_representative(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, store_sales_workload(ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, 6, 10)
