"""Figure 10: number of input tuples vs peak memory consumption on
store_sales (6 dimensions; one grid per executor count 3/5/10).

Paper shape: memory grows with the number of tuples; the distributed
complete algorithm (whose BNL window adds residency) is the heaviest,
but all algorithms stay within a comparable band.
"""

import pytest

from helpers import (assert_memory_comparable, bench_representative,
                     record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, format_memory_table,
                         tuples_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

SIZES = [scaled(1000), scaled(2000), scaled(4000)]
DIMENSIONS = 6
EXECUTOR_GRIDS = (3, 5, 10)


@pytest.fixture(scope="module", params=EXECUTOR_GRIDS)
def grid(request):
    executors = request.param
    results = tuples_sweep(
        lambda n: store_sales_workload(n), SIZES, ALGORITHMS_COMPLETE,
        DIMENSIONS, executors)
    record(f"fig10_memory_tuples_{executors}executors",
           format_memory_table(
               f"Fig 10: store_sales complete, tuples vs memory "
               f"({executors} executors)", "tuples", SIZES, results))
    return executors, results


def test_memory_grows_with_tuples(grid):
    _, results = grid
    cells = results[Algorithm.DISTRIBUTED_COMPLETE]
    assert cells[-1].peak_memory_mb > cells[0].peak_memory_mb


def test_memory_comparable(grid):
    _, results = grid
    assert_memory_comparable(results)


def test_benchmark_memory_run(benchmark, grid):
    bench_representative(benchmark, store_sales_workload(SIZES[-1]),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 3)
