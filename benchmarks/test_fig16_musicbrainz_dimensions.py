"""Figure 16 / Appendix E: number of dimensions vs execution time for
the complex MusicBrainz queries (joins + aggregates below the skyline).

Paper shape: results mirror the simple queries -- the reference (the
unwieldy Listing 13 rewrite, which executes the join/aggregate pipeline
twice and anti-joins the results) is almost always slowest; only the
very easiest cases are close.
"""

import pytest

from helpers import (assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import musicbrainz_workload

DIMS = list(range(1, 7))
EXECUTOR_GRIDS = (1, 3, 10)
RECORDINGS = scaled(700)


@pytest.fixture(scope="module", params=EXECUTOR_GRIDS)
def complete_grid(request):
    executors = request.param
    workload = musicbrainz_workload(RECORDINGS)
    results = dimensions_sweep(workload, ALGORITHMS_COMPLETE, executors,
                               dimension_values=DIMS)
    record(f"fig16_musicbrainz_complete_{executors}executors",
           render_sweep(
               f"Fig 16: musicbrainz complex queries, dims vs time "
               f"({RECORDINGS} recordings, {executors} executors)",
               "dimensions", DIMS, results))
    return results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = musicbrainz_workload(RECORDINGS, incomplete=True)
    results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, 3,
                               dimension_values=DIMS)
    record("fig16_musicbrainz_incomplete_3executors", render_sweep(
        f"Fig 16: musicbrainz incomplete complex queries, dims vs time "
        f"({RECORDINGS} recordings, 3 executors)",
        "dimensions", DIMS, results))
    return results


def test_reference_slowest_overall(complete_grid):
    assert_reference_is_slowest_overall(complete_grid, tolerance=1.1)


def test_all_algorithms_agree_on_result_size(complete_grid):
    for i in range(len(DIMS)):
        sizes = {cells[i].result_rows
                 for cells in complete_grid.values()
                 if not cells[i].timed_out}
        assert len(sizes) == 1


def test_incomplete_complex_queries_run(incomplete_grid):
    for cells in incomplete_grid.values():
        assert all(not c.timed_out for c in cells)


def test_benchmark_complex_skyline(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, musicbrainz_workload(RECORDINGS),
                         Algorithm.DISTRIBUTED_COMPLETE, 6, 3)
