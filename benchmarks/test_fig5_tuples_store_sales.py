"""Figure 5 / Tables 7-8: number of input tuples vs execution time on
store_sales (6 dimensions, 3 executors).

Paper shape: every algorithm grows with the input size; the reference
grows fastest and times out at the largest size (10^7 tuples -> here the
largest scaled size under a simulated-time budget), while the
distributed complete algorithm stays cheapest throughout.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         render_sweep, tuples_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

SIZES = [scaled(1000), scaled(2000), scaled(5000), scaled(10000)]
DIMENSIONS = 6
EXECUTORS = 3
#: Simulated-time budget inducing the paper's timeout at the top size.
SIMULATED_TIMEOUT_S = 1.2


@pytest.fixture(scope="module")
def complete_results():
    results = tuples_sweep(
        lambda n: store_sales_workload(n), SIZES, ALGORITHMS_COMPLETE,
        DIMENSIONS, EXECUTORS, simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record("fig5_tables7_store_sales_complete", render_sweep(
        f"Fig 5 left / Table 7: store_sales complete "
        f"({DIMENSIONS} dims, {EXECUTORS} executors)",
        "tuples", SIZES, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    results = tuples_sweep(
        lambda n: store_sales_workload(n, incomplete=True), SIZES,
        ALGORITHMS_INCOMPLETE, DIMENSIONS, EXECUTORS,
        simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record("fig5_tables8_store_sales_incomplete", render_sweep(
        f"Fig 5 right / Table 8: store_sales incomplete "
        f"({DIMENSIONS} dims, {EXECUTORS} executors)",
        "tuples", SIZES, results))
    return results


def test_specialized_beat_reference(complete_results):
    assert_reference_is_slowest_overall(complete_results)
    assert_no_specialized_timeouts(complete_results)


def test_reference_times_out_at_largest_size(complete_results):
    assert complete_results[Algorithm.REFERENCE][-1].timed_out


def test_distributed_complete_survives_largest_size(complete_results):
    assert not complete_results[
        Algorithm.DISTRIBUTED_COMPLETE][-1].timed_out


def test_time_grows_with_size(complete_results):
    for cells in complete_results.values():
        ok = [c.simulated_time_s for c in cells if not c.timed_out]
        assert ok == sorted(ok) or ok[-1] > ok[0]


def test_incomplete_specialized_beats_reference(incomplete_results):
    assert_reference_is_slowest_overall(incomplete_results,
                                        tolerance=1.15)


def test_benchmark_distributed_complete_largest(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, store_sales_workload(SIZES[-1]),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS,
                         EXECUTORS)
