"""Figure 8: number of executors vs peak memory consumption on the
Inside Airbnb dataset (6 dimensions).

Paper shape: memory grows with the executor count (every executor loads
the full runtime environment) and is comparable across all four
algorithms.
"""

import pytest

from helpers import (assert_memory_comparable, bench_representative,
                     record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, format_memory_table)
from repro.core.algorithms import Algorithm
from repro.datasets import airbnb_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSIONS = 6
RAW_ROWS = scaled(2500)


@pytest.fixture(scope="module")
def complete_results():
    workload = airbnb_workload(RAW_ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig8_memory_airbnb_complete", format_memory_table(
        f"Fig 8 left: airbnb complete, executors vs memory "
        f"({workload.num_rows} tuples)", "executors", EXECUTOR_VALUES,
        results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    workload = airbnb_workload(RAW_ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE,
                              DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig8_memory_airbnb_incomplete", format_memory_table(
        f"Fig 8 right: airbnb incomplete, executors vs memory "
        f"({workload.num_rows} tuples)", "executors", EXECUTOR_VALUES,
        results))
    return results


def test_memory_grows_with_executors(complete_results):
    for cells in complete_results.values():
        memory = [c.peak_memory_mb for c in cells]
        assert memory[-1] > memory[0]


def test_memory_comparable_across_algorithms(complete_results):
    assert_memory_comparable(complete_results)


def test_incomplete_memory_grows(incomplete_results):
    cells = incomplete_results[Algorithm.DISTRIBUTED_INCOMPLETE]
    assert cells[-1].peak_memory_mb > cells[0].peak_memory_mb


def test_benchmark_memory_run(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, airbnb_workload(RAW_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 5)
