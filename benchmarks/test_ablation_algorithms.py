"""Ablation study (beyond the paper's figures): local-node algorithm
choice (BNL vs SFS) and data distribution (independent / correlated /
anti-correlated).

The paper defers sorting-based algorithms (SFS et al.) to future work
(Section 7); this bench quantifies what that future work would buy on
the canonical skyline workload distributions.  Anti-correlated data --
the hard case with large skylines -- is where presorting pays the most,
because the SFS window never shrinks and only one dominance direction
is ever tested.
"""

import pytest

from helpers import record, scaled
from repro.bench.reporting import _render_rows
from repro.datasets import (anticorrelated_rows, correlated_rows,
                            independent_rows)
from repro.datasets.workload import Workload
from repro.engine.types import DOUBLE, INTEGER

ROWS = scaled(3000)
DIMENSIONS = 4
EXECUTORS = 4

DISTRIBUTIONS = {
    "independent": independent_rows,
    "correlated": correlated_rows,
    "anticorrelated": anticorrelated_rows,
}


def make_workload(distribution: str) -> Workload:
    generator = DISTRIBUTIONS[distribution]
    raw = generator(ROWS, DIMENSIONS, seed=17)
    rows = [(i,) + tuple(values) for i, values in enumerate(raw)]
    columns = [("id", INTEGER, False)] + [
        (f"d{i}", DOUBLE, False) for i in range(DIMENSIONS)]
    return Workload(
        table_name=f"ablation_{distribution}",
        columns=columns, rows=rows,
        skyline_dimensions=[(f"d{i}", "min")
                            for i in range(DIMENSIONS)])


def run_strategy(workload: Workload, strategy: str):
    """Run the integrated skyline under a forced local/global strategy."""
    from repro.api.session import SkylineSession
    session = SkylineSession(num_executors=EXECUTORS,
                             skyline_algorithm=strategy)
    workload.register(session)
    return session.sql(workload.skyline_sql(DIMENSIONS)).run()


@pytest.fixture(scope="module")
def ablation_results():
    table: dict[str, dict[str, float]] = {}
    sizes: dict[str, int] = {}
    for name in DISTRIBUTIONS:
        workload = make_workload(name)
        per_strategy = {}
        for strategy in ("distributed-complete", "sfs",
                         "non-distributed-complete"):
            result = run_strategy(workload, strategy)
            per_strategy[strategy] = result.simulated_time_s
            sizes[name] = len(result.rows)
        table[name] = per_strategy
    rows = [(strategy,
             [f"{table[d][strategy]:.3f}" for d in DISTRIBUTIONS])
            for strategy in ("distributed-complete", "sfs",
                             "non-distributed-complete")]
    rows.append(("skyline size",
                 [str(sizes[d]) for d in DISTRIBUTIONS]))
    record("ablation_bnl_vs_sfs", _render_rows(
        f"Ablation: BNL vs SFS local nodes, {ROWS} tuples x "
        f"{DIMENSIONS} dims, {EXECUTORS} executors -- time [s]",
        "strategy", list(DISTRIBUTIONS), rows))
    return table, sizes


def test_correlated_has_smallest_skyline(ablation_results):
    _, sizes = ablation_results
    assert sizes["correlated"] < sizes["independent"]
    assert sizes["independent"] < sizes["anticorrelated"]


def test_sfs_and_bnl_agree(ablation_results):
    # Correctness is covered by tests; here we just require both ran.
    table, _ = ablation_results
    assert all("sfs" in row for row in table.values())


def test_distribution_hardness_ordering(ablation_results):
    table, _ = ablation_results
    bnl = {d: table[d]["distributed-complete"] for d in table}
    assert bnl["anticorrelated"] > bnl["correlated"]


def test_benchmark_sfs_anticorrelated(benchmark, ablation_results):
    workload = make_workload("anticorrelated")

    def run():
        return run_strategy(workload, "sfs")

    benchmark.pedantic(run, rounds=1, iterations=1)
