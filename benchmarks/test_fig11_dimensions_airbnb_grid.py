"""Figure 11: number of dimensions vs execution time on Inside Airbnb,
one grid per executor count (2, 3, 5, 10); complete and incomplete.

Paper shape: the same picture as Figure 3 at every executor count --
specialized algorithms below the reference, cost growing with the
dimension count.
"""

import pytest

from helpers import (assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         dimensions_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import airbnb_workload

DIMS = list(range(1, 7))
EXECUTOR_GRIDS = (2, 3, 5, 10)
RAW_ROWS = scaled(1600)


@pytest.fixture(scope="module", params=EXECUTOR_GRIDS)
def complete_grid(request):
    executors = request.param
    workload = airbnb_workload(RAW_ROWS)
    results = dimensions_sweep(workload, ALGORITHMS_COMPLETE, executors,
                               dimension_values=DIMS)
    record(f"fig11_airbnb_complete_{executors}executors", render_sweep(
        f"Fig 11: airbnb complete, dims vs time ({executors} executors)",
        "dimensions", DIMS, results))
    return results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = airbnb_workload(RAW_ROWS, incomplete=True)
    results = dimensions_sweep(workload, ALGORITHMS_INCOMPLETE, 3,
                               dimension_values=DIMS)
    record("fig11_airbnb_incomplete_3executors", render_sweep(
        "Fig 11: airbnb incomplete, dims vs time (3 executors)",
        "dimensions", DIMS, results))
    return results


def test_specialized_beat_reference_at_every_executor_count(
        complete_grid):
    assert_reference_is_slowest_overall(complete_grid, tolerance=1.1)


def test_reference_grows_with_dimensions(complete_grid):
    cells = complete_grid[Algorithm.REFERENCE]
    assert cells[-1].simulated_time_s > cells[0].simulated_time_s


def test_incomplete_beats_reference(incomplete_grid):
    assert_reference_is_slowest_overall(incomplete_grid, tolerance=1.1)


def test_benchmark_representative(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, airbnb_workload(RAW_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, 6, 3)
