"""Mixed-workload ablation: adaptive planning vs fixed strategies.

The statistics-driven adaptive planner (Section 7's cost-based
selection, extended to partitioning and parallelism) is run over a mix
of workload classes with opposing needs, against every fixed
(algorithm x partitioning) combination.  Asserts the headline claims:
adaptive selection is never slower than the worst fixed strategy,
matches the best fixed strategy on the whole mix, and strictly beats
the best fixed strategy on at least one workload class.
"""

from helpers import SCALE, record

from repro.bench.adaptive import render_report, run_adaptive_bench


def test_adaptive_beats_fixed_strategies():
    report = run_adaptive_bench(scale=SCALE)
    text = render_report(report)
    record("ablation_adaptive_planning", text)

    adaptive_total = report["adaptive_total"]
    fixed_totals = report["fixed_totals"]
    best = report["best_fixed"]
    worst = report["worst_fixed"]

    # Never slower than the worst fixed strategy -- by a wide margin.
    assert adaptive_total <= fixed_totals[worst], (
        f"adaptive ({adaptive_total:.3f}s) slower than the worst fixed "
        f"strategy {worst} ({fixed_totals[worst]:.3f}s)")

    # Matches or beats every fixed strategy on the whole mix (small
    # tolerance for measurement noise in the task timings).
    for label, total in fixed_totals.items():
        assert adaptive_total <= total * 1.10, (
            f"adaptive ({adaptive_total:.3f}s) lost to fixed {label} "
            f"({total:.3f}s)")

    # Strictly beats the best overall fixed strategy on at least one
    # workload class: no single fixed choice is good everywhere.
    best_times = report["fixed"][best]
    wins = [name for name in report["classes"]
            if report["adaptive"][name] < best_times[name]]
    assert wins, (
        f"adaptive never beat the best fixed strategy {best} on any "
        f"class: adaptive={report['adaptive']}, fixed={best_times}")
