"""Figure 18: number of executors vs execution time for the complex
MusicBrainz queries, one grid per dimension count.

Paper shape: there is an executor sweet spot (around 3 in the paper)
beyond which extra distribution/synchronisation stops paying off; the
reference stays above the specialized algorithms except in the very
easiest cells.
"""

import pytest

from helpers import (assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import musicbrainz_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSION_GRIDS = (3, 6)
RECORDINGS = scaled(700)


@pytest.fixture(scope="module", params=DIMENSION_GRIDS)
def complete_grid(request):
    dims = request.param
    workload = musicbrainz_workload(RECORDINGS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, dims,
                              executor_values=EXECUTOR_VALUES)
    record(f"fig18_musicbrainz_complete_{dims}dims", render_sweep(
        f"Fig 18: musicbrainz, executors vs time ({dims} dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


@pytest.fixture(scope="module")
def incomplete_grid():
    workload = musicbrainz_workload(RECORDINGS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE, 6,
                              executor_values=EXECUTOR_VALUES)
    record("fig18_musicbrainz_incomplete_6dims", render_sweep(
        "Fig 18: musicbrainz incomplete, executors vs time (6 dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


def test_reference_slowest_overall(complete_grid):
    assert_reference_is_slowest_overall(complete_grid, tolerance=1.15)


def test_no_timeouts_for_specialized(complete_grid):
    for algorithm, cells in complete_grid.items():
        if algorithm is Algorithm.REFERENCE:
            continue
        assert all(not c.timed_out for c in cells)


def test_incomplete_runs(incomplete_grid):
    assert_reference_is_slowest_overall(incomplete_grid, tolerance=1.15)


def test_benchmark_representative(benchmark, complete_grid, incomplete_grid):
    bench_representative(benchmark, musicbrainz_workload(RECORDINGS),
                         Algorithm.DISTRIBUTED_COMPLETE, 6, 3)
