"""Figure 9: number of executors vs peak memory consumption on
store_sales (6 dimensions, 5M tuples in the paper, scaled here).

Paper shape: memory rises with the executor count for all algorithms;
the distributed complete algorithm's window makes it the (slightly)
heaviest consumer.
"""

import pytest

from helpers import (assert_memory_comparable, bench_representative,
                     record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, format_memory_table)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSIONS = 6
ROWS = scaled(4000)


@pytest.fixture(scope="module")
def complete_results():
    workload = store_sales_workload(ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig9_memory_store_sales_complete", format_memory_table(
        f"Fig 9 left: store_sales complete, executors vs memory "
        f"({ROWS} tuples)", "executors", EXECUTOR_VALUES, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    workload = store_sales_workload(ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE,
                              DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig9_memory_store_sales_incomplete", format_memory_table(
        f"Fig 9 right: store_sales incomplete, executors vs memory "
        f"({ROWS} tuples)", "executors", EXECUTOR_VALUES, results))
    return results


def test_memory_monotone_in_executors(complete_results):
    for cells in complete_results.values():
        memory = [c.peak_memory_mb for c in cells]
        assert all(b >= a for a, b in zip(memory, memory[1:]))


def test_memory_comparable(complete_results):
    assert_memory_comparable(complete_results)


def test_incomplete_variant_recorded(incomplete_results):
    assert all(len(v) == len(EXECUTOR_VALUES)
               for v in incomplete_results.values())


def test_benchmark_memory_run(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, store_sales_workload(ROWS),
                         Algorithm.DISTRIBUTED_INCOMPLETE, DIMENSIONS, 5)
