"""Figure 6 / Tables 9-10: number of executors vs execution time on the
Inside Airbnb dataset (6 dimensions).

Paper shape: the dataset is small, so extra executors barely help the
specialized algorithms (Section 6.4's "sweet spot" discussion); the
reference stays the slowest at every executor count (Table 9: the
specialized algorithms run at 29-54% of the reference).
"""

import pytest

from helpers import (assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, ALGORITHMS_INCOMPLETE,
                         executors_sweep, render_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import airbnb_workload

EXECUTOR_VALUES = [1, 2, 3, 5, 10]
DIMENSIONS = 6
RAW_ROWS = scaled(2500)


@pytest.fixture(scope="module")
def complete_results():
    workload = airbnb_workload(RAW_ROWS)
    results = executors_sweep(workload, ALGORITHMS_COMPLETE, DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig6_tables9_airbnb_complete", render_sweep(
        f"Fig 6 left / Table 9: airbnb complete "
        f"({workload.num_rows} tuples, {DIMENSIONS} dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


@pytest.fixture(scope="module")
def incomplete_results():
    workload = airbnb_workload(RAW_ROWS, incomplete=True)
    results = executors_sweep(workload, ALGORITHMS_INCOMPLETE,
                              DIMENSIONS,
                              executor_values=EXECUTOR_VALUES)
    record("fig6_tables10_airbnb_incomplete", render_sweep(
        f"Fig 6 right / Table 10: airbnb incomplete "
        f"({workload.num_rows} tuples, {DIMENSIONS} dims)",
        "executors", EXECUTOR_VALUES, results))
    return results


def test_reference_never_wins(complete_results):
    for i in range(len(EXECUTOR_VALUES)):
        reference = complete_results[Algorithm.REFERENCE][i]
        best = min(cells[i].simulated_time_s
                   for a, cells in complete_results.items()
                   if a is not Algorithm.REFERENCE)
        assert best < reference.simulated_time_s


def test_specialized_beat_reference_overall(complete_results):
    assert_reference_is_slowest_overall(complete_results)


def test_small_dataset_barely_profits_from_executors(complete_results):
    """Section 6.4: for this small dataset the distributed complete
    algorithm hardly profits from more executors."""
    cells = complete_results[Algorithm.DISTRIBUTED_COMPLETE]
    times = [c.simulated_time_s for c in cells]
    assert min(times) > 0.3 * max(times)


def test_incomplete_beats_reference(incomplete_results):
    assert_reference_is_slowest_overall(incomplete_results)


def test_benchmark_ten_executors(benchmark, complete_results, incomplete_results):
    bench_representative(benchmark, airbnb_workload(RAW_ROWS),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 10)
