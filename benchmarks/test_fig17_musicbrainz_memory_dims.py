"""Figure 17: number of dimensions vs memory consumption for the
complex MusicBrainz queries.

Paper shape: memory is essentially flat in the dimension count and
comparable across algorithms (with occasional reference peaks).
"""

import pytest

from helpers import (assert_memory_comparable, bench_representative,
                     record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, dimensions_sweep,
                         format_memory_table)
from repro.core.algorithms import Algorithm
from repro.datasets import musicbrainz_workload

DIMS = list(range(1, 7))
EXECUTORS = 3
RECORDINGS = scaled(700)


@pytest.fixture(scope="module")
def results():
    workload = musicbrainz_workload(RECORDINGS)
    sweep = dimensions_sweep(workload, ALGORITHMS_COMPLETE, EXECUTORS,
                             dimension_values=DIMS)
    record("fig17_musicbrainz_memory_dims", format_memory_table(
        f"Fig 17: musicbrainz, dims vs memory "
        f"({RECORDINGS} recordings, {EXECUTORS} executors)",
        "dimensions", DIMS, sweep))
    return sweep


def test_memory_flat_in_dimensions(results):
    for cells in results.values():
        memory = [c.peak_memory_mb for c in cells if not c.timed_out]
        assert max(memory) < 1.5 * min(memory)


def test_memory_comparable_across_algorithms(results):
    assert_memory_comparable(results)


def test_benchmark_memory_run(benchmark, results):
    bench_representative(benchmark, musicbrainz_workload(RECORDINGS),
                         Algorithm.NON_DISTRIBUTED_COMPLETE, 6, EXECUTORS)
