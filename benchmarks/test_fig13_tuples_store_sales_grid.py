"""Figure 13: number of input tuples vs execution time on store_sales,
one grid per executor count (2, 3, 5, 10).

Paper shape: only with 5-10 executors does the reference cope with the
largest dataset; the distributed complete algorithm performs best in
all complete-data grids.
"""

import pytest

from helpers import (assert_no_specialized_timeouts,
                     assert_reference_is_slowest_overall,
                     bench_representative, record, scaled)
from repro.bench import (ALGORITHMS_COMPLETE, render_sweep, tuples_sweep)
from repro.core.algorithms import Algorithm
from repro.datasets import store_sales_workload

SIZES = [scaled(1000), scaled(2000), scaled(5000)]
DIMENSIONS = 6
EXECUTOR_GRIDS = (2, 10)
SIMULATED_TIMEOUT_S = 0.8


@pytest.fixture(scope="module", params=EXECUTOR_GRIDS)
def grid(request):
    executors = request.param
    results = tuples_sweep(
        lambda n: store_sales_workload(n), SIZES, ALGORITHMS_COMPLETE,
        DIMENSIONS, executors, simulated_timeout_s=SIMULATED_TIMEOUT_S)
    record(f"fig13_store_sales_tuples_{executors}executors",
           render_sweep(
               f"Fig 13: store_sales complete, tuples vs time "
               f"({executors} executors)", "tuples", SIZES, results))
    return executors, results


def test_no_specialized_timeouts(grid):
    _, results = grid
    assert_no_specialized_timeouts(results)


def test_specialized_beat_reference(grid):
    _, results = grid
    assert_reference_is_slowest_overall(results, tolerance=1.05)


def test_more_executors_help_reference_cope(grid):
    executors, results = grid
    reference = results[Algorithm.REFERENCE]
    timeouts = sum(1 for c in reference if c.timed_out)
    if executors >= 10:
        assert timeouts <= 1
    # With few executors the largest size is at risk -- but never the
    # other way around (checked via assert_no_specialized_timeouts).


def test_benchmark_representative(benchmark, grid):
    bench_representative(benchmark, store_sales_workload(SIZES[-1]),
                         Algorithm.DISTRIBUTED_COMPLETE, DIMENSIONS, 10)
