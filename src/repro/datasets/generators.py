"""Classic synthetic skyline workload distributions.

The skyline literature (starting with Börzsönyi et al. [5]) evaluates on
three canonical distributions; they are used here by the ablation
benchmarks and the property-based tests:

* *independent*      -- dimensions drawn independently and uniformly;
* *correlated*       -- good values cluster together (small skylines);
* *anti-correlated*  -- good values trade off (large skylines; the hard
  case for window-based algorithms).
"""

from __future__ import annotations

import random
from typing import Sequence


def independent_rows(n: int, dimensions: int, seed: int = 0,
                     null_probability: float = 0.0) -> list[tuple]:
    """Uniform, independent values in [0, 1) per dimension."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        row = tuple(
            None if null_probability and rng.random() < null_probability
            else rng.random()
            for _ in range(dimensions))
        rows.append(row)
    return rows


def correlated_rows(n: int, dimensions: int, seed: int = 0,
                    spread: float = 0.15) -> list[tuple]:
    """Values correlated along the diagonal: one latent quality factor.

    Each row draws a base quality ``q`` and per-dimension jitter; rows
    with a good ``q`` are good everywhere, so skylines stay tiny.
    """
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        base = rng.random()
        row = tuple(
            min(1.0, max(0.0, base + rng.uniform(-spread, spread)))
            for _ in range(dimensions))
        rows.append(row)
    return rows


def anticorrelated_rows(n: int, dimensions: int, seed: int = 0,
                        spread: float = 0.1) -> list[tuple]:
    """Values on an anti-diagonal band: being good in one dimension costs
    in the others, producing large skylines."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        # Sample a point near the hyperplane sum(x) = dimensions / 2.
        raw = [rng.random() for _ in range(dimensions)]
        total = sum(raw)
        target = dimensions / 2.0
        scale = target / total if total else 1.0
        row = tuple(
            min(1.0, max(0.0,
                         value * scale + rng.uniform(-spread, spread)))
            for value in raw)
        rows.append(row)
    return rows


def with_ids(rows: Sequence[tuple]) -> list[tuple]:
    """Prefix every row with a 0-based integer id column."""
    return [(i,) + tuple(row) for i, row in enumerate(rows)]
