"""Synthetic MusicBrainz-like dataset and the Appendix E complex queries.

The paper's "complex query" evaluation joins a recordings subset of the
MusicBrainz database with per-recording track aggregates and rating
metadata (Listings 11-14).  This module generates the three tables
involved (``recording_complete`` / ``recording_incomplete``,
``recording_meta``, ``track``) with the paper's proportions (about one
third of recordings carry ratings) and builds the exact query texts:
base query, integrated skyline query, and the unwieldy plain-SQL
reference rewrite of Listing 13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.types import INTEGER

#: (column, kind) per Table 13, in the paper's order.
MUSICBRAINZ_SKYLINE_DIMENSIONS: list[tuple[str, str]] = [
    ("rating", "max"),
    ("rating_count", "max"),
    ("length", "min"),
    ("video", "max"),
    ("num_tracks", "max"),
    ("min_position", "min"),
]


def generate_musicbrainz(num_recordings: int, seed: int = 23) -> dict:
    """Generate the MusicBrainz-like tables.

    Returns ``{table_name: (columns, rows)}`` with tables
    ``recording_complete``, ``recording_incomplete``, ``recording_meta``
    and ``track``.  The complete and incomplete recordings share ids so
    both query variants run against the same universe.
    """
    rng = random.Random(seed)
    recording_complete: list[tuple] = []
    recording_incomplete: list[tuple] = []
    recording_meta: list[tuple] = []
    track: list[tuple] = []
    for recording_id in range(1, num_recordings + 1):
        length = int(rng.gauss(210_000, 60_000))
        length = max(10_000, length)
        video = 1 if rng.random() < 0.06 else 0
        recording_complete.append((recording_id, length, video))
        recording_incomplete.append((
            recording_id,
            None if rng.random() < 0.12 else length,
            None if rng.random() < 0.05 else video,
        ))
        # About a third of recordings have ratings (paper: ~500k of 1.5M).
        if rng.random() < 1.0 / 3.0:
            rating_count = max(1, int(rng.paretovariate(1.1)))
            rating = round(min(100.0, max(
                0.0, rng.gauss(70.0, 18.0))), 1)
            recording_meta.append((recording_id, rating, rating_count))
        else:
            recording_meta.append((recording_id, None, None))
        # Every recording appears on at least one track (so the COMPLETE
        # assertion of the Listing 14 query is actually true, as in the
        # paper's curated subset); popular ones appear on compilations.
        appearances = rng.choices((1, 2, 3, 5, 8),
                                  weights=(60, 20, 10, 7, 3))[0]
        for _ in range(appearances):
            track.append((recording_id, rng.randint(1, 20)))
    return {
        "recording_complete": (
            [("id", INTEGER, False), ("length", INTEGER, True),
             ("video", INTEGER, False)],
            recording_complete),
        "recording_incomplete": (
            [("id", INTEGER, False), ("length", INTEGER, True),
             ("video", INTEGER, True)],
            recording_incomplete),
        "recording_meta": (
            [("id", INTEGER, False), ("rating", INTEGER, True),
             ("rating_count", INTEGER, True)],
            recording_meta),
        "track": (
            [("recording", INTEGER, False), ("position", INTEGER, False)],
            track),
    }


def register_musicbrainz(session, num_recordings: int,
                         seed: int = 23) -> None:
    """Create all MusicBrainz tables in the session's catalog."""
    for name, (columns, rows) in generate_musicbrainz(
            num_recordings, seed).items():
        session.create_table(name, columns, rows)


def base_query(complete: bool = True) -> str:
    """The Appendix E base query (Listing 11 complete / Listing 12 not)."""
    if complete:
        return """
            SELECT
                r.id,
                ifnull(r.length, 0) AS length,
                r.video,
                ifnull(rm.rating, 0) AS rating,
                ifnull(rm.rating_count, 0) AS rating_count,
                recording_tracks.num_tracks,
                recording_tracks.min_position
            FROM recording_complete r LEFT OUTER JOIN (
                SELECT
                    ri.id AS id,
                    count(ti.recording) AS num_tracks,
                    min(ti.position) AS min_position
                FROM recording_complete ri
                JOIN track ti ON (ti.recording = ri.id)
                GROUP BY ri.id
            ) recording_tracks USING (id)
            JOIN recording_meta rm USING (id)
        """
    return """
        SELECT * FROM recording_incomplete r
        LEFT OUTER JOIN (
            SELECT
                ri.id AS id,
                count(ti.recording) AS num_tracks,
                min(ti.position) AS min_position
            FROM recording_incomplete ri
            JOIN track ti ON (ti.recording = ri.id)
            GROUP BY ri.id
        ) recording_tracks USING (id)
        JOIN recording_meta rm USING (id)
    """


def skyline_query(num_dimensions: int, complete: bool = True) -> str:
    """The integrated complex skyline query (Listing 14 style)."""
    dims = MUSICBRAINZ_SKYLINE_DIMENSIONS[:num_dimensions]
    dims_sql = ", ".join(f"{name} {kind.upper()}" for name, kind in dims)
    keyword = "COMPLETE " if complete else ""
    return (f"SELECT * FROM ({base_query(complete)}) "
            f"SKYLINE OF {keyword}{dims_sql}")


def reference_query(num_dimensions: int, complete: bool = True) -> str:
    """The plain-SQL rewrite of the complex skyline (Listing 13 style)."""
    dims = MUSICBRAINZ_SKYLINE_DIMENSIONS[:num_dimensions]
    weak: list[str] = []
    strict: list[str] = []
    for name, kind in dims:
        if kind == "min":
            weak.append(f"i.{name} <= o.{name}")
            strict.append(f"i.{name} < o.{name}")
        else:
            weak.append(f"i.{name} >= o.{name}")
            strict.append(f"i.{name} > o.{name}")
    inner = base_query(complete)
    return (
        f"SELECT * FROM (SELECT * FROM ({inner})) AS o WHERE NOT EXISTS("
        f"SELECT * FROM (SELECT * FROM ({inner})) AS i WHERE "
        + " AND ".join(weak)
        + " AND (" + " OR ".join(strict) + "))")


@dataclass
class MusicBrainzWorkload:
    """Harness adapter: same surface as :class:`Workload` for complex
    queries (the x-axis "number of input tuples" is the recording count,
    Section E.1)."""

    num_recordings: int
    seed: int = 23
    incomplete: bool = False

    @property
    def table_name(self) -> str:
        return "musicbrainz_incomplete" if self.incomplete else "musicbrainz"

    @property
    def num_rows(self) -> int:
        return self.num_recordings

    @property
    def skyline_dimensions(self) -> list[tuple[str, str]]:
        return list(MUSICBRAINZ_SKYLINE_DIMENSIONS)

    def register(self, session) -> None:
        register_musicbrainz(session, self.num_recordings, self.seed)

    def skyline_sql(self, num_dimensions: int,
                    complete_keyword: bool = False) -> str:
        return skyline_query(num_dimensions,
                             complete=not self.incomplete)

    def reference_sql(self, num_dimensions: int) -> str:
        return reference_query(num_dimensions,
                               complete=not self.incomplete)


# Convenience alias used by benchmarks.
def musicbrainz_workload(num_recordings: int, seed: int = 23,
                         incomplete: bool = False) -> MusicBrainzWorkload:
    return MusicBrainzWorkload(num_recordings, seed, incomplete)
