"""Workload descriptor shared by the dataset modules and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..api.session import SkylineSession


@dataclass
class Workload:
    """A benchmark workload: a table plus its skyline-query shape.

    ``skyline_dimensions`` lists ``(column, kind)`` pairs in the order the
    paper uses them; a query with *k* dimensions takes the first *k*
    (Section 6.2: "selecting the dimensions in the same order as they
    appear in the table").
    """

    table_name: str
    columns: list[tuple]          # (name, dtype, nullable) specs
    rows: list[tuple]
    skyline_dimensions: list[tuple[str, str]]
    select_columns: list[str] = field(default_factory=list)
    #: True when nulls may occur in skyline dimensions.
    incomplete: bool = False

    def register(self, session: "SkylineSession") -> None:
        session.create_table(self.table_name, self.columns, self.rows)

    def dimensions(self, num: int) -> list[tuple[str, str]]:
        if not 1 <= num <= len(self.skyline_dimensions):
            raise ValueError(
                f"dimension count {num} out of range 1.."
                f"{len(self.skyline_dimensions)}")
        return self.skyline_dimensions[:num]

    def skyline_sql(self, num_dimensions: int,
                    complete_keyword: bool = False) -> str:
        """The integrated skyline query (Listing 2 style)."""
        dims = ", ".join(f"{name} {kind.upper()}"
                         for name, kind in self.dimensions(num_dimensions))
        columns = ", ".join(self.select_columns or
                            [c[0] for c in self.columns])
        keyword = "COMPLETE " if complete_keyword else ""
        return (f"SELECT {columns} FROM {self.table_name} "
                f"SKYLINE OF {keyword}{dims}")

    def reference_sql(self, num_dimensions: int) -> str:
        """The plain-SQL rewrite (Listing 4 style)."""
        dims = self.dimensions(num_dimensions)
        columns = ", ".join(self.select_columns or
                            [c[0] for c in self.columns])
        weak: list[str] = []
        strict: list[str] = []
        for name, kind in dims:
            kind = kind.lower()
            if kind == "min":
                weak.append(f"i.{name} <= o.{name}")
                strict.append(f"i.{name} < o.{name}")
            elif kind == "max":
                weak.append(f"i.{name} >= o.{name}")
                strict.append(f"i.{name} > o.{name}")
            else:  # diff
                weak.append(f"i.{name} = o.{name}")
        weak_sql = " AND ".join(weak)
        strict_sql = " OR ".join(strict) if strict else "FALSE"
        return (
            f"SELECT {columns} FROM {self.table_name} AS o "
            f"WHERE NOT EXISTS("
            f"SELECT * FROM {self.table_name} AS i "
            f"WHERE {weak_sql} AND ({strict_sql}))")

    @property
    def num_rows(self) -> int:
        return len(self.rows)
