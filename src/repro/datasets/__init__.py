"""Dataset generators standing in for the paper's evaluation data.

The paper uses the Inside Airbnb subset (real-world), DSB ``store_sales``
(synthetic) and a MusicBrainz subset (complex queries).  None of these
can be downloaded in this offline reproduction, so each module generates
a synthetic dataset with the same schema, the same skyline dimensions
(Tables 1, 2 and 13 of the paper), comparable correlation structure and
comparable null patterns.
"""

from .airbnb import (AIRBNB_SKYLINE_DIMENSIONS, airbnb_workload,
                     generate_airbnb)
from .generators import (anticorrelated_rows, correlated_rows,
                         independent_rows)
from .musicbrainz import (MUSICBRAINZ_SKYLINE_DIMENSIONS,
                          MusicBrainzWorkload, generate_musicbrainz,
                          musicbrainz_workload, register_musicbrainz)
from .store_sales import (STORE_SALES_SKYLINE_DIMENSIONS,
                          generate_store_sales, store_sales_workload)
from .workload import Workload

__all__ = [
    "AIRBNB_SKYLINE_DIMENSIONS",
    "MUSICBRAINZ_SKYLINE_DIMENSIONS",
    "MusicBrainzWorkload",
    "STORE_SALES_SKYLINE_DIMENSIONS",
    "Workload",
    "musicbrainz_workload",
    "airbnb_workload",
    "anticorrelated_rows",
    "correlated_rows",
    "generate_airbnb",
    "generate_musicbrainz",
    "generate_store_sales",
    "independent_rows",
    "register_musicbrainz",
    "store_sales_workload",
]
