"""Synthetic DSB ``store_sales``-like dataset (Table 2 of the paper).

DSB [14] extends TPC-DS with more realistic value distributions; the
paper draws ~15M ``store_sales`` rows from it and uses 2 key and 6
skyline dimensions.  The generator reproduces the pricing chain of
TPC-DS (``wholesale -> list -> sales`` with markup and discount) so the
dimensions carry the same correlation structure: ``ss_list_price`` and
``ss_sales_price`` strongly correlate, the extended amounts derive from
quantity and prices.

``ss_quantity`` is a small-domain integer (1..100), so the one-
dimensional MAX skyline has many ties -- this is what makes the paper's
reference query catastrophically slow at one dimension (Table 5:
2463 s vs 54-65 s) while the integrated single-dimension rewrite stays
linear.
"""

from __future__ import annotations

import random

from ..engine.types import DOUBLE, INTEGER
from .workload import Workload

#: (column, kind) in the paper's order (Table 2).
STORE_SALES_SKYLINE_DIMENSIONS: list[tuple[str, str]] = [
    ("ss_quantity", "max"),
    ("ss_wholesale_cost", "min"),
    ("ss_list_price", "min"),
    ("ss_sales_price", "min"),
    ("ss_ext_discount_amt", "max"),
    ("ss_ext_sales_price", "min"),
]

_COLUMNS = [
    ("ss_item_sk", INTEGER, False),
    ("ss_ticket_number", INTEGER, False),
    ("ss_quantity", INTEGER, True),
    ("ss_wholesale_cost", DOUBLE, True),
    ("ss_list_price", DOUBLE, True),
    ("ss_sales_price", DOUBLE, True),
    ("ss_ext_discount_amt", DOUBLE, True),
    ("ss_ext_sales_price", DOUBLE, True),
]

_COLUMNS_COMPLETE = [(name, dtype, False) for name, dtype, _ in _COLUMNS]

#: Probability that any given skyline column of a row is null in the raw
#: data (TPC-DS/DSB leave sales columns null for returned items etc.).
_NULL_PROBABILITY = 0.04


def _one_sale(rng: random.Random, row_id: int) -> tuple:
    ss_item_sk = rng.randint(1, 18000)
    ss_ticket_number = row_id
    # Bulk purchases cap at 100 units, so the maximum carries extra mass
    # -- the tie pile-up that makes the paper's 1-dimension reference
    # query catastrophically slow (Table 5) while the integrated
    # single-dimension rewrite stays linear.
    ss_quantity = 100 if rng.random() < 0.05 else rng.randint(1, 100)
    ss_wholesale_cost = round(rng.uniform(1.0, 100.0), 2)
    markup = rng.uniform(1.0, 2.0)
    ss_list_price = round(ss_wholesale_cost * markup, 2)
    discount = rng.choice((0.0, 0.0, 0.0, 0.1, 0.2, 0.3, 0.5)) \
        * rng.random()
    ss_sales_price = round(ss_list_price * (1.0 - discount), 2)
    ss_ext_discount_amt = round(
        ss_quantity * (ss_list_price - ss_sales_price), 2)
    ss_ext_sales_price = round(ss_quantity * ss_sales_price, 2)
    return (ss_item_sk, ss_ticket_number, ss_quantity, ss_wholesale_cost,
            ss_list_price, ss_sales_price, ss_ext_discount_amt,
            ss_ext_sales_price)


def generate_store_sales(num_rows: int, seed: int = 11,
                         incomplete: bool = False) -> list[tuple]:
    """Generate sales rows; ``incomplete`` injects nulls into the six
    skyline columns (never into the two keys)."""
    rng = random.Random(seed)
    rows = []
    for row_id in range(1, num_rows + 1):
        row = _one_sale(rng, row_id)
        if incomplete:
            values = list(row)
            for offset in range(2, len(values)):
                if rng.random() < _NULL_PROBABILITY:
                    values[offset] = None
            row = tuple(values)
        rows.append(row)
    return rows


def store_sales_workload(num_rows: int, seed: int = 11,
                         incomplete: bool = False,
                         table_name: str | None = None) -> Workload:
    """The store_sales benchmark workload.

    Unlike Airbnb, the paper keeps the complete and incomplete variants
    the same size (Section 6.2): the complete variant regenerates clean
    rows rather than filtering.
    """
    if incomplete:
        name = table_name or "store_sales_incomplete"
        return Workload(
            table_name=name,
            columns=list(_COLUMNS),
            rows=generate_store_sales(num_rows, seed, incomplete=True),
            skyline_dimensions=list(STORE_SALES_SKYLINE_DIMENSIONS),
            incomplete=True)
    name = table_name or "store_sales"
    return Workload(
        table_name=name,
        columns=list(_COLUMNS_COMPLETE),
        rows=generate_store_sales(num_rows, seed, incomplete=False),
        skyline_dimensions=list(STORE_SALES_SKYLINE_DIMENSIONS),
        incomplete=False)
