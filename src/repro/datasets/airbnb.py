"""Synthetic Inside-Airbnb-like dataset (Table 1 of the paper).

The paper's real-world workload is a ~1.2M-row merge of Inside Airbnb
listings with one key and six skyline dimensions.  The generator below
reproduces the schema, the optimization directions, plausible value
ranges and correlations (price grows with capacity; bedrooms/beds track
``accommodates``; ratings are skewed high), and -- for the incomplete
variant -- a null pattern under which roughly a third of the rows carry
a null in some skyline dimension (the paper: 1,193,465 raw vs 820,698
fully complete rows, i.e. ~31% incomplete).
"""

from __future__ import annotations

import random

from ..engine.types import DOUBLE, INTEGER
from .workload import Workload

#: (column, kind) in the paper's order; a k-dimensional query uses the
#: first k entries (Table 1).
AIRBNB_SKYLINE_DIMENSIONS: list[tuple[str, str]] = [
    ("price", "min"),
    ("accommodates", "max"),
    ("bedrooms", "max"),
    ("beds", "max"),
    ("number_of_reviews", "max"),
    ("review_scores_rating", "max"),
]

_COLUMNS_COMPLETE = [
    ("id", INTEGER, False),
    ("price", DOUBLE, False),
    ("accommodates", INTEGER, False),
    ("bedrooms", INTEGER, False),
    ("beds", INTEGER, False),
    ("number_of_reviews", INTEGER, False),
    ("review_scores_rating", DOUBLE, False),
]

_COLUMNS_INCOMPLETE = [
    ("id", INTEGER, False),
    ("price", DOUBLE, True),
    ("accommodates", INTEGER, True),
    ("bedrooms", INTEGER, True),
    ("beds", INTEGER, True),
    ("number_of_reviews", INTEGER, True),
    ("review_scores_rating", DOUBLE, True),
]

#: Per-column null probabilities for the raw (incomplete) data, chosen so
#: P(at least one null among 6 dims) is approximately 31%.
_NULL_PROBABILITIES = {
    "price": 0.02,
    "accommodates": 0.01,
    "bedrooms": 0.08,
    "beds": 0.06,
    "number_of_reviews": 0.02,
    "review_scores_rating": 0.18,
}


def _one_listing(rng: random.Random, listing_id: int) -> tuple:
    accommodates = min(16, max(1, int(rng.lognormvariate(1.0, 0.6))))
    bedrooms = max(1, round(accommodates / 2 + rng.uniform(-1, 1)))
    beds = max(1, accommodates + int(rng.uniform(-1, 2)))
    base_price = 18.0 * accommodates + rng.lognormvariate(3.2, 0.55)
    price = round(base_price, 2)
    number_of_reviews = int(rng.paretovariate(1.2)) - 1
    # Ratings skew high, like real review data.
    review_scores_rating = round(min(5.0, max(
        1.0, 5.1 - rng.expovariate(2.6))), 2)
    return (listing_id, price, accommodates, bedrooms, beds,
            number_of_reviews, review_scores_rating)


def generate_airbnb(num_rows: int, seed: int = 7,
                    incomplete: bool = False) -> list[tuple]:
    """Generate listing rows; with ``incomplete`` nulls are injected."""
    rng = random.Random(seed)
    rows = []
    null_columns = list(_NULL_PROBABILITIES.items())
    for listing_id in range(1, num_rows + 1):
        row = _one_listing(rng, listing_id)
        if incomplete:
            values = list(row)
            for offset, (_, probability) in enumerate(null_columns,
                                                      start=1):
                if rng.random() < probability:
                    values[offset] = None
            row = tuple(values)
        rows.append(row)
    return rows


def airbnb_workload(num_rows: int, seed: int = 7,
                    incomplete: bool = False) -> Workload:
    """The Airbnb benchmark workload.

    ``incomplete=False`` mirrors the paper's complete variant: rows with
    nulls in skyline dimensions are *removed* (so the complete table is
    smaller than the raw one, like 820,698 vs 1,193,465 in the paper).
    To get both variants from the same raw data, generate the incomplete
    workload with the same seed.
    """
    raw = generate_airbnb(num_rows, seed, incomplete=True)
    if incomplete:
        return Workload(
            table_name="airbnb_incomplete",
            columns=list(_COLUMNS_INCOMPLETE),
            rows=raw,
            skyline_dimensions=list(AIRBNB_SKYLINE_DIMENSIONS),
            incomplete=True)
    complete_rows = [row for row in raw
                     if all(value is not None for value in row)]
    return Workload(
        table_name="airbnb",
        columns=list(_COLUMNS_COMPLETE),
        rows=complete_rows,
        skyline_dimensions=list(AIRBNB_SKYLINE_DIMENSIONS),
        incomplete=False)
