"""Streaming skyline maintenance -- the incremental-dominance kernel.

Section 7 of the paper names "integration into different Spark modules
such as structured streaming" as desirable future work.  This module
provides that capability for the reproduction: a continuously maintained
skyline over an append-only stream of rows, exposed both as a low-level
accumulator (:class:`SkylineStream`) and as a micro-batch pipe
(:meth:`SkylineStream.process_batch`) in the spirit of structured
streaming's incremental queries.

Since the pipelined executor landed (:mod:`repro.engine.pipeline`) this
is no longer a side module: the pipelined local-skyline operator folds
every morsel through a :class:`SkylineStream` window, restoring the
running window from a :meth:`checkpoint` before each fold and
checkpointing the survivors after it.  The ``dominance`` parameter is
what makes that reuse possible for incomplete data: within one
null-bitmap partition the restricted dominance test
(:func:`repro.core.dominance.dominates_incomplete`) *is* transitive, so
the operator streams null rows through the window directly instead of
buffering them.

Default semantics are complete-data only: with nulls, general dominance
is not transitive, so dropping dominated tuples online would be
incorrect (Appendix A); ``SkylineStream`` therefore rejects rows with
nulls in skyline dimensions unless ``allow_nulls`` explicitly opts into
buffering them (kept aside, skyline recomputed with the flag-based
algorithm on demand -- correct, but with the cost profile Section 5.7
describes) or an explicit ``dominance`` test takes responsibility for
them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .core.bnl import bnl_skyline
from .core.dominance import (BoundDimension, dominates, equal_on_dimensions,
                             has_null_dimension)
from .core.incomplete import flagged_global_skyline
from .errors import ExecutionError

#: Checkpoint format version.  Version 2 added the ``distinct`` /
#: ``allow_nulls`` mode flags (restores of version-1 states used to
#: silently fall back to the defaults, losing the null-buffer window
#: semantics across a round trip).
CHECKPOINT_VERSION = 2


class SkylineStream:
    """Continuously maintained skyline over an append-only row stream.

    Each :meth:`add` folds one row into the window in O(window) time;
    :meth:`current` returns the skyline of everything seen so far.
    ``distinct`` applies ``SKYLINE OF DISTINCT`` semantics.

    ``dominance`` swaps the dominance test (default
    :func:`repro.core.dominance.dominates`).  An explicit test also
    disables the null check/buffering: the caller asserts the test is
    transitive on its input -- e.g. ``dominates_incomplete`` over rows
    sharing one null bitmap -- so null rows flow through the window like
    any other row.
    """

    def __init__(self, dims: Sequence[BoundDimension],
                 distinct: bool = False,
                 allow_nulls: bool = False,
                 dominance: Callable[..., bool] | None = None) -> None:
        if not dims:
            raise ExecutionError("streaming skyline needs dimensions")
        self.dims = list(dims)
        self.distinct = distinct
        self.allow_nulls = allow_nulls
        self._dominates = dominance if dominance is not None else dominates
        self._custom_dominance = dominance is not None
        self._window: list[Sequence] = []
        self._null_buffer: list[Sequence] = []
        self.rows_seen = 0
        self.rows_dropped = 0
        #: Dominance tests performed so far (the engine's
        #: ``dominance_comparisons`` metric for pipelined folds).
        self.comparisons = 0
        #: High-water mark of the window size (plus buffered nulls).
        self.window_peak = 0

    def add(self, row: Sequence) -> bool:
        """Fold one row in; returns True if it (currently) survives."""
        self.rows_seen += 1
        if not self._custom_dominance and \
                has_null_dimension(row, self.dims):
            if not self.allow_nulls:
                raise ExecutionError(
                    "null in a skyline dimension of a streaming row; "
                    "construct the stream with allow_nulls=True to "
                    "buffer incomplete rows")
            self._null_buffer.append(row)
            self._note_peak()
            return True
        survivors: list[Sequence] = []
        dominated = False
        for candidate in self._window:
            if dominated:
                survivors.append(candidate)
                continue
            self.comparisons += 1
            if self._dominates(candidate, row, self.dims):
                dominated = True
                survivors.append(candidate)
                continue
            if self._dominates(row, candidate, self.dims):
                self.rows_dropped += 1
                continue
            if self.distinct and equal_on_dimensions(row, candidate,
                                                     self.dims):
                dominated = True
            survivors.append(candidate)
        self._window = survivors
        if dominated:
            self.rows_dropped += 1
            return False
        self._window.append(row)
        self._note_peak()
        return True

    def _note_peak(self) -> None:
        size = len(self._window) + len(self._null_buffer)
        if size > self.window_peak:
            self.window_peak = size

    def add_all(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.add(row)

    def process_batch(self, rows: Iterable[Sequence]) -> dict:
        """Micro-batch step: fold a batch and report the delta.

        Returns ``{"added": [...], "evicted": [...], "skyline_size": n}``
        -- the rows newly in the skyline, the previously-reported rows
        that the batch displaced, and the current size.  This mirrors
        the update-mode outputs of structured streaming sinks.
        """
        before = {id(r): r for r in self._window}
        for row in rows:
            self.add(row)
        after_ids = {id(r) for r in self._window}
        added = [r for r in self._window if id(r) not in before]
        evicted = [r for key, r in before.items() if key not in after_ids]
        return {
            "added": added,
            "evicted": evicted,
            "skyline_size": len(self.current()),
        }

    def current(self) -> list[Sequence]:
        """The skyline of all rows seen so far."""
        if not self._null_buffer:
            return list(self._window)
        # Incomplete rows buffered: fall back to the correct flag-based
        # computation over window + buffer (Section 5.7 semantics).
        return flagged_global_skyline(
            list(self._window) + list(self._null_buffer), self.dims,
            distinct=self.distinct)

    @property
    def window_size(self) -> int:
        return len(self._window)

    def checkpoint(self) -> dict:
        """Serializable state for restart (structured-streaming style).

        Carries the mode flags (``distinct``, ``allow_nulls``) alongside
        the window so a round trip preserves the stream's semantics:
        restoring a null-buffering stream without them used to silently
        produce a stream that *rejects* the very nulls its buffer holds.
        """
        return {
            "version": CHECKPOINT_VERSION,
            "window": [tuple(r) for r in self._window],
            "null_buffer": [tuple(r) for r in self._null_buffer],
            "rows_seen": self.rows_seen,
            "rows_dropped": self.rows_dropped,
            "distinct": self.distinct,
            "allow_nulls": self.allow_nulls,
        }

    @classmethod
    def restore(cls, dims: Sequence[BoundDimension], state: dict,
                distinct: bool | None = None,
                allow_nulls: bool | None = None,
                dominance: Callable[..., bool] | None = None
                ) -> "SkylineStream":
        """Rebuild a stream from :meth:`checkpoint` output.

        Mode flags default to the values recorded in the checkpoint
        (version-1 states without them restore as ``False``, matching
        their original construction defaults); passing ``distinct=`` /
        ``allow_nulls=`` explicitly overrides the recorded value.
        """
        if distinct is None:
            distinct = bool(state.get("distinct", False))
        if allow_nulls is None:
            allow_nulls = bool(state.get("allow_nulls", False))
        stream = cls(dims, distinct=distinct, allow_nulls=allow_nulls,
                     dominance=dominance)
        stream._window = [tuple(r) for r in state["window"]]
        stream._null_buffer = [tuple(r) for r in state["null_buffer"]]
        stream.rows_seen = state["rows_seen"]
        stream.rows_dropped = state["rows_dropped"]
        stream._note_peak()
        return stream


def skyline_of_stream(rows: Iterable[Sequence],
                      dims: Sequence[BoundDimension],
                      distinct: bool = False) -> list[Sequence]:
    """One-shot convenience: the skyline of a finite stream.

    Equivalent to :func:`repro.core.bnl.bnl_skyline`; provided so stream
    producers and batch callers share an entry point.
    """
    return bnl_skyline(list(rows), dims, distinct=distinct)
