"""Exception hierarchy for the engine.

Mirrors the kinds of errors Spark SQL raises at the corresponding pipeline
stages: parse errors, analysis errors, planning errors, and execution errors.

The execution family carries the fault-tolerance taxonomy
(:class:`TaskError`, :class:`WorkerCrashError`, :class:`QueryTimeout`,
:class:`ServerOverloadedError`): the serving layer maps each of these to
a stable wire error code, and the execution backends raise them only
after the per-task retry budget (``max_task_retries``) is exhausted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParseError(ReproError):
    """Raised by the lexer or parser on malformed SQL input."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None) -> None:
        self.position = position
        self.line = line
        location = ""
        if line is not None:
            location = f" (line {line})"
        elif position is not None:
            location = f" (at offset {position})"
        super().__init__(f"{message}{location}")


class AnalysisError(ReproError):
    """Raised by the analyzer when a plan cannot be resolved.

    Examples: unknown table, unresolvable column, aggregate misuse,
    a skyline dimension that resolves to nothing.
    """


class PlanningError(ReproError):
    """Raised when no physical plan can be produced for a logical plan."""


class ExecutionError(ReproError):
    """Raised while executing a physical plan."""


class TaskError(ExecutionError):
    """A partition task failed terminally (retries exhausted or the
    error was classified non-retryable).

    Tasks are pure and deterministic, so a task raising an ordinary
    exception (a ``TypeError`` on bad data, say) would fail identically
    on re-execution; those are wrapped in a :class:`TaskError`
    immediately.  Infrastructure failures (injected faults, worker
    crashes, task timeouts) are retried first and wrapped only once the
    budget is spent.
    """

    def __init__(self, message: str, task_key: str = "",
                 attempts: int = 1) -> None:
        self.task_key = task_key
        self.attempts = attempts
        super().__init__(message)


class WorkerCrashError(TaskError):
    """A worker process died (or a crash was injected) and the task
    could not be recovered within the retry budget.

    The process backend recovers from ``BrokenProcessPool`` by
    rebuilding the pool and re-running only the lost tasks; this error
    surfaces only when a task keeps dying past ``max_task_retries``.
    """


class QueryTimeout(ReproError):
    """A query exceeded its wall-clock budget (``time_budget_s``).

    Raised cooperatively between (and, via per-task future deadlines on
    the thread/process backends, during) partition tasks, and as a hard
    backstop by the serving layer.  ``partial_stats`` reports how far
    the query got: completed stages, rows produced, retries -- the
    error payload a client can use to decide whether to re-submit with
    a larger budget.
    """

    def __init__(self, elapsed: float = 0.0, budget: float = 0.0,
                 message: "str | None" = None,
                 partial_stats: "dict | None" = None) -> None:
        self.elapsed = elapsed
        self.budget = budget
        self.partial_stats = partial_stats if partial_stats is not None \
            else {}
        super().__init__(
            message if message is not None else
            f"run exceeded time budget ({elapsed:.2f}s > {budget:.2f}s)")


#: Historical name for :class:`QueryTimeout` (the benchmark harness
#: catches it to record the paper's ``t.o.`` marker).  Kept as an alias
#: so ``except BenchmarkTimeout`` keeps working.
BenchmarkTimeout = QueryTimeout


class ServerOverloadedError(ReproError):
    """The serving layer shed a request instead of queueing it.

    Raised by the admission scheduler when a tenant's queue is full;
    ``retry_after_s`` is the server's backoff hint, carried on the wire
    as the ``overloaded`` error code's ``retry_after_s`` field.
    """

    def __init__(self, message: str = "server overloaded",
                 retry_after_s: float = 0.1) -> None:
        self.retry_after_s = retry_after_s
        super().__init__(message)
