"""Exception hierarchy for the engine.

Mirrors the kinds of errors Spark SQL raises at the corresponding pipeline
stages: parse errors, analysis errors, planning errors, and execution errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParseError(ReproError):
    """Raised by the lexer or parser on malformed SQL input."""

    def __init__(self, message: str, position: int | None = None,
                 line: int | None = None) -> None:
        self.position = position
        self.line = line
        location = ""
        if line is not None:
            location = f" (line {line})"
        elif position is not None:
            location = f" (at offset {position})"
        super().__init__(f"{message}{location}")


class AnalysisError(ReproError):
    """Raised by the analyzer when a plan cannot be resolved.

    Examples: unknown table, unresolvable column, aggregate misuse,
    a skyline dimension that resolves to nothing.
    """


class PlanningError(ReproError):
    """Raised when no physical plan can be produced for a logical plan."""


class ExecutionError(ReproError):
    """Raised while executing a physical plan."""


class BenchmarkTimeout(ReproError):
    """Raised by the benchmark harness when a run exceeds its budget.

    The paper marks these runs as ``t.o.`` in Appendix D; the harness
    catches this exception and records the same marker.
    """

    def __init__(self, elapsed: float, budget: float) -> None:
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(
            f"run exceeded time budget ({elapsed:.2f}s > {budget:.2f}s)")
