"""repro: Integration of Skyline Queries into Spark SQL (EDBT 2023).

A pure-Python reproduction of Grasmann, Pichler & Selzer's skyline
integration: a Spark-SQL-like engine (parser, analyzer, Catalyst-style
optimizer, physical planner, simulated distributed execution) with the
skyline operator integrated into every pipeline stage, plus the
standalone skyline algorithm library, dataset generators, and the full
benchmark harness regenerating the paper's tables and figures.

Quickstart::

    import repro
    from repro import smin, smax

    session = repro.connect(num_executors=4)
    session.create_table(
        "hotels",
        [("name", STRING), ("price", DOUBLE), ("rating", DOUBLE)],
        [("A", 120.0, 4.5), ("B", 90.0, 4.0), ("C", 150.0, 3.0)])

    # SQL with the extended syntax (Listing 2 of the paper):
    best = session.sql(
        "SELECT name, price, rating FROM hotels "
        "SKYLINE OF price MIN, rating MAX").collect()

    # Or the DataFrame API (Section 5.8):
    best = session.table("hotels").skyline(
        smin("price"), smax("rating")).collect()
"""

from .api import (DataFrame, GroupedData, QueryResult, SessionConfig,
                  SkylineSession, connect)
from .core import (Algorithm, BoundDimension, DimensionKind, DominanceStats,
                   bnl_skyline, dominates, dominates_incomplete, skyline)
from .engine import (BACKEND_NAMES, BOOLEAN, DOUBLE, INTEGER, STRING, Backend,
                     ClusterConfig, Field, ForeignKey, LocalBackend,
                     ProcessBackend, Row, Schema, ThreadBackend,
                     create_backend)
from .engine.functions import (avg, coalesce, col, count, ifnull, lit,
                               sdiff, smax, smin, sql_max, sql_min, sql_sum)
from .engine.faults import FaultPlan
from .errors import (AnalysisError, BenchmarkTimeout, ExecutionError,
                     ParseError, PlanningError, QueryTimeout, ReproError,
                     ServerOverloadedError, TaskError, WorkerCrashError)

__version__ = "1.1.0"

#: The stable public surface: ``repro.connect()`` is the supported
#: entry point; everything listed here keeps working across minor
#: versions (deprecated aliases emit ``DeprecationWarning`` first).
__all__ = [
    "Algorithm",
    "AnalysisError",
    "BenchmarkTimeout",
    "BOOLEAN",
    "BoundDimension",
    "ClusterConfig",
    "DOUBLE",
    "DataFrame",
    "DimensionKind",
    "DominanceStats",
    "ExecutionError",
    "FaultPlan",
    "Field",
    "ForeignKey",
    "GroupedData",
    "INTEGER",
    "ParseError",
    "PlanningError",
    "QueryResult",
    "QueryTimeout",
    "ReproError",
    "ServerOverloadedError",
    "TaskError",
    "WorkerCrashError",
    "Row",
    "STRING",
    "Schema",
    "SessionConfig",
    "SkylineSession",
    "avg",
    "bnl_skyline",
    "coalesce",
    "col",
    "connect",
    "count",
    "dominates",
    "dominates_incomplete",
    "ifnull",
    "lit",
    "sdiff",
    "skyline",
    "smax",
    "smin",
    "sql_max",
    "sql_min",
    "sql_sum",
]
