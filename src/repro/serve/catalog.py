"""Shared catalog, plan cache, and backend pool for multi-tenant serving.

Historically every :class:`~repro.api.session.SkylineSession` owned its
catalog, statistics store, and worker pool.  A server hosting many
tenants wants the opposite: **one** catalog (so statistics are
collected once and DML is visible to everyone), **one** worker pool per
backend flavour (so 16 tenants do not spawn 16 process pools), and a
cross-session cache of prepared plans and skyline results.
:class:`CatalogService` owns all of that; tenant sessions from
:meth:`session_for` are thin views over the shared state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..api.config import SessionConfig
from ..api.session import PreparedQuery, QueryResult, SkylineSession
from ..engine.backends import (BackendSpec, FaultStats, SharedBackend,
                               create_backend)
from ..engine.catalog import Catalog
from ..engine.row import Row
from ..plan.logical import AnalyzeTable
from .cache import CacheableShape, SkylineResultCache, cacheable_shape


class CatalogService:
    """Shared engine state behind a serving endpoint.

    Thread-safe for the server's usage: queries run concurrently on a
    thread pool, DML is serialised by :attr:`write_lock`, and the plan
    and result caches take their own locks.
    """

    def __init__(self, catalog: "Catalog | None" = None, *,
                 plan_cache_size: int = 128,
                 result_cache_size: int = 64) -> None:
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self.catalog = catalog if catalog is not None else Catalog()
        self.result_cache = SkylineResultCache(result_cache_size)
        self.catalog.add_listener(self.result_cache.on_catalog_event)
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._plan_lock = threading.Lock()
        self._backends: "dict[tuple, SharedBackend]" = {}
        self._backend_lock = threading.Lock()
        #: Serialises catalog DML (queries read without locking; under
        #: CPython the in-place list mutations the catalog performs are
        #: safe against concurrent iteration of a snapshot length).
        self.write_lock = threading.Lock()
        #: Ablation switch: with the result cache off every query
        #: executes the full plan (the benchmark's baseline).
        self.result_cache_enabled = True
        self.plan_hits = 0
        self.plan_misses = 0
        #: Service-lifetime fault-tolerance counters, merged from every
        #: executed query's context (reported by :meth:`stats`).
        self.fault_stats = FaultStats()
        self._fault_lock = threading.Lock()

    # -- tenants ----------------------------------------------------------

    def shared_backend(self, config: SessionConfig) -> SharedBackend:
        """The process-wide backend for ``config``'s flavour."""
        key = (config.backend, config.num_workers)
        with self._backend_lock:
            backend = self._backends.get(key)
            if backend is None:
                backend = SharedBackend(
                    create_backend(config.backend, config.num_workers))
                self._backends[key] = backend
            return backend

    def session_for(self, config: "SessionConfig | None" = None,
                    **options) -> SkylineSession:
        """A tenant session over the shared catalog and worker pool."""
        config = config if config is not None else SessionConfig()
        if options:
            config = config.with_options(**options)
        session = SkylineSession(config=config, catalog=self.catalog)
        session._backend_spec = BackendSpec(self.shared_backend(config))
        return session

    # -- the serving execution path ---------------------------------------

    def _plan_key(self, session: SkylineSession, sql: str) -> tuple:
        return (session._planner().settings_key(),
                session.enable_skyline_optimizations,
                sql, self.catalog.version)

    def _prepared(self, session: SkylineSession, sql: str, key: tuple
                  ) -> "tuple[PreparedQuery, CacheableShape | None] | None":
        """Prepare ``sql`` through the plan cache.

        Returns ``None`` for command statements (``ANALYZE TABLE``),
        which bypass the planner and the caches.
        """
        plan = session.sql(sql).plan
        if isinstance(plan, AnalyzeTable):
            return None
        prepared = session.prepare(plan)
        shape = cacheable_shape(prepared.optimized)
        with self._plan_lock:
            self.plan_misses += 1
            self._plan_cache[key] = (prepared, shape)
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return prepared, shape

    def execute(self, session: SkylineSession, sql: str) -> QueryResult:
        """Parse and run ``sql`` for a tenant, through the caches.

        The plan cache is consulted *before* parsing (its key is the
        SQL text plus the session's planning settings and the catalog
        version), so a hot query's latency is the result-cache lookup
        alone.  Cache-hit answers come back with ``cache_hit=True`` and
        zero simulated cost; everything else executes normally and,
        when the plan has the cacheable skyline shape, feeds the result
        cache.
        """
        key = self._plan_key(session, sql)
        with self._plan_lock:
            hit = self._plan_cache.get(key)
            if hit is not None:
                self._plan_cache.move_to_end(key)
                self.plan_hits += 1
        if hit is None:
            entry = self._prepared(session, sql, key)
            if entry is None:
                return session.execute(session.sql(sql).plan)
            prepared, shape = entry
        else:
            prepared, shape = hit
        if not self.result_cache_enabled:
            shape = None
        if shape is not None:
            table_rows = self.catalog.lookup(shape.table).rows
            cached = self.result_cache.lookup(shape, list(table_rows),
                                              self.catalog.version)
            if cached is not None:
                rows = [Row(values, prepared.schema) for values in cached]
                return session.cached_result(rows, prepared.schema)
        version = self.catalog.version
        result = session.execute_prepared(prepared)
        self._note_faults(result)
        if shape is not None and self.catalog.version == version:
            self.result_cache.store(
                shape, [row.as_tuple() for row in result.rows],
                prepared.schema,
                table_rows=list(self.catalog.lookup(shape.table).rows),
                version=version)
        return result

    def _note_faults(self, result: QueryResult) -> None:
        """Fold one query's fault counters into the service totals."""
        stats = getattr(result.context, "fault_stats", None)
        if stats is not None and stats.any():
            with self._fault_lock:
                self.fault_stats.merge(stats)

    # -- lifecycle --------------------------------------------------------

    def stats(self) -> dict:
        with self._plan_lock:
            plan = {"hits": self.plan_hits, "misses": self.plan_misses,
                    "entries": len(self._plan_cache)}
        with self._fault_lock:
            faults = self.fault_stats.as_dict()
        return {"catalog_version": self.catalog.version,
                "tables": self.catalog.table_names(),
                "plan_cache": plan,
                "result_cache": self.result_cache.stats.as_dict(),
                "faults": faults}

    def close(self) -> None:
        """Shut down the shared worker pools (server shutdown only)."""
        with self._backend_lock:
            for backend in self._backends.values():
                backend.close_shared()
            self._backends.clear()
