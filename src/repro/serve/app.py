"""The multi-tenant async serving layer.

:class:`SkylineServer` fronts one :class:`~repro.serve.catalog.CatalogService`
with an asyncio TCP endpoint speaking a JSON-lines protocol: each
request is one JSON object on one line, each response one JSON object
on one line.  Engine work is synchronous, so queries run on a bounded
thread pool; the :class:`~repro.serve.scheduler.AdmissionScheduler`
gates entry to it with per-tenant fairness.

Requests (``op`` selects the operation)::

    {"op": "ping"}
    {"op": "configure", "tenant": "t1", "options": {"num_executors": 4}}
    {"op": "create_table", "table": "hotels",
     "columns": [["name", "STRING"], ["price", "DOUBLE"]],
     "rows": [["A", 120.0]]}
    {"op": "insert", "table": "hotels", "rows": [["B", 90.0]]}
    {"op": "delete", "table": "hotels", "rows": [["A", 120.0]]}
    {"op": "drop", "table": "hotels"}
    {"op": "query", "tenant": "t1", "sql": "SELECT * FROM hotels ..."}
    {"op": "stats"}

Every response carries ``"ok"``; query responses add ``rows``,
``columns``, ``cache_hit``, ``scheduler_wait_s`` and ``elapsed_s``.

Error responses carry a **stable wire error code** in ``error`` plus a
human-readable ``message`` -- never a stack trace or an internal
exception repr.  The codes:

=================  =====================================================
``parse_error``    malformed SQL
``analysis_error`` unresolvable plan (unknown table/column, ...)
``planning_error`` no physical plan
``timeout``        query exceeded ``time_budget_s`` (adds ``elapsed_s``,
                   ``budget_s``, ``partial_stats``)
``worker_crash``   a task was lost to worker crashes past the retry
                   budget (adds ``task_key``, ``attempts``)
``task_error``     a task failed terminally (adds ``task_key``,
                   ``attempts``)
``overloaded``     admission shed the request (adds ``retry_after_s``)
``bad_request``    malformed request envelope (bad JSON, unknown op,
                   missing fields)
``internal``       anything unexpected; the message is generic on
                   purpose
=================  =====================================================
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..api.config import SessionConfig
from ..api.session import QueryResult, SkylineSession
from ..engine.types import BOOLEAN, DOUBLE, INTEGER, STRING
from ..errors import (AnalysisError, ParseError, PlanningError,
                      QueryTimeout, ReproError, ServerOverloadedError,
                      TaskError, WorkerCrashError)
from .catalog import CatalogService
from .scheduler import AdmissionScheduler

#: Column type names accepted by the ``create_table`` op.
TYPE_NAMES = {"INTEGER": INTEGER, "INT": INTEGER, "DOUBLE": DOUBLE,
              "FLOAT": DOUBLE, "STRING": STRING, "BOOLEAN": BOOLEAN}

#: Exception -> stable wire code, most specific first (order matters:
#: ``WorkerCrashError`` is a ``TaskError``).
_ERROR_CODES: "tuple[tuple[type, str], ...]" = (
    (ParseError, "parse_error"),
    (AnalysisError, "analysis_error"),
    (PlanningError, "planning_error"),
    (QueryTimeout, "timeout"),
    (WorkerCrashError, "worker_crash"),
    (TaskError, "task_error"),
    (ServerOverloadedError, "overloaded"),
)


def wire_error(exc: BaseException) -> dict:
    """Map an exception to a stable error payload for the wire.

    Only the taxonomy's message text crosses the boundary -- no stack
    traces, no exception class names, and for *unexpected* exceptions
    not even the message (clients get a generic ``internal``).
    """
    for exc_type, code in _ERROR_CODES:
        if isinstance(exc, exc_type):
            payload = {"ok": False, "error": code, "message": str(exc)}
            if isinstance(exc, QueryTimeout):
                payload["elapsed_s"] = exc.elapsed
                payload["budget_s"] = exc.budget
                payload["partial_stats"] = dict(exc.partial_stats)
            elif isinstance(exc, TaskError):
                payload["task_key"] = exc.task_key
                payload["attempts"] = exc.attempts
            elif isinstance(exc, ServerOverloadedError):
                payload["retry_after_s"] = exc.retry_after_s
            return payload
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        # Request-shaped errors (bad fields, unknown ops, bad types).
        return {"ok": False, "error": "bad_request", "message": str(exc)}
    if isinstance(exc, ReproError):
        # Our own taxonomy: the message is safe, curated text.
        return {"ok": False, "error": "internal", "message": str(exc)}
    return {"ok": False, "error": "internal",
            "message": "internal server error"}


def _swallow(future) -> None:
    """Observe a discarded future so its exception is never 'never
    retrieved' (hard-timed-out queries finish into one of these)."""
    if not future.cancelled():
        future.exception()


@dataclass
class Tenant:
    """One tenant: a name, its config, and its session view."""

    name: str
    config: SessionConfig
    session: SkylineSession


class SkylineServer:
    """Asyncio serving endpoint over a shared :class:`CatalogService`."""

    def __init__(self, service: "CatalogService | None" = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 4,
                 max_queue_per_tenant: int = 16,
                 default_config: "SessionConfig | None" = None) -> None:
        self.service = service if service is not None else CatalogService()
        self.host = host
        self.port = port
        self.scheduler = AdmissionScheduler(max_inflight,
                                            max_queue_per_tenant)
        self.default_config = default_config if default_config is not None \
            else SessionConfig()
        self._tenants: dict[str, Tenant] = {}
        self._pool = ThreadPoolExecutor(max_workers=max_inflight,
                                        thread_name_prefix="repro-serve")
        self._server: "asyncio.AbstractServer | None" = None

    # -- tenants ----------------------------------------------------------

    def register_tenant(self, name: str,
                        config: "SessionConfig | None" = None,
                        **options) -> Tenant:
        """(Re-)register a tenant; options override ``default_config``."""
        config = config if config is not None else self.default_config
        if options:
            config = config.with_options(**options)
        tenant = Tenant(name, config, self.service.session_for(config))
        self._tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        """The named tenant, auto-registered with the default config."""
        found = self._tenants.get(name)
        if found is None:
            found = self.register_tenant(name)
        return found

    # -- execution --------------------------------------------------------

    async def execute(self, tenant_name: str, sql: str) -> QueryResult:
        """Run one query for a tenant through admission control.

        ``time_budget_s`` is enforced twice: cooperatively inside the
        engine (precise, with partial-progress stats) and here as a
        hard ``asyncio.wait_for`` backstop with a grace margin --
        catching tasks stuck somewhere the cooperative checks cannot
        reach.  The worker thread of a hard-timed-out query cannot be
        killed; it is left to finish into a discarded future.
        """
        tenant = self.tenant(tenant_name)
        waited = await self.scheduler.admit(tenant.name)
        start = time.perf_counter()
        budget = tenant.config.time_budget_s
        try:
            loop = asyncio.get_running_loop()
            call = loop.run_in_executor(
                self._pool, self.service.execute, tenant.session, sql)
            if budget is None:
                result = await call
            else:
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(call),
                        timeout=budget + max(0.5, budget))
                except asyncio.TimeoutError:
                    call.add_done_callback(_swallow)
                    raise QueryTimeout(
                        elapsed=time.perf_counter() - start,
                        budget=budget,
                        partial_stats={"enforced_by": "server"}) from None
        finally:
            self.scheduler.release()
            self.scheduler.note_service_time(time.perf_counter() - start)
        result.scheduler_wait_s = waited
        return result

    # -- request dispatch -------------------------------------------------

    async def handle(self, request: dict) -> dict:
        """Dispatch one decoded request to a response payload."""
        try:
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True,
                        "service": self.service.stats(),
                        "scheduler": self.scheduler.stats.as_dict(),
                        "tenants": sorted(self._tenants)}
            if op == "configure":
                tenant = self.register_tenant(
                    str(request.get("tenant", "default")),
                    **request.get("options", {}))
                return {"ok": True, "tenant": tenant.name,
                        "config": tenant.config.as_dict()}
            if op == "query":
                return await self._op_query(request)
            if op in ("create_table", "insert", "delete", "drop"):
                return self._op_dml(op, request)
            return {"ok": False, "error": "bad_request",
                    "message": f"unknown op {op!r}"}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return wire_error(exc)

    async def _op_query(self, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ValueError("query op needs a non-empty 'sql' string")
        start = time.perf_counter()
        result = await self.execute(
            str(request.get("tenant", "default")), sql)
        elapsed = time.perf_counter() - start
        return {"ok": True,
                "rows": [list(row) for row in result.as_tuples()],
                "columns": [field.name for field in result.schema],
                "cache_hit": result.cache_hit,
                "scheduler_wait_s": result.scheduler_wait_s,
                "elapsed_s": elapsed}

    def _op_dml(self, op: str, request: dict) -> dict:
        table = request.get("table")
        if not isinstance(table, str) or not table:
            raise ValueError(f"{op} op needs a 'table' name")
        catalog = self.service.catalog
        with self.service.write_lock:
            if op == "create_table":
                columns = []
                for spec in request.get("columns", ()):
                    name, type_name = spec[0], str(spec[1]).upper()
                    if type_name not in TYPE_NAMES:
                        raise ValueError(
                            f"unknown column type {spec[1]!r}; expected "
                            f"one of {sorted(set(TYPE_NAMES))}")
                    nullable = bool(spec[2]) if len(spec) > 2 else True
                    columns.append((name, TYPE_NAMES[type_name], nullable))
                session = self.tenant(
                    str(request.get("tenant", "default"))).session
                session.create_table(
                    table, columns,
                    [tuple(row) for row in request.get("rows", ())],
                    primary_key=tuple(request.get("primary_key", ())))
                return {"ok": True, "table": table,
                        "rows": catalog.lookup(table).num_rows}
            if op == "insert":
                count = catalog.insert_into(
                    table, [tuple(row) for row in request.get("rows", ())])
                return {"ok": True, "inserted": count}
            if op == "delete":
                count = catalog.delete_from(
                    table,
                    rows=[tuple(row) for row in request.get("rows", ())])
                return {"ok": True, "deleted": count}
            catalog.drop(table)
            return {"ok": True, "dropped": table}

    # -- the wire protocol ------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": "bad_request",
                                "message": f"request is not valid JSON: "
                                           f"{exc}"}
                else:
                    if not isinstance(request, dict):
                        response = {"ok": False, "error": "bad_request",
                                    "message": "request must be an object"}
                    else:
                        response = await self.handle(request)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # Shutdown may cancel the handler mid-close; the
                # transport is already closed, so nothing is leaked.
                pass

    async def start(self) -> "tuple[str, int]":
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        self.service.close()
