"""Multi-tenant async serving layer.

``python -m repro.serve`` boots a JSON-lines TCP endpoint over a shared
:class:`CatalogService`: one catalog and statistics store, one worker
pool per backend flavour, a cross-session plan cache, and the
dominance-aware :class:`SkylineResultCache` that answers
subset-preference skyline queries from cached supersets.  See
``docs/serving.md``.
"""

from .app import SkylineServer, Tenant
from .cache import (CacheableShape, CacheStats, SkylineResultCache,
                    cacheable_shape)
from .catalog import CatalogService
from .scheduler import AdmissionScheduler, SchedulerStats

__all__ = [
    "AdmissionScheduler",
    "CacheStats",
    "CacheableShape",
    "CatalogService",
    "SchedulerStats",
    "SkylineResultCache",
    "SkylineServer",
    "Tenant",
    "cacheable_shape",
]
