"""Dominance-aware skyline result cache.

The cache exploits a containment property of skyline queries over
complete data: for preference sets ``Q`` (subset) and ``P`` (superset)
with ``Q`` a subset of ``P``,

    ``p`` is in ``sky_Q(D)``  iff  no row of ``sky_P(D)`` Q-dominates ``p``

(proof sketch: any row Q-dominating ``p`` is either itself in
``sky_P(D)`` or P-dominated by a member of it, and P-dominance over a
superset of ``Q``'s dimensions implies Q-dominance or a Q-tie that the
transitivity chain closes).  A cached skyline for ``P`` therefore
answers *any* query whose preference set is contained in ``P`` --
exactly, not approximately -- by one linear filter of the base table
against the (small) cached skyline: ``O(n * k)`` instead of the
``O(n^2)`` dominance join.

DML does not simply flush the cache; the catalog's delta events enable
*incremental* invalidation:

* **insert** -- an entry stays valid iff every inserted row is strictly
  dominated by some cached skyline member (a dominated row changes no
  skyline, for ``P`` or any subset of it).  A surviving or tying row
  invalidates; so does a row with a NULL in a cached dimension (the
  complete-semantics proof needs null-free dimensions).
* **delete** -- an entry stays valid iff no removed row is tuple-equal
  to a cached member: every non-member is dominated by *some* member
  (transitivity), so removing it cannot promote new members.
* **register / drop** -- all entries for the table are discarded.

Only plans of the shape ``Skyline(identity-Project(Relation))`` with
``DISTINCT`` off and null-free dimension columns are cached -- the
shape the optimizer produces for ``SELECT * FROM t SKYLINE OF ...``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..core import BoundDimension, DimensionKind, dominates
from ..core.vectorized import (_pairwise_dominated, columnize,
                               vec_dominated_mask)
from ..engine import expressions as E
from ..engine.catalog import CatalogEvent
from ..engine.row import Schema
from ..plan import logical as L

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


@dataclass(frozen=True)
class CacheableShape:
    """A query the cache can serve: one table, one preference set.

    ``dims`` is the preference set in query order as ``(column, kind)``
    pairs (column names lower-cased); ``indices`` holds each
    dimension's ordinal in the table's row tuples.  Two shapes with
    equal :attr:`key` are the same cache slot even if their dimensions
    are written in a different order.
    """

    table: str
    dims: tuple[tuple[str, DimensionKind], ...]
    indices: tuple[int, ...]

    @property
    def key(self) -> tuple:
        return (self.table, frozenset(self.dims))

    @property
    def dim_set(self) -> frozenset:
        return frozenset(self.dims)

    def bound_dimensions(self) -> list[BoundDimension]:
        return [BoundDimension(index, kind)
                for (_, kind), index in zip(self.dims, self.indices)]


def cacheable_shape(optimized: "L.LogicalPlan | None"
                    ) -> CacheableShape | None:
    """Extract the cacheable shape of an optimized plan, or ``None``.

    Accepts exactly ``Skyline -> identity Project -> Relation`` (or the
    projection collapsed away), with ``DISTINCT`` off and every skyline
    dimension a bare column of the relation.  Nullability of the
    dimension columns is *not* checked here -- the store path verifies
    the actual data is null-free, which is the property the containment
    rule needs.
    """
    if not isinstance(optimized, L.SkylineOperator):
        return None
    if optimized.distinct:
        return None
    child = optimized.children[0]
    if isinstance(child, L.Project):
        relation = child.children[0]
        if not isinstance(relation, L.LogicalRelation):
            return None
        rel_out = relation.output
        projections = child.projections
        if len(projections) != len(rel_out):
            return None
        for proj, attr in zip(projections, rel_out):
            if not isinstance(proj, E.AttributeReference) or \
                    proj.expr_id != attr.expr_id:
                return None
    elif isinstance(child, L.LogicalRelation):
        relation = child
    else:
        return None
    index_of = {a.expr_id: i for i, a in enumerate(relation.output)}
    dims: list[tuple[str, DimensionKind]] = []
    indices: list[int] = []
    for item in optimized.skyline_items:
        expr = item.children[0]
        if not isinstance(expr, E.AttributeReference):
            return None
        position = index_of.get(expr.expr_id)
        if position is None:
            return None
        dims.append((expr.name.lower(), item.kind))
        indices.append(position)
    if not dims:
        return None
    return CacheableShape(table=relation.table.name.lower(),
                          dims=tuple(dims), indices=tuple(indices))


@dataclass
class CacheStats:
    """Counters the server's ``stats`` op reports."""

    exact_hits: int = 0
    refilter_hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.refilter_hits

    def as_dict(self) -> dict:
        return {"exact_hits": self.exact_hits,
                "refilter_hits": self.refilter_hits,
                "misses": self.misses, "stores": self.stores,
                "invalidations": self.invalidations}


def _oriented_values(rows, bdims) -> "object | None":
    """The MAX-negated float64 value matrix of ``rows`` over ``bdims``
    (all dimensions oriented as MIN), or ``None`` when the rows cannot
    be columnized faithfully or contain NULL dimension values."""
    block = columnize(rows, bdims)
    if block is None or (len(rows) and block.null_mask.any()):
        return None
    return block.values


@dataclass
class _Entry:
    """One cached skyline plus the columnized state a re-filter needs.

    ``base_values`` is the oriented value matrix of the *whole base
    table* over the entry's preference set, tagged with the catalog
    version it reflects; a validity-preserving insert appends to it so
    subset lookups stay one small kernel call instead of re-columnizing
    the table.  It degrades to ``None`` whenever it cannot be kept
    aligned (a validity-preserving delete, un-columnizable rows) --
    correctness never depends on it.
    """

    shape: CacheableShape
    rows: tuple[tuple, ...]
    schema: Schema
    sky_values: "object | None" = None
    base_values: "object | None" = None
    base_version: "int | None" = None
    row_set: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.row_set = frozenset(self.rows)

    def value_columns(self, dims) -> "list[int] | None":
        """Matrix column selector for a subset preference set, or
        ``None`` if any requested dimension has no matrix column."""
        non_diff = [d for d in self.shape.dims
                    if d[1] is not DimensionKind.DIFF]
        position = {dim: j for j, dim in enumerate(non_diff)}
        selected = []
        for dim in dims:
            j = position.get(dim)
            if j is None:
                return None
            selected.append(j)
        return selected


def _dominated_mask(rows, by_rows, bdims) -> list[bool]:
    """Which of ``rows`` are dominated by some row of ``by_rows``?"""
    mask = vec_dominated_mask(rows, by_rows, bdims)
    if mask is not None:
        return mask
    return [any(dominates(winner, row, bdims) for winner in by_rows)
            for row in rows]


class SkylineResultCache:
    """LRU cache of skyline results with containment-based lookup.

    Thread-safe: the serving layer executes queries on a thread pool
    and delivers catalog events from whichever thread ran the DML.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup -----------------------------------------------------------

    def lookup(self, shape: CacheableShape, table_rows: list[tuple],
               version: "int | None" = None) -> "list[tuple] | None":
        """Rows answering ``shape``, or ``None`` on a miss.

        An exact entry (same preference set) is returned as stored; a
        superset entry answers by re-filtering ``table_rows`` (the
        *current* table) against the cached skyline under the query's
        own dimensions.  ``version`` (the current catalog version)
        enables the columnized fast path.
        """
        with self._lock:
            exact = self._entries.get(shape.key)
            if exact is not None:
                self._entries.move_to_end(shape.key)
                self.stats.exact_hits += 1
                return list(exact.rows)
            best: "_Entry | None" = None
            want = shape.dim_set
            for entry in self._entries.values():
                if entry.shape.table != shape.table:
                    continue
                if not want <= entry.shape.dim_set:
                    continue
                if best is None or len(entry.rows) < len(best.rows):
                    best = entry
            if best is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(best.shape.key)
            self.stats.refilter_hits += 1
            return self._refilter(best, shape, table_rows, version)

    def _refilter(self, entry: _Entry, shape: CacheableShape,
                  table_rows: list[tuple],
                  version: "int | None") -> list[tuple]:
        """The rows of ``table_rows`` not dominated under ``shape``.

        Fast path: slice the entry's columnized base table (rebuilt
        here if stale) and run a chunked kernel over the cached skyline
        -- most candidates are dominated by the first few skyline
        members, so they drop out before later chunks.  Falls back to
        generic row-wise filtering whenever the matrix cannot serve.
        """
        selected = entry.value_columns(shape.dims) if _np is not None \
            else None
        if selected is not None and version is not None:
            if entry.base_values is None or \
                    entry.base_version != version or \
                    len(entry.base_values) != len(table_rows):
                entry.base_values = _oriented_values(
                    table_rows, entry.shape.bound_dimensions())
                entry.base_version = version \
                    if entry.base_values is not None else None
            if entry.base_values is not None and \
                    entry.sky_values is not None:
                cand = entry.base_values[:, selected]
                sky = entry.sky_values[:, selected]
                dominated = _np.zeros(len(cand), dtype=bool)
                for start in range(0, len(sky), 8):
                    alive = _np.flatnonzero(~dominated)
                    if not len(alive):
                        break
                    hit = _pairwise_dominated(sky[start:start + 8],
                                              cand[alive])
                    dominated[alive] |= hit.any(axis=0)
                return [table_rows[i]
                        for i in _np.flatnonzero(~dominated).tolist()]
        mask = _dominated_mask(table_rows, entry.rows,
                               shape.bound_dimensions())
        return [row for row, dominated in zip(table_rows, mask)
                if not dominated]

    # -- store ------------------------------------------------------------

    def store(self, shape: CacheableShape, rows: list[tuple],
              schema: Schema, table_rows: "list[tuple] | None" = None,
              version: "int | None" = None) -> bool:
        """Cache ``rows`` as the skyline for ``shape``.

        ``table_rows`` is the base table the result was computed from;
        the store is refused (returns ``False``) if any dimension value
        in it is NULL -- the containment rule is proved for complete
        data only, and with null-free dimensions the engine's complete
        and incomplete algorithms agree.
        """
        rows = [tuple(row) for row in rows]
        indices = shape.indices
        for row in rows:
            if any(row[i] is None for i in indices):
                return False
        bdims = shape.bound_dimensions()
        base_values = None
        if table_rows is not None:
            base_values = _oriented_values(table_rows, bdims)
            if base_values is None:
                # Could not prove null-freeness vectorized; scan.
                for row in table_rows:
                    if any(row[i] is None for i in indices):
                        return False
            else:
                # The matrix skips DIFF dimensions; check those by hand.
                diff_idx = [i for (_, kind), i in zip(shape.dims, indices)
                            if kind is DimensionKind.DIFF]
                for i in diff_idx:
                    if any(row[i] is None for row in table_rows):
                        return False
        entry = _Entry(shape, tuple(rows), schema,
                       sky_values=_oriented_values(rows, bdims),
                       base_values=base_values,
                       base_version=version
                       if base_values is not None else None)
        with self._lock:
            self._entries[shape.key] = entry
            self._entries.move_to_end(shape.key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return True

    # -- invalidation -----------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        with self._lock:
            return self._drop_table(table.lower())

    def _drop_table(self, table: str) -> int:
        stale = [key for key, entry in self._entries.items()
                 if entry.shape.table == table]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def on_catalog_event(self, event: CatalogEvent) -> None:
        """Catalog listener: incremental invalidation from DML deltas."""
        with self._lock:
            if event.kind in ("register", "drop"):
                self._drop_table(event.table)
                self._advance_others(event)
                return
            stale = []
            for key, entry in self._entries.items():
                if entry.shape.table != event.table:
                    continue
                if event.kind == "insert":
                    if not self._insert_keeps(entry, event.rows):
                        stale.append(key)
                    else:
                        self._append_base(entry, event.rows,
                                          event.version)
                elif event.kind == "delete":
                    if any(row in entry.row_set for row in event.rows):
                        stale.append(key)
                    else:
                        # The table shrank in place; the columnized
                        # base no longer aligns.  Rebuilt lazily.
                        entry.base_values = None
                        entry.base_version = None
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            self._advance_others(event)

    def _advance_others(self, event: CatalogEvent) -> None:
        """A mutation of one table leaves every *other* table's
        columnized base aligned -- advance their version tags so the
        global catalog version does not stale them."""
        for entry in self._entries.values():
            if entry.shape.table != event.table and \
                    entry.base_values is not None:
                entry.base_version = event.version

    @staticmethod
    def _append_base(entry: _Entry, rows: tuple, version: int) -> None:
        """Keep the columnized base table aligned across an insert of
        (already validity-checked) rows."""
        if entry.base_values is None or _np is None:
            return
        appended = _oriented_values(list(rows),
                                    entry.shape.bound_dimensions())
        if appended is None:
            entry.base_values = None
            entry.base_version = None
            return
        entry.base_values = _np.concatenate(
            [entry.base_values, appended])
        entry.base_version = version

    @staticmethod
    def _insert_keeps(entry: _Entry, rows: tuple) -> bool:
        """True iff every inserted row leaves the cached skyline valid:
        null-free on the cached dimensions and strictly dominated by
        some cached member (under the full preference set ``P``)."""
        bdims = entry.shape.bound_dimensions()
        for row in rows:
            if any(row[i] is None for i in entry.shape.indices):
                return False
            if not any(dominates(winner, row, bdims)
                       for winner in entry.rows):
                return False
        return True
