"""``python -m repro.serve`` -- boot the serving endpoint.

Example::

    python -m repro.serve --port 7878 --max-inflight 8 --demo

``--demo`` registers a small ``hotels`` table so a fresh server has
something to query; ``--port 0`` (the default) picks a free port and
prints it.
"""

from __future__ import annotations

import argparse
import asyncio

from ..api.config import SessionConfig
from ..engine.backends import BACKEND_NAMES
from ..engine.types import DOUBLE, STRING
from .app import SkylineServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant skyline query server (JSON lines over "
                    "TCP).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="bound on concurrently executing queries")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="per-tenant queue bound; beyond it requests "
                             "are shed with the 'overloaded' error code")
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="local",
                        help="default execution backend for tenants")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size for thread/process "
                             "backends")
    parser.add_argument("--partitions", type=int, default=None,
                        help="force a skyline partition count (random "
                             "partitioning) so stages fan out")
    parser.add_argument("--demo", action="store_true",
                        help="pre-register a demo 'hotels' table")
    parser.add_argument("--demo-rows", type=int, default=0,
                        help="with --demo: add this many generated rows "
                             "so queries do real work")
    return parser


def load_demo(server: SkylineServer, extra_rows: int = 0) -> None:
    rows = [("A", 120.0, 4.5, 2.0), ("B", 90.0, 4.0, 5.5),
            ("C", 150.0, 3.0, 1.0), ("D", 85.0, 3.5, 6.0),
            ("E", 200.0, 5.0, 0.5)]
    if extra_rows > 0:
        # Deterministic anticorrelated-ish filler (no RNG on purpose:
        # the fault-injection smoke compares servers bit-for-bit).
        rows += [(f"H{i}",
                  50.0 + (i * 37 % 400),
                  1.0 + (i * 17 % 40) / 10.0,
                  0.2 + (i * 29 % 100) / 10.0)
                 for i in range(extra_rows)]
    session = server.tenant("default").session
    session.create_table(
        "hotels",
        [("name", STRING, False), ("price", DOUBLE, False),
         ("rating", DOUBLE, False), ("distance", DOUBLE, False)],
        rows)


async def amain(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    config = SessionConfig(backend=args.backend,
                           num_workers=args.workers)
    if args.partitions:
        config = config.with_options(
            skyline_partitioning="random",
            skyline_partitions=args.partitions)
    server = SkylineServer(host=args.host, port=args.port,
                           max_inflight=args.max_inflight,
                           max_queue_per_tenant=args.max_queue,
                           default_config=config)
    if args.demo:
        load_demo(server, args.demo_rows)
    host, port = await server.start()
    print(f"repro.serve listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    try:
        return asyncio.run(amain(argv))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
