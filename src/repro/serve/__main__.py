"""``python -m repro.serve`` -- boot the serving endpoint.

Example::

    python -m repro.serve --port 7878 --max-inflight 8 --demo

``--demo`` registers a small ``hotels`` table so a fresh server has
something to query; ``--port 0`` (the default) picks a free port and
prints it.
"""

from __future__ import annotations

import argparse
import asyncio

from ..engine.types import DOUBLE, STRING
from .app import SkylineServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant skyline query server (JSON lines over "
                    "TCP).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="bound on concurrently executing queries")
    parser.add_argument("--demo", action="store_true",
                        help="pre-register a demo 'hotels' table")
    return parser


def load_demo(server: SkylineServer) -> None:
    session = server.tenant("default").session
    session.create_table(
        "hotels",
        [("name", STRING, False), ("price", DOUBLE, False),
         ("rating", DOUBLE, False), ("distance", DOUBLE, False)],
        [("A", 120.0, 4.5, 2.0), ("B", 90.0, 4.0, 5.5),
         ("C", 150.0, 3.0, 1.0), ("D", 85.0, 3.5, 6.0),
         ("E", 200.0, 5.0, 0.5)])


async def amain(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    server = SkylineServer(host=args.host, port=args.port,
                           max_inflight=args.max_inflight)
    if args.demo:
        load_demo(server)
    host, port = await server.start()
    print(f"repro.serve listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    try:
        return asyncio.run(amain(argv))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
