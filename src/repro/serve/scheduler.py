"""Admission control for the serving layer.

The server executes engine work on a thread pool; admitting every
connection at once would let one chatty tenant monopolise the workers
and thrash the shared caches.  :class:`AdmissionScheduler` bounds the
number of in-flight queries and, when there is a queue, drains it
round-robin *across tenants* (FIFO within a tenant): a tenant issuing
100 queries cannot starve one issuing a single query.

The scheduler is event-loop-local: every method must be called from
the loop's thread (the server does), so no locking is needed.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SchedulerStats:
    """Counters the server's ``stats`` op reports."""

    admitted: int = 0
    queued: int = 0
    max_queue_depth: int = 0
    total_wait_s: float = 0.0
    per_tenant: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "queued": self.queued,
                "max_queue_depth": self.max_queue_depth,
                "total_wait_s": self.total_wait_s,
                "per_tenant": dict(self.per_tenant)}


class AdmissionScheduler:
    """Bounded in-flight slots with per-tenant round-robin fairness."""

    def __init__(self, max_inflight: int = 4) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self._inflight = 0
        self._queues: "dict[str, deque[asyncio.Future]]" = {}
        self._ring: "deque[str]" = deque()
        self.stats = SchedulerStats()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    async def admit(self, tenant: str) -> float:
        """Wait for a slot; returns the time spent queued (seconds).

        Admission is immediate when a slot is free *and* nobody is
        queued (late arrivals must not overtake waiting tenants).
        """
        self.stats.admitted += 1
        self.stats.per_tenant[tenant] = \
            self.stats.per_tenant.get(tenant, 0) + 1
        if self._inflight < self.max_inflight and self.queue_depth == 0:
            self._inflight += 1
            return 0.0
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._ring.append(tenant)
        queue.append(future)
        self.stats.queued += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth,
                                         self.queue_depth)
        start = loop.time()
        try:
            await future
        except asyncio.CancelledError:
            # The waiter was cancelled (client gone).  If the slot was
            # already granted, hand it on; otherwise drop the request.
            if future.done() and not future.cancelled():
                self._inflight -= 1
                self._dispatch()
            else:
                try:
                    queue.remove(future)
                except ValueError:
                    pass
            raise
        waited = loop.time() - start
        self.stats.total_wait_s += waited
        return waited

    def release(self) -> None:
        """Return a slot and hand it to the next waiter, if any."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._inflight < self.max_inflight:
            future = self._next_waiter()
            if future is None:
                return
            self._inflight += 1
            future.set_result(None)

    def _next_waiter(self) -> "asyncio.Future | None":
        """Round-robin over tenants with queued work, FIFO within."""
        for _ in range(len(self._ring)):
            tenant = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues.get(tenant)
            while queue:
                future = queue.popleft()
                if not future.done():
                    return future
        return None
