"""Admission control for the serving layer.

The server executes engine work on a thread pool; admitting every
connection at once would let one chatty tenant monopolise the workers
and thrash the shared caches.  :class:`AdmissionScheduler` bounds the
number of in-flight queries and, when there is a queue, drains it
round-robin *across tenants* (FIFO within a tenant): a tenant issuing
100 queries cannot starve one issuing a single query.

Queueing is bounded too (graceful degradation): each tenant may hold at
most ``max_queue_per_tenant`` waiting requests, beyond which admission
*sheds* the request -- :class:`~repro.errors.ServerOverloadedError`
carrying a ``retry_after_s`` hint derived from an EWMA of recent
service times -- instead of queueing without limit until the process
dies.  Tenants are pruned from the round-robin ring as soon as their
queue drains, so a long-lived server visited by many one-shot tenants
does not accumulate dead ring entries (dispatch stays O(active
tenants)).

The scheduler is event-loop-local: every method must be called from
the loop's thread (the server does), so no locking is needed.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from ..errors import ServerOverloadedError


@dataclass
class SchedulerStats:
    """Counters the server's ``stats`` op reports."""

    admitted: int = 0
    queued: int = 0
    shed: int = 0
    max_queue_depth: int = 0
    total_wait_s: float = 0.0
    per_tenant: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "queued": self.queued,
                "shed": self.shed,
                "max_queue_depth": self.max_queue_depth,
                "total_wait_s": self.total_wait_s,
                "per_tenant": dict(self.per_tenant)}


class AdmissionScheduler:
    """Bounded in-flight slots with per-tenant round-robin fairness
    and bounded per-tenant queues (load shedding beyond)."""

    def __init__(self, max_inflight: int = 4,
                 max_queue_per_tenant: int = 16) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue_per_tenant < 1:
            raise ValueError("max_queue_per_tenant must be >= 1")
        self.max_inflight = max_inflight
        self.max_queue_per_tenant = max_queue_per_tenant
        self._inflight = 0
        self._queues: "dict[str, deque[asyncio.Future]]" = {}
        self._ring: "deque[str]" = deque()
        #: EWMA of observed per-query service time, feeding the
        #: ``retry_after_s`` hint on shed requests.
        self._service_ewma: "float | None" = None
        self.stats = SchedulerStats()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def tenant_count(self) -> int:
        """Tenants currently holding queued work (ring size)."""
        return len(self._queues)

    def note_service_time(self, seconds: float) -> None:
        """Feed one completed query's service time into the EWMA."""
        if seconds < 0:
            return
        if self._service_ewma is None:
            self._service_ewma = seconds
        else:
            self._service_ewma += 0.2 * (seconds - self._service_ewma)

    def retry_after_hint(self) -> float:
        """Suggested client backoff: the backlog ahead of a re-arrival
        (queued + running) times the recent per-query service time,
        spread over the in-flight slots."""
        per_query = self._service_ewma if self._service_ewma else 0.05
        backlog = max(1, self.queue_depth + self._inflight)
        return round(max(0.01, per_query * backlog / self.max_inflight), 4)

    async def admit(self, tenant: str) -> float:
        """Wait for a slot; returns the time spent queued (seconds).

        Admission is immediate when a slot is free *and* nobody is
        queued (late arrivals must not overtake waiting tenants).
        Raises :class:`~repro.errors.ServerOverloadedError` instead of
        queueing when the tenant's queue is already full.
        """
        if self._inflight < self.max_inflight and self.queue_depth == 0:
            self.stats.admitted += 1
            self.stats.per_tenant[tenant] = \
                self.stats.per_tenant.get(tenant, 0) + 1
            self._inflight += 1
            return 0.0
        queue = self._queues.get(tenant)
        if queue is not None and \
                len(queue) >= self.max_queue_per_tenant:
            self.stats.shed += 1
            raise ServerOverloadedError(
                f"tenant {tenant!r} has {len(queue)} queued requests "
                f"(limit {self.max_queue_per_tenant}); shedding",
                retry_after_s=self.retry_after_hint())
        self.stats.admitted += 1
        self.stats.per_tenant[tenant] = \
            self.stats.per_tenant.get(tenant, 0) + 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._ring.append(tenant)
        queue.append(future)
        self.stats.queued += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth,
                                         self.queue_depth)
        start = loop.time()
        try:
            await future
        except asyncio.CancelledError:
            # The waiter was cancelled (client gone).  If the slot was
            # already granted, hand it on; otherwise drop the request.
            if future.done() and not future.cancelled():
                self._inflight -= 1
                self._dispatch()
            else:
                try:
                    queue.remove(future)
                except ValueError:
                    pass
                self._prune(tenant)
            raise
        waited = loop.time() - start
        self.stats.total_wait_s += waited
        return waited

    def release(self) -> None:
        """Return a slot and hand it to the next waiter, if any."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1
        self._dispatch()

    def _prune(self, tenant: str) -> None:
        """Drop a drained tenant from the queue map and the ring."""
        queue = self._queues.get(tenant)
        if queue is not None and not queue:
            del self._queues[tenant]
            try:
                self._ring.remove(tenant)
            except ValueError:
                pass

    def _dispatch(self) -> None:
        while self._inflight < self.max_inflight:
            future = self._next_waiter()
            if future is None:
                return
            self._inflight += 1
            future.set_result(None)

    def _next_waiter(self) -> "asyncio.Future | None":
        """Round-robin over tenants with queued work, FIFO within.

        Tenants whose queue drains (served or all-cancelled) are
        pruned on the spot, keeping the ring at O(active tenants).
        """
        for _ in range(len(self._ring)):
            tenant = self._ring[0]
            queue = self._queues[tenant]
            future = None
            while queue:
                candidate = queue.popleft()
                if not candidate.done():
                    future = candidate
                    break
            if queue:
                self._ring.rotate(-1)
            else:
                self._ring.popleft()
                del self._queues[tenant]
            if future is not None:
                return future
        return None
