"""The four evaluated skyline strategies as pure functions (Section 6.3).

These are the algorithm cores used by the physical skyline operators; the
engine adds data distribution, metrics and plan integration on top.  They
are also directly usable as a standalone library ("give me the skyline of
these tuples") without touching SQL at all.

1. ``distributed_complete``    -- local BNL per partition, then global BNL
                                  over the union (Section 5.6).
2. ``non_distributed_complete``-- skip local skylines, single global BNL.
3. ``distributed_incomplete``  -- null-bitmap-partitioned local BNL, then
                                  flag-based all-pairs global (Section 5.7).
4. ``reference``               -- semantics of the plain-SQL NOT EXISTS
                                  rewrite (Listing 4): naive all-pairs.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

from .bnl import bnl_skyline
from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        dominates, dominates_incomplete,
                        equal_on_dimensions)
from .incomplete import flagged_global_skyline, local_skylines_incomplete
from .sfs import sfs_skyline


# ---------------------------------------------------------------------------
# Partition-task kernels
# ---------------------------------------------------------------------------
#
# Top-level (hence picklable) functions wrapping one partition's worth of
# skyline work.  The physical operators hand these to the execution
# backends: a process pool can ship ``(func, rows, dims, ...)`` to a
# worker, which is what makes the local-skyline phase truly parallel.
# Each returns ``(skyline_rows, window_peak, dominance_comparisons)``.


def local_bnl_task(rows: Sequence[Sequence],
                   dims: Sequence[BoundDimension],
                   distinct: bool = False,
                   check_deadline: Callable[[], None] | None = None
                   ) -> tuple[list, int, int]:
    """BNL skyline of one partition (complete data)."""
    stats = DominanceStats()
    skyline_rows = bnl_skyline(rows, dims, distinct=distinct, stats=stats,
                               check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def local_bnl_incomplete_task(rows: Sequence[Sequence],
                              dims: Sequence[BoundDimension],
                              check_deadline: Callable[[], None] | None = None
                              ) -> tuple[list, int, int]:
    """BNL skyline of one null-bitmap partition (incomplete data)."""
    stats = DominanceStats()
    skyline_rows = bnl_skyline(rows, dims, distinct=False, stats=stats,
                               dominance=dominates_incomplete,
                               check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def local_sfs_task(rows: Sequence[Sequence],
                   dims: Sequence[BoundDimension],
                   distinct: bool = False,
                   check_deadline: Callable[[], None] | None = None
                   ) -> tuple[list, int, int]:
    """Sort-Filter-Skyline of one partition (complete data)."""
    stats = DominanceStats()
    skyline_rows = sfs_skyline(rows, dims, distinct=distinct, stats=stats,
                               check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def global_flagged_task(rows: Sequence[Sequence],
                        dims: Sequence[BoundDimension],
                        distinct: bool = False,
                        check_deadline: Callable[[], None] | None = None
                        ) -> tuple[list, int, int]:
    """Flag-based all-pairs global skyline (incomplete data)."""
    stats = DominanceStats()
    skyline_rows = flagged_global_skyline(
        rows, dims, distinct=distinct, stats=stats,
        check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


class Algorithm(enum.Enum):
    """The algorithms compared in the paper's evaluation (Section 6.3)."""

    DISTRIBUTED_COMPLETE = "distributed complete"
    NON_DISTRIBUTED_COMPLETE = "non-distributed complete"
    DISTRIBUTED_INCOMPLETE = "distributed incomplete"
    REFERENCE = "reference"

    @classmethod
    def of(cls, value: "Algorithm | str") -> "Algorithm":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value or member.name == value.upper():
                return member
        raise ValueError(f"unknown algorithm {value!r}")


def make_dimensions(specs: Sequence[tuple[int, "DimensionKind | str"]]
                    ) -> list[BoundDimension]:
    """Convenience: ``[(index, 'min'), (index, 'max'), ...]`` to bound dims."""
    return [BoundDimension(index, DimensionKind.of(kind))
            for index, kind in specs]


def distributed_complete(partitions: Sequence[Sequence[Sequence]],
                         dims: Sequence[BoundDimension],
                         distinct: bool = False,
                         stats: DominanceStats | None = None,
                         check_deadline: Callable[[], None] | None = None
                         ) -> list[Sequence]:
    """Local BNL skyline per partition, global BNL over the union.

    The flagship algorithm: local skylines run in parallel (one task per
    partition), the global pass sees only the surviving tuples.
    """
    local_union: list[Sequence] = []
    for partition in partitions:
        local_union.extend(
            bnl_skyline(partition, dims, distinct=distinct, stats=stats,
                        check_deadline=check_deadline))
    return bnl_skyline(local_union, dims, distinct=distinct, stats=stats,
                       check_deadline=check_deadline)


def non_distributed_complete(partitions: Sequence[Sequence[Sequence]],
                             dims: Sequence[BoundDimension],
                             distinct: bool = False,
                             stats: DominanceStats | None = None,
                             check_deadline: Callable[[], None] | None = None
                             ) -> list[Sequence]:
    """Single global BNL over all tuples; gives up on parallelism."""
    rows: list[Sequence] = []
    for partition in partitions:
        rows.extend(partition)
    return bnl_skyline(rows, dims, distinct=distinct, stats=stats,
                       check_deadline=check_deadline)


def distributed_incomplete(partitions: Sequence[Sequence[Sequence]],
                           dims: Sequence[BoundDimension],
                           distinct: bool = False,
                           stats: DominanceStats | None = None,
                           check_deadline: Callable[[], None] | None = None
                           ) -> list[Sequence]:
    """Null-bitmap local skylines, flag-based all-pairs global skyline.

    Correct for incomplete data (and trivially for complete data, where
    it degenerates to a single partition and loses all parallelism --
    the behaviour Section 6.6 warns about).
    """
    rows: list[Sequence] = []
    for partition in partitions:
        rows.extend(partition)
    local = local_skylines_incomplete(rows, dims, distinct=False,
                                      stats=stats,
                                      check_deadline=check_deadline)
    return flagged_global_skyline(local, dims, distinct=distinct,
                                  stats=stats,
                                  check_deadline=check_deadline)


def reference(partitions: Sequence[Sequence[Sequence]],
              dims: Sequence[BoundDimension],
              distinct: bool = False,
              stats: DominanceStats | None = None,
              complete: bool = True,
              check_deadline: Callable[[], None] | None = None
              ) -> list[Sequence]:
    """Semantics of the plain-SQL NOT EXISTS rewrite (Listing 4).

    For every outer tuple, scan the whole relation for a dominating inner
    tuple -- the quadratic anti-join plan Spark derives from the rewritten
    query.  Serves as both the baseline algorithm and the correctness
    oracle.  Note the rewrite never applies DISTINCT semantics unless the
    caller adds them, matching the plain-SQL formulation.
    """
    rows: list[Sequence] = []
    for partition in partitions:
        rows.extend(partition)
    test = dominates if complete else dominates_incomplete
    comparisons = 0
    result: list[Sequence] = []
    for i, outer in enumerate(rows):
        if check_deadline is not None and i % 64 == 0:
            check_deadline()
        is_dominated = False
        for inner in rows:
            comparisons += 1
            if test(inner, outer, dims):
                is_dominated = True
                break
        if not is_dominated:
            result.append(outer)
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(len(rows))
    if distinct:
        deduped: list[Sequence] = []
        for row in result:
            if not any(equal_on_dimensions(row, kept, dims)
                       for kept in deduped):
                deduped.append(row)
        result = deduped
    return result


def skyline(rows: Sequence[Sequence], dims: Sequence[BoundDimension],
            distinct: bool = False, complete: bool = True,
            algorithm: "Algorithm | str" = Algorithm.DISTRIBUTED_COMPLETE,
            num_partitions: int = 1,
            stats: DominanceStats | None = None) -> list[Sequence]:
    """One-call skyline over a flat list of tuples.

    The friendly front door of the algorithm library: pick an algorithm,
    optionally a partition count (for the distributed variants), and get
    the skyline back.  ``complete=False`` forces null-aware semantics for
    the reference algorithm; the incomplete algorithm is always null-aware.
    """
    algorithm = Algorithm.of(algorithm)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    rows = list(rows)
    if num_partitions == 1:
        partitions: list[list[Sequence]] = [rows]
    else:
        size, extra = divmod(len(rows), num_partitions)
        partitions = []
        start = 0
        for i in range(num_partitions):
            end = start + size + (1 if i < extra else 0)
            partitions.append(rows[start:end])
            start = end
    if algorithm is Algorithm.DISTRIBUTED_COMPLETE:
        return distributed_complete(partitions, dims, distinct, stats)
    if algorithm is Algorithm.NON_DISTRIBUTED_COMPLETE:
        return non_distributed_complete(partitions, dims, distinct, stats)
    if algorithm is Algorithm.DISTRIBUTED_INCOMPLETE:
        return distributed_incomplete(partitions, dims, distinct, stats)
    return reference(partitions, dims, distinct, stats, complete=complete)


def sfs_complete(partitions: Sequence[Sequence[Sequence]],
                 dims: Sequence[BoundDimension],
                 distinct: bool = False,
                 stats: DominanceStats | None = None,
                 check_deadline: Callable[[], None] | None = None
                 ) -> list[Sequence]:
    """Distributed SFS: local SFS per partition, global SFS over the union.

    The sorting-based alternative the paper defers to future work;
    benchmarked in the ablation suite.
    """
    local_union: list[Sequence] = []
    for partition in partitions:
        local_union.extend(sfs_skyline(partition, dims, distinct=distinct,
                                       stats=stats,
                                       check_deadline=check_deadline))
    return sfs_skyline(local_union, dims, distinct=distinct, stats=stats,
                       check_deadline=check_deadline)
