"""Dominance testing between tuples (Definition 3.1 of the paper).

This module is the "new utility" of Section 5.5: it takes the values and
kinds of the skyline dimensions of two tuples and checks whether one
dominates the other.  It is deliberately free of any engine dependency so
the skyline algorithms in :mod:`repro.core` stay pure and testable.

Two semantics are provided:

* :func:`dominates` -- the classic definition for *complete* data
  (Definition 3.1): ``r`` dominates ``s`` iff all DIFF dimensions are
  equal, ``r`` is at least as good in every MIN/MAX dimension, and
  strictly better in at least one.

* :func:`dominates_incomplete` -- the null-restricted definition for
  *incomplete* data (Section 3): every comparison is restricted to the
  dimensions where *both* tuples are non-null.  This relation is not
  transitive and may contain cycles, which is why the global skyline of
  incomplete data needs the flag-based all-pairs algorithm
  (:mod:`repro.core.incomplete`).

**NaN and infinities (pinned semantics).**  Float special values follow
directly from the comparison-based definitions and are relied upon by
the vectorized kernels (:mod:`repro.core.vectorized`), so they are
contractual:

* A ``NaN`` value in a MIN/MAX dimension compares false in *both*
  directions, so that dimension neither blocks dominance nor counts as
  strictly better -- a NaN dimension carries *no information*, much
  like the null-restricted comparison skips a null dimension.  Unlike
  ``NULL``, ``NaN`` in a DIFF dimension is never equal to anything
  (``NaN != NaN``), so it blocks dominance there.
* ``+inf``/``-inf`` order normally (``-inf`` is the best MIN value and
  the worst MAX value).
* SFS presorting is unsound when monotone scores degenerate to NaN;
  :func:`repro.core.sfs.sfs_skyline` detects this and computes such
  inputs with BNL, keeping all kernels in agreement (regression-tested
  by ``tests/core/test_vectorized.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence


class DimensionKind(enum.Enum):
    """How a skyline dimension is optimized (Listing 3 of the paper)."""

    MIN = "MIN"
    MAX = "MAX"
    DIFF = "DIFF"

    @classmethod
    def of(cls, value: "DimensionKind | str") -> "DimensionKind":
        if isinstance(value, cls):
            return value
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown skyline dimension kind {value!r}; "
                f"expected MIN, MAX or DIFF") from None


@dataclass(frozen=True)
class BoundDimension:
    """A skyline dimension bound to a tuple ordinal.

    ``index`` is the position of the dimension's value inside the row
    tuples handed to the comparators; ``kind`` says whether lower values
    win (MIN), higher values win (MAX), or values must match (DIFF).
    """

    index: int
    kind: DimensionKind

    @property
    def is_diff(self) -> bool:
        return self.kind is DimensionKind.DIFF


@dataclass
class DominanceStats:
    """Counters for the cost analysis of Section 6.

    The paper identifies the number of dominance tests as the main cost
    factor of skyline computation; algorithms thread one of these through
    so benchmarks can report comparison counts alongside times.
    """

    comparisons: int = 0
    window_peak: int = 0
    partition_sizes: list[int] = field(default_factory=list)

    def note_window(self, size: int) -> None:
        if size > self.window_peak:
            self.window_peak = size

    def merge(self, other: "DominanceStats") -> None:
        self.comparisons += other.comparisons
        if other.window_peak > self.window_peak:
            self.window_peak = other.window_peak
        self.partition_sizes.extend(other.partition_sizes)


def dominates(r: Sequence, s: Sequence,
              dims: Sequence[BoundDimension]) -> bool:
    """True iff ``r`` dominates ``s`` under complete-data semantics.

    Assumes no nulls in the skyline dimensions; see
    :func:`dominates_incomplete` otherwise.  Comparisons are performed
    dimension by dimension in the given order, short-circuiting as soon as
    ``r`` is worse anywhere (the paper notes the dimension order can
    slightly influence dominance-check cost for exactly this reason).

    Equivalently: ``r`` dominates ``s`` iff ``not (rv > sv)`` holds on
    every MIN dimension (mirrored for MAX) and ``rv < sv`` on at least
    one -- the formulation the vectorized kernels use, which pins the
    NaN behaviour documented in the module docstring.
    """
    strictly_better = False
    for dim in dims:
        rv = r[dim.index]
        sv = s[dim.index]
        kind = dim.kind
        if kind is DimensionKind.DIFF:
            if rv != sv:
                return False
        elif kind is DimensionKind.MIN:
            if rv > sv:
                return False
            if rv < sv:
                strictly_better = True
        else:  # MAX
            if rv < sv:
                return False
            if rv > sv:
                strictly_better = True
    return strictly_better


def dominates_incomplete(r: Sequence, s: Sequence,
                         dims: Sequence[BoundDimension]) -> bool:
    """True iff ``r`` dominates ``s`` under incomplete-data semantics.

    Comparisons are restricted to the dimensions where both tuples are
    non-null (Section 3 of the paper, following [20]).  If no MIN/MAX
    dimension is comparable, ``r`` cannot dominate ``s``.
    """
    strictly_better = False
    for dim in dims:
        rv = r[dim.index]
        sv = s[dim.index]
        if rv is None or sv is None:
            continue
        kind = dim.kind
        if kind is DimensionKind.DIFF:
            if rv != sv:
                return False
        elif kind is DimensionKind.MIN:
            if rv > sv:
                return False
            if rv < sv:
                strictly_better = True
        else:  # MAX
            if rv < sv:
                return False
            if rv > sv:
                strictly_better = True
    return strictly_better


def compare(r: Sequence, s: Sequence, dims: Sequence[BoundDimension],
            complete: bool = True) -> int:
    """Three-way dominance comparison.

    Returns ``-1`` if ``r`` dominates ``s``, ``1`` if ``s`` dominates
    ``r`` and ``0`` if the tuples are incomparable (or equal).  Useful for
    algorithms that want both directions from a single pass.
    """
    test = dominates if complete else dominates_incomplete
    if test(r, s, dims):
        return -1
    if test(s, r, dims):
        return 1
    return 0


def null_bitmap(row: Sequence, dims: Sequence[BoundDimension]) -> int:
    """Bitmap index of null positions among the skyline dimensions.

    Bit ``i`` is set iff the row is null in the *i*-th skyline dimension.
    Rows with equal bitmaps have nulls in exactly the same dimensions, so
    dominance among them is transitive -- this is the partitioning key of
    the incomplete algorithm (Section 5.7).
    """
    bitmap = 0
    for i, dim in enumerate(dims):
        if row[dim.index] is None:
            bitmap |= 1 << i
    return bitmap


def has_null_dimension(row: Sequence,
                       dims: Sequence[BoundDimension]) -> bool:
    """True if the row is null in at least one skyline dimension."""
    return any(row[dim.index] is None for dim in dims)


def equal_on_dimensions(r: Sequence, s: Sequence,
                        dims: Sequence[BoundDimension]) -> bool:
    """True if two rows agree on every skyline dimension.

    Used to implement ``SKYLINE OF DISTINCT``: of several tuples with
    identical skyline-dimension values only one (arbitrary) is kept.
    """
    return all(r[dim.index] == s[dim.index] for dim in dims)
