"""Vectorized columnar skyline kernels (NumPy).

The scalar kernels (:mod:`repro.core.bnl`, :mod:`repro.core.sfs`,
:mod:`repro.core.incomplete`) compare one pair of tuples at a time in
Python -- the hottest loop of the whole engine.  This module re-expresses
the same algorithms over *columns*: a partition's skyline dimensions are
converted once into a ``float64`` matrix (MAX dimensions negated so
smaller is uniformly better, SQL nulls encoded as NaN plus an explicit
null mask) and dominance is evaluated block-wise with NumPy broadcasting.

Semantics are pinned to the scalar reference implementation:

* ``r`` dominates ``s`` iff ``all(~(r > s))`` and ``any(r < s)`` over the
  oriented value dimensions.  Written this way the kernels inherit the
  scalar NaN/±inf behaviour for free: ``NaN > x`` and ``NaN < x`` are
  both false, so a NaN dimension neither blocks dominance nor
  contributes strictness -- exactly what
  :func:`repro.core.dominance.dominates` does (see the "NaN and
  infinities" note there).  ``±inf`` orders normally and vectorizes
  fully.  Because NaN *data* additionally makes dominance
  non-transitive (window results become order-dependent), the windowed
  BNL/SFS kernels route NaN-containing partitions through the scalar
  implementation so both stay bit-identical; the all-pairs flagged
  kernel needs no transitivity and vectorizes NaN data directly.
* SQL ``NULL`` maps to NaN in the matrix, which makes the *same* formula
  implement the null-restricted comparison of
  :func:`~repro.core.dominance.dominates_incomplete`: a dimension where
  either side is null is skipped.  The separate null mask keeps
  ``NULL`` distinguishable from genuine NaN data for DISTINCT equality
  (``NULL = NULL`` holds there, ``NaN = NaN`` does not).
* DIFF dimensions never vectorize as numbers; rows are grouped by their
  DIFF values and the numeric kernel runs per group (dominance requires
  equal DIFF values, so groups are independent).

Every public kernel transparently **falls back to the scalar
implementation** when NumPy is unavailable, when a dimension holds
non-numeric values, or when integers exceed the exactly-representable
``float64`` range (|v| > 2**53) -- the scalar kernels therefore remain
the reference semantics, and the differential suite
(``tests/integration/test_differential.py``) asserts agreement.

Set ``REPRO_DISABLE_NUMPY=1`` to force the pure-Python fallbacks even
with NumPy installed (used by CI to keep the fallback path honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

# The engine's batch module owns the single columnization point (the
# pinned float64 + NaN + null-mask encoding), the float64-exact bound
# (MAX_EXACT_INT) and the NumPy handle, including the
# REPRO_DISABLE_NUMPY escape hatch; HAVE_NUMPY is re-exported here for
# backwards compatibility.
from ..engine.batch import (HAVE_NUMPY, ColumnBatch,
                            encode_numeric_column, np)
from .bnl import bnl_skyline
from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        dominates_incomplete)
from .incomplete import flagged_global_skyline
from .sfs import sfs_skyline

#: Rows folded into the window per kernel step.  Empirically the sweet
#: spot across the generator distributions: larger blocks amortize the
#: NumPy call overhead but pay a quadratic intra-block pass that
#: short-circuit-free vectorization cannot skip.
BLOCK_ROWS = 256

#: Window rows broadcast against one block at a time (bounds the
#: temporary (chunk x block x dims) comparison arrays to a few MB).
WINDOW_CHUNK = 2048

def numpy_available() -> bool:
    """True when the vectorized kernels are usable in this process."""
    return HAVE_NUMPY


# ---------------------------------------------------------------------------
# Columnization
# ---------------------------------------------------------------------------


@dataclass
class ColumnBlock:
    """A partition's skyline dimensions in columnar form.

    ``values`` is ``(n, k)`` float64 over the MIN/MAX dimensions,
    oriented so smaller is better and with nulls encoded as NaN;
    ``null_mask`` marks the encoded nulls (NaN *data* stays unmasked);
    ``diff_keys`` holds one tuple of raw DIFF-dimension values per row
    (``None`` when the query has no DIFF dimensions).
    """

    values: "np.ndarray"
    null_mask: "np.ndarray"
    diff_keys: list[tuple] | None

    @property
    def num_rows(self) -> int:
        return len(self.values)

    @property
    def has_nan_data(self) -> bool:
        """True when a MIN/MAX dimension holds genuine NaN *data*.

        NaN makes dominance non-transitive (a NaN dimension carries no
        information, like a null), so window-based kernels become
        order-dependent -- the vectorized BNL/SFS paths defer to the
        scalar kernels to stay bit-identical with their documented
        window semantics.  The flag-based all-pairs kernel needs no
        transitivity and keeps vectorizing such data.
        """
        return bool((np.isnan(self.values) & ~self.null_mask).any())

    def diff_groups(self) -> list["np.ndarray"]:
        """Row-index arrays, one per DIFF-value group (insertion order)."""
        if self.diff_keys is None:
            return [np.arange(self.num_rows)]
        groups: dict[tuple, list[int]] = {}
        for i, key in enumerate(self.diff_keys):
            groups.setdefault(key, []).append(i)
        return [np.asarray(idx) for idx in groups.values()]

    def diff_keys_have_null(self) -> bool:
        return self.diff_keys is not None and any(
            v is None for key in self.diff_keys for v in key)

    def diff_keys_have_nan(self) -> bool:
        """Hash-based DIFF grouping cannot express ``NaN != NaN``."""
        return self.diff_keys is not None and any(
            isinstance(v, float) and v != v
            for key in self.diff_keys for v in key)

    def uniform_null_pattern(self) -> bool:
        """True when every row is null in the same value dimensions."""
        if not self.num_rows:
            return True
        return bool((self.null_mask == self.null_mask[0]).all())


def _empty_block(num_value_dims: int, has_diff: bool) -> ColumnBlock:
    return ColumnBlock(np.zeros((0, num_value_dims)),
                       np.zeros((0, num_value_dims), dtype=bool),
                       [] if has_diff else None)


def columnize(rows: Sequence[Sequence],
              dims: Sequence[BoundDimension]) -> ColumnBlock | None:
    """Convert rows to a :class:`ColumnBlock`, or ``None`` when the data
    cannot be vectorized faithfully (non-numeric values, ints beyond the
    float64-exact range, or NumPy missing).

    The per-column encoding is the engine-wide single columnization
    point, :func:`repro.engine.batch.encode_numeric_column`; this
    function adds the skyline specifics (MAX negation so smaller is
    uniformly better, DIFF keys kept as raw tuples).
    """
    if np is None:
        return None
    rows = rows if isinstance(rows, list) else list(rows)
    value_dims = [d for d in dims if d.kind is not DimensionKind.DIFF]
    diff_dims = [d for d in dims if d.kind is DimensionKind.DIFF]
    n = len(rows)
    if n == 0:
        return _empty_block(len(value_dims), bool(diff_dims))
    columns = list(zip(*rows))
    values = np.empty((n, len(value_dims)), dtype=np.float64)
    null_mask = np.zeros((n, len(value_dims)), dtype=bool)
    for j, dim in enumerate(value_dims):
        encoded = encode_numeric_column(columns[dim.index])
        if encoded is None:
            return None
        values[:, j], null_mask[:, j] = encoded
        if dim.kind is DimensionKind.MAX:
            values[:, j] = -values[:, j]
    diff_keys = None
    if diff_dims:
        diff_keys = [tuple(row[d.index] for d in diff_dims)
                     for row in rows]
    return ColumnBlock(values, null_mask, diff_keys)


def columnize_batch(batch: ColumnBatch,
                    dims: Sequence[BoundDimension]) -> ColumnBlock | None:
    """Build a :class:`ColumnBlock` straight from an engine
    :class:`~repro.engine.batch.ColumnBatch` -- no per-row work.

    The batch data plane already stores numeric columns as typed
    arrays, so the skyline kernels can assemble their oriented value
    matrix with array casts instead of re-columnizing the partition's
    rows.  Columns the batch kept as Python lists go through the shared
    row encoder; a column that cannot encode faithfully returns
    ``None`` (scalar fallback), exactly like :func:`columnize`.
    """
    if np is None:
        return None
    value_dims = [d for d in dims if d.kind is not DimensionKind.DIFF]
    diff_dims = [d for d in dims if d.kind is DimensionKind.DIFF]
    n = batch.num_rows
    if n == 0:
        return _empty_block(len(value_dims), bool(diff_dims))
    values = np.empty((n, len(value_dims)), dtype=np.float64)
    null_mask = np.zeros((n, len(value_dims)), dtype=bool)
    for j, dim in enumerate(value_dims):
        encoded = batch.column(dim.index).as_f8()
        if encoded is None:
            return None
        values[:, j], null_mask[:, j] = encoded
        if dim.kind is DimensionKind.MAX:
            values[:, j] = -values[:, j]
    diff_keys = None
    if diff_dims:
        diff_columns = [batch.column(d.index).to_values()
                        for d in diff_dims]
        diff_keys = list(zip(*diff_columns))
    return ColumnBlock(values, null_mask, diff_keys)


# ---------------------------------------------------------------------------
# Block dominance primitives
# ---------------------------------------------------------------------------


def _pairwise_dominated(by: "np.ndarray", cand: "np.ndarray"
                        ) -> "np.ndarray":
    """``(len(by), len(cand))`` mask: ``by[i]`` dominates ``cand[j]``.

    Iterates over the (few) dimensions with 2-D comparisons instead of
    one 3-D broadcast + axis reduction -- the reduction over a tiny
    last axis is the slow path in NumPy.
    """
    k = by.shape[1]
    shape = (len(by), len(cand))
    worse = np.zeros(shape, dtype=bool)    # by worse anywhere
    better = np.zeros(shape, dtype=bool)   # by strictly better anywhere
    for j in range(k):
        b = by[:, j][:, None]
        c = cand[None, :, j]
        worse |= b > c
        better |= b < c
    return ~worse & better


def _dominated_by(cand: "np.ndarray", by: "np.ndarray",
                  stats: DominanceStats | None = None) -> "np.ndarray":
    """Mask over ``cand`` rows dominated by *some* row of ``by``.

    Chunked over ``by`` so the broadcast temporaries stay bounded;
    already-dominated candidates drop out of later chunks.
    """
    out = np.zeros(len(cand), dtype=bool)
    if not len(cand) or not len(by):
        return out
    for start in range(0, len(by), WINDOW_CHUNK):
        chunk = by[start:start + WINDOW_CHUNK]
        alive = np.flatnonzero(~out)
        if not len(alive):
            break
        dominated = _pairwise_dominated(chunk, cand[alive])
        if stats is not None:
            stats.comparisons += len(chunk) * len(alive)
        out[alive] |= dominated.any(axis=0)
    return out


def _block_skyline_indices(values: "np.ndarray",
                           stats: DominanceStats | None = None,
                           check_deadline: Callable[[], None] | None = None
                           ) -> "np.ndarray":
    """Indices (ascending) of the skyline rows of ``values``.

    Block-BNL: fold :data:`BLOCK_ROWS` rows at a time into a columnar
    window -- dominated newcomers are dropped, newcomers that dominate
    window rows evict them, survivors are appended.  Requires a
    transitive dominance relation over the rows (guaranteed per
    DIFF/null-bitmap group).
    """
    n = len(values)
    window_vals = values[:0]
    window_idx = np.zeros(0, dtype=np.intp)
    peak = 0
    for start in range(0, n, BLOCK_ROWS):
        if check_deadline is not None:
            check_deadline()
        block = values[start:start + BLOCK_ROWS]
        keep = ~_dominated_by(block, window_vals, stats)
        survivors = block[keep]
        if len(survivors) > 1:
            # Intra-block pass: with rows in input order, any block row
            # dominated only by other (even dominated) block rows is
            # also dominated by a surviving one, by transitivity.
            dom = _pairwise_dominated(survivors, survivors)
            if stats is not None:
                stats.comparisons += len(survivors) * (len(survivors) - 1)
            inner_keep = ~dom.any(axis=0)
            chosen = np.flatnonzero(keep)[inner_keep]
        else:
            chosen = np.flatnonzero(keep)
        survivors = block[chosen]
        if len(window_idx) and len(survivors):
            evict = _dominated_by(window_vals, survivors, stats)
            if evict.any():
                window_vals = window_vals[~evict]
                window_idx = window_idx[~evict]
        if len(survivors):
            window_vals = np.concatenate([window_vals, survivors])
            window_idx = np.concatenate([window_idx, chosen + start])
        peak = max(peak, len(window_idx))
    if stats is not None:
        stats.note_window(peak)
    return np.sort(window_idx)


def _flagged_indices(values: "np.ndarray",
                     stats: DominanceStats | None = None,
                     check_deadline: Callable[[], None] | None = None
                     ) -> "np.ndarray":
    """Indices surviving the flag-based all-pairs test (Section 5.7).

    Unlike the window kernel, dominated rows are only *flagged* -- every
    row keeps eliminating others until all pairs were examined, which is
    what makes the result correct under cyclic (incomplete) dominance.
    """
    n = len(values)
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, BLOCK_ROWS):
        if check_deadline is not None:
            check_deadline()
        block = values[start:start + BLOCK_ROWS]
        # Flag semantics require flagged rows to keep eliminating (the
        # ``by`` side stays the full block) but never need them
        # re-*tested* -- restrict the candidate side to unflagged rows.
        alive = np.flatnonzero(~dominated)
        if not len(alive):
            break
        dominated[alive] |= _dominated_by(values[alive], block, stats)
    if stats is not None:
        stats.note_window(n)
    return np.flatnonzero(~dominated)


# ---------------------------------------------------------------------------
# DISTINCT handling
# ---------------------------------------------------------------------------


def _distinct_indices(indices: Sequence[int], rows: Sequence[Sequence],
                      dims: Sequence[BoundDimension]) -> list[int]:
    """First index per equal-skyline-dimension-values class.

    Equality follows :func:`~repro.core.dominance.equal_on_dimensions`:
    raw ``==`` per dimension, so ``NULL = NULL`` holds while NaN is
    never equal to anything (including itself) -- NaN values get a
    per-occurrence sentinel so hashing cannot merge them.
    """
    seen: set = set()
    kept: list[int] = []
    for i in indices:
        row = rows[i]
        key = tuple(
            object() if isinstance(v, float) and v != v else v
            for v in (row[d.index] for d in dims))
        if key in seen:
            continue
        seen.add(key)
        kept.append(i)
    return kept


# ---------------------------------------------------------------------------
# The kernels
# ---------------------------------------------------------------------------


def vec_bnl_skyline(rows: Sequence[Sequence],
                    dims: Sequence[BoundDimension],
                    distinct: bool = False,
                    stats: DominanceStats | None = None,
                    check_deadline: Callable[[], None] | None = None
                    ) -> list[Sequence]:
    """Block-BNL skyline; multiset-identical to
    :func:`~repro.core.bnl.bnl_skyline` on complete data.

    Falls back to the scalar kernel when the data cannot be columnized.
    ``stats.comparisons`` counts *evaluated* directed dominance tests --
    vectorized blocks cannot short-circuit inside a pair, so the count
    is comparable but not identical to the scalar kernel's.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    block = columnize(rows, dims)
    if block is None or bool(block.null_mask.any()) or \
            block.has_nan_data or block.diff_keys_have_nan():
        # NaN data: dominance loses transitivity, so the window result
        # is order-dependent -- defer to the scalar window semantics.
        # Nulls: the complete-data scalar kernel raises TypeError on
        # None comparisons; encoding them as NaN would silently switch
        # to null-skipping semantics, so nulls defer too.
        return bnl_skyline(rows, dims, distinct=distinct, stats=stats,
                           check_deadline=check_deadline)
    indices: list[int] = []
    for group in block.diff_groups():
        chosen = _block_skyline_indices(block.values[group], stats,
                                        check_deadline)
        indices.extend(group[chosen].tolist())
    indices.sort()
    if distinct:
        indices = _distinct_indices(indices, rows, dims)
    return [rows[i] for i in indices]


def vec_bnl_skyline_incomplete(rows: Sequence[Sequence],
                               dims: Sequence[BoundDimension],
                               stats: DominanceStats | None = None,
                               check_deadline: Callable[[], None] | None
                               = None) -> list[Sequence]:
    """Local skyline of one *null-bitmap partition* (Section 5.7).

    Only valid -- like the window trick itself -- when every row is null
    in the same skyline dimensions; heterogeneous inputs fall back to
    the scalar windowed kernel, whose result then depends on window
    dynamics exactly as the scalar library documents.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    block = columnize(rows, dims)
    if block is None or not block.uniform_null_pattern() or \
            block.has_nan_data or block.diff_keys_have_null() or \
            block.diff_keys_have_nan():
        # Null DIFF keys: the null-restricted comparison skips a null
        # DIFF dimension (allowing cross-group dominance), which hash
        # grouping cannot express -- defer to the scalar kernel.
        return bnl_skyline(rows, dims, distinct=False, stats=stats,
                           dominance=dominates_incomplete,
                           check_deadline=check_deadline)
    indices: list[int] = []
    for group in block.diff_groups():
        chosen = _block_skyline_indices(block.values[group], stats,
                                        check_deadline)
        indices.extend(group[chosen].tolist())
    indices.sort()
    return [rows[i] for i in indices]


def _monotone_scores(values: "np.ndarray") -> "np.ndarray":
    """Per-row monotone scores, summed strictly left to right.

    Matches :func:`repro.core.sfs.monotone_score` bit for bit (the
    columns are already oriented), so scalar and vectorized SFS sort --
    and hence pick DISTINCT representatives -- identically.
    """
    if not values.shape[1]:
        return np.zeros(len(values))
    with np.errstate(invalid="ignore"):  # +inf + -inf -> NaN is expected
        scores = values[:, 0].copy()
        for j in range(1, values.shape[1]):
            scores += values[:, j]
    return scores


def _evict_rounding_ties(kept: list[int], values: "np.ndarray",
                         scores: "np.ndarray",
                         stats: DominanceStats | None) -> list[int]:
    """Drop survivors dominated by an equal-score survivor.

    Exact monotone scores are strictly increasing under dominance, but
    float rounding can *tie* a dominator with its victim; when such a
    tie run straddles a chunk boundary the windowed scan misses the
    pair.  Every false survivor provably has a surviving equal-score
    dominator (true-skyline rows always survive the scan), so one
    pairwise pass per equal-score run of survivors restores exactness.
    ``kept`` is in score order, so runs are contiguous.
    """
    if len(kept) < 2:
        return kept
    kept_arr = np.asarray(kept)
    kept_scores = scores[kept_arr]
    if len(np.unique(kept_scores)) == len(kept_arr):
        return kept
    cleaned: list[int] = []
    i = 0
    while i < len(kept_arr):
        j = i + 1
        while j < len(kept_arr) and kept_scores[j] == kept_scores[i]:
            j += 1
        if j - i > 1:
            run = kept_arr[i:j]
            dominated = _dominated_by(values[run], values[run], stats)
            cleaned.extend(run[~dominated].tolist())
        else:
            cleaned.append(int(kept_arr[i]))
        i = j
    return cleaned


def vec_sfs_skyline(rows: Sequence[Sequence],
                    dims: Sequence[BoundDimension],
                    distinct: bool = False,
                    stats: DominanceStats | None = None,
                    check_deadline: Callable[[], None] | None = None
                    ) -> list[Sequence]:
    """Sort-Filter-Skyline over columns.

    Rows are ordered by the monotone score (sum of oriented values) with
    a stable sort, so DISTINCT keeps the same representative as the
    scalar kernel.  NaN scores make presorting unsound (the monotone
    property fails), so -- matching the scalar kernel's pinned
    behaviour -- such inputs are computed with the BNL kernel instead.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    block = columnize(rows, dims)
    if block is None or bool(block.null_mask.any()) or \
            block.has_nan_data or block.diff_keys_have_nan():
        # Scalar SFS detects the NaN scores and routes through scalar
        # BNL -- the pinned behaviour both implementations share.  Null
        # values defer like in :func:`vec_bnl_skyline`: the scalar
        # complete-data kernel raises TypeError on them.
        return sfs_skyline(rows, dims, distinct=distinct, stats=stats,
                           check_deadline=check_deadline)
    all_scores = _monotone_scores(block.values)
    if not np.isfinite(all_scores).all():
        # Pinned behaviour shared with the scalar kernel: *any*
        # non-finite score (NaN, or absorbing ±inf tying a dominator
        # with its victim) makes presorting unsound -- the whole input
        # is computed with BNL, like scalar SFS routes it through
        # scalar BNL (same rows, same input-order output).
        return vec_bnl_skyline(rows, dims, distinct=distinct,
                               stats=stats, check_deadline=check_deadline)
    indices = _sfs_indices(block, all_scores, rows, dims, distinct,
                           stats, check_deadline)
    return [rows[i] for i in indices]


def _sfs_indices(block: ColumnBlock, all_scores: "np.ndarray",
                 rows: Sequence[Sequence],
                 dims: Sequence[BoundDimension], distinct: bool,
                 stats: DominanceStats | None,
                 check_deadline: Callable[[], None] | None) -> list[int]:
    """The SFS index selection shared by the row and batch kernels.

    ``rows`` is only consulted for DISTINCT dedup (raw dimension
    values); callers guarantee finite scores and a NaN/null-free block.
    Returns indices in global score order.
    """
    indices: list[int] = []
    for group in block.diff_groups():
        values = block.values[group]
        order = np.argsort(all_scores[group], kind="stable")
        ordered = values[order]
        kept_local: list[int] = []
        window = ordered[:0]
        for start in range(0, len(ordered), BLOCK_ROWS):
            if check_deadline is not None:
                check_deadline()
            chunk = ordered[start:start + BLOCK_ROWS]
            keep = ~_dominated_by(chunk, window, stats)
            if len(chunk) > 1:
                dom = _pairwise_dominated(chunk, chunk)
                if stats is not None:
                    stats.comparisons += len(chunk) * (len(chunk) - 1)
                keep &= ~dom.any(axis=0)
            chosen = np.flatnonzero(keep)
            window = np.concatenate([window, chunk[chosen]])
            kept_local.extend((group[order[chosen + start]]).tolist())
        if stats is not None:
            stats.note_window(len(window))
        kept_local = _evict_rounding_ties(kept_local, block.values,
                                          all_scores, stats)
        # kept_local is in score order -- the order DISTINCT dedup must
        # see to pick the scalar kernel's representative.
        if distinct:
            kept_local = _distinct_indices(kept_local, rows, dims)
        indices.extend(kept_local)
    # DISTINCT dedup happened per DIFF group, which is exact: equal
    # skyline-dimension values imply an equal DIFF key.  Scalar SFS
    # emits the *global* score order (stable: ties in input order), so
    # re-rank the per-group survivors the same way.
    rank = np.empty(len(all_scores), dtype=np.intp)
    rank[np.argsort(all_scores, kind="stable")] = np.arange(
        len(all_scores))
    indices.sort(key=lambda i: rank[i])
    return indices


def vec_flagged_global_skyline(rows: Sequence[Sequence],
                               dims: Sequence[BoundDimension],
                               distinct: bool = False,
                               stats: DominanceStats | None = None,
                               check_deadline: Callable[[], None] | None
                               = None) -> list[Sequence]:
    """Flag-based all-pairs global skyline for incomplete data.

    Correct under cyclic dominance: rows are flagged, never deleted
    early.  Nulls in DIFF dimensions make the per-DIFF-group
    decomposition unsound (a null DIFF value compares equal-restricted
    against *every* group), so such inputs fall back to the scalar
    kernel.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    block = columnize(rows, dims)
    if block is None or block.diff_keys_have_null() or \
            block.diff_keys_have_nan():
        return flagged_global_skyline(rows, dims, distinct=distinct,
                                      stats=stats,
                                      check_deadline=check_deadline)
    indices: list[int] = []
    for group in block.diff_groups():
        chosen = _flagged_indices(block.values[group], stats,
                                  check_deadline)
        indices.extend(group[chosen].tolist())
    indices.sort()
    if distinct:
        indices = _distinct_indices(indices, rows, dims)
    return [rows[i] for i in indices]


# ---------------------------------------------------------------------------
# Partition-task kernels (picklable, engine-facing)
# ---------------------------------------------------------------------------
#
# Same contract as the scalar tasks in :mod:`repro.core.algorithms`:
# top-level functions returning ``(rows, window_peak, comparisons)``,
# shippable to process-pool workers.


def vec_local_bnl_task(rows: Sequence[Sequence],
                       dims: Sequence[BoundDimension],
                       distinct: bool = False,
                       check_deadline: Callable[[], None] | None = None
                       ) -> tuple[list, int, int]:
    """Vectorized BNL skyline of one partition (complete data)."""
    stats = DominanceStats()
    skyline_rows = vec_bnl_skyline(rows, dims, distinct=distinct,
                                   stats=stats,
                                   check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def vec_local_bnl_incomplete_task(rows: Sequence[Sequence],
                                  dims: Sequence[BoundDimension],
                                  check_deadline: Callable[[], None] | None
                                  = None) -> tuple[list, int, int]:
    """Vectorized BNL skyline of one null-bitmap partition."""
    stats = DominanceStats()
    skyline_rows = vec_bnl_skyline_incomplete(
        rows, dims, stats=stats, check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def vec_local_sfs_task(rows: Sequence[Sequence],
                       dims: Sequence[BoundDimension],
                       distinct: bool = False,
                       check_deadline: Callable[[], None] | None = None
                       ) -> tuple[list, int, int]:
    """Vectorized Sort-Filter-Skyline of one partition."""
    stats = DominanceStats()
    skyline_rows = vec_sfs_skyline(rows, dims, distinct=distinct,
                                   stats=stats,
                                   check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


def vec_global_flagged_task(rows: Sequence[Sequence],
                            dims: Sequence[BoundDimension],
                            distinct: bool = False,
                            check_deadline: Callable[[], None] | None = None
                            ) -> tuple[list, int, int]:
    """Vectorized flag-based all-pairs global skyline."""
    stats = DominanceStats()
    skyline_rows = vec_flagged_global_skyline(
        rows, dims, distinct=distinct, stats=stats,
        check_deadline=check_deadline)
    return skyline_rows, stats.window_peak, stats.comparisons


# ---------------------------------------------------------------------------
# Batch-consuming task kernels (the columnar data plane)
# ---------------------------------------------------------------------------
#
# Same contract as the row task kernels -- picklable top-level
# functions returning ``(result, window_peak, comparisons)`` -- but the
# partition arrives as a :class:`~repro.engine.batch.ColumnBatch` and
# the result is returned as one: the oriented value matrix is assembled
# from the batch's typed columns (no per-row columnization) and the
# surviving rows are selected by index, so the batch plane never
# materialises rows unless a guard forces the scalar fallback.


def _grouped_indices(block: ColumnBlock, select: Callable,
                     stats: DominanceStats | None,
                     check_deadline: Callable[[], None] | None
                     ) -> list[int]:
    """Per-DIFF-group index selection, merged in ascending order."""
    indices: list[int] = []
    for group in block.diff_groups():
        chosen = select(block.values[group], stats, check_deadline)
        indices.extend(group[chosen].tolist())
    indices.sort()
    return indices


def _batch_fallback(batch: ColumnBatch, kernel: Callable,
                    **kwargs) -> ColumnBatch:
    """Run a row kernel on the batch's row view and re-batch."""
    result = kernel(batch.to_rows(), **kwargs)
    return ColumnBatch.from_rows(result, batch.num_columns)


def vec_local_bnl_batch_task(batch: ColumnBatch,
                             dims: Sequence[BoundDimension],
                             distinct: bool = False,
                             check_deadline: Callable[[], None] | None
                             = None) -> tuple[ColumnBatch, int, int]:
    """Block-BNL skyline of one batch partition (complete data)."""
    stats = DominanceStats()
    block = columnize_batch(batch, dims)
    if block is None or bool(block.null_mask.any()) or \
            block.has_nan_data or block.diff_keys_have_nan():
        # Same guards as :func:`vec_bnl_skyline`: nulls and NaN data
        # defer to the scalar window semantics.
        result = _batch_fallback(
            batch, bnl_skyline, dims=dims, distinct=distinct,
            stats=stats, check_deadline=check_deadline)
        return result, stats.window_peak, stats.comparisons
    indices = _grouped_indices(block, _block_skyline_indices, stats,
                               check_deadline)
    if distinct:
        indices = _distinct_indices(indices, batch.to_rows(), dims)
    return batch.take(indices), stats.window_peak, stats.comparisons


def vec_local_bnl_incomplete_batch_task(
        batch: ColumnBatch, dims: Sequence[BoundDimension],
        check_deadline: Callable[[], None] | None = None
        ) -> tuple[ColumnBatch, int, int]:
    """Skyline of one *null-bitmap-partitioned* batch (Section 5.7).

    Same guards as :func:`vec_bnl_skyline_incomplete`: heterogeneous
    null patterns, NaN data and null/NaN DIFF keys defer to the scalar
    null-restricted kernel on the row view.
    """
    stats = DominanceStats()
    block = columnize_batch(batch, dims)
    if block is None or not block.uniform_null_pattern() or \
            block.has_nan_data or block.diff_keys_have_null() or \
            block.diff_keys_have_nan():
        result = _batch_fallback(
            batch, bnl_skyline, dims=dims, distinct=False, stats=stats,
            dominance=dominates_incomplete, check_deadline=check_deadline)
        return result, stats.window_peak, stats.comparisons
    indices = _grouped_indices(block, _block_skyline_indices, stats,
                               check_deadline)
    return batch.take(indices), stats.window_peak, stats.comparisons


def batch_null_bitmaps(batch: ColumnBatch,
                       dims: Sequence[BoundDimension]) -> list[int]:
    """Per-row null bitmaps over the skyline dimensions, columnar.

    Matches :func:`repro.core.dominance.null_bitmap` bit for bit: bit
    ``i`` set iff the row is null in the *i*-th dimension of ``dims``.
    Computed from the batch's null masks in one vectorized pass.
    """
    acc = np.zeros(batch.num_rows, dtype=np.int64)
    for i, dim in enumerate(dims):
        flags = batch.column(dim.index).null_flags()
        if isinstance(flags, list):
            flags = np.asarray(flags, dtype=bool)
        acc |= flags.astype(np.int64) << i
    return acc.tolist()


def vec_local_sfs_batch_task(batch: ColumnBatch,
                             dims: Sequence[BoundDimension],
                             distinct: bool = False,
                             check_deadline: Callable[[], None] | None
                             = None) -> tuple[ColumnBatch, int, int]:
    """Sort-Filter-Skyline of one batch partition."""
    stats = DominanceStats()
    block = columnize_batch(batch, dims)
    if block is None or bool(block.null_mask.any()) or \
            block.has_nan_data or block.diff_keys_have_nan():
        result = _batch_fallback(
            batch, sfs_skyline, dims=dims, distinct=distinct,
            stats=stats, check_deadline=check_deadline)
        return result, stats.window_peak, stats.comparisons
    all_scores = _monotone_scores(block.values)
    if not np.isfinite(all_scores).all():
        # Pinned SFS behaviour: non-finite scores make presorting
        # unsound, the whole input computes with BNL instead.
        indices = _grouped_indices(block, _block_skyline_indices, stats,
                                   check_deadline)
        if distinct:
            indices = _distinct_indices(indices, batch.to_rows(), dims)
        return batch.take(indices), stats.window_peak, stats.comparisons
    indices = _sfs_indices(block, all_scores, batch.to_rows() if distinct
                           else (), dims, distinct, stats, check_deadline)
    return batch.take(indices), stats.window_peak, stats.comparisons


def vec_global_flagged_batch_task(batch: ColumnBatch,
                                  dims: Sequence[BoundDimension],
                                  distinct: bool = False,
                                  check_deadline: Callable[[], None] | None
                                  = None) -> tuple[ColumnBatch, int, int]:
    """Flag-based all-pairs global skyline of one batch."""
    stats = DominanceStats()
    block = columnize_batch(batch, dims)
    if block is None or block.diff_keys_have_null() or \
            block.diff_keys_have_nan():
        result = _batch_fallback(
            batch, flagged_global_skyline, dims=dims, distinct=distinct,
            stats=stats, check_deadline=check_deadline)
        return result, stats.window_peak, stats.comparisons
    indices = _grouped_indices(block, _flagged_indices, stats,
                               check_deadline)
    if distinct:
        indices = _distinct_indices(indices, batch.to_rows(), dims)
    return batch.take(indices), stats.window_peak, stats.comparisons


@dataclass(frozen=True)
class KernelSet:
    """The partition-task kernels one physical plan executes with.

    The ``*_batch`` kernels consume and produce
    :class:`~repro.engine.batch.ColumnBatch`es for the columnar data
    plane; they exist only in the vectorized set (``None`` in the
    scalar set, whose operators exchange rows).
    """

    name: str
    local_bnl: Callable
    local_bnl_incomplete: Callable
    local_sfs: Callable
    global_flagged: Callable
    local_bnl_batch: Callable | None = None
    local_bnl_incomplete_batch: Callable | None = None
    local_sfs_batch: Callable | None = None
    global_flagged_batch: Callable | None = None


def select_kernels(vectorized: bool) -> KernelSet:
    """The scalar or vectorized kernel set for the physical operators.

    ``vectorized=True`` with NumPy missing silently selects the scalar
    set -- session construction validates the flag, and per-partition
    data that cannot columnize falls back inside the kernels anyway.
    """
    from .algorithms import (global_flagged_task,
                             local_bnl_incomplete_task, local_bnl_task,
                             local_sfs_task)

    if vectorized and numpy_available():
        return KernelSet(
            "vectorized", vec_local_bnl_task,
            vec_local_bnl_incomplete_task,
            vec_local_sfs_task, vec_global_flagged_task,
            local_bnl_batch=vec_local_bnl_batch_task,
            local_bnl_incomplete_batch=vec_local_bnl_incomplete_batch_task,
            local_sfs_batch=vec_local_sfs_batch_task,
            global_flagged_batch=vec_global_flagged_batch_task)
    return KernelSet("scalar", local_bnl_task, local_bnl_incomplete_task,
                     local_sfs_task, global_flagged_task)


# ---------------------------------------------------------------------------
# Grid-cell dominance pruning
# ---------------------------------------------------------------------------


def prune_dominated_cells_vec(cells: dict[tuple, list]) -> dict[tuple, list]:
    """Vectorized grid-cell dominance pruning.

    Identical result to
    :func:`repro.core.partitioning.prune_dominated_cells`: a cell dies
    when another occupied cell is strictly smaller on *every* (oriented)
    coordinate.  Cell coordinates are small ints, so one ``(m, m, k)``
    comparison resolves all cells at once.
    """
    coordinates = list(cells.keys())
    if np is None or len(coordinates) < 2 or \
            len({len(c) for c in coordinates}) != 1 or \
            not len(coordinates[0]):
        # Degenerate grids: the scalar loop.
        from .partitioning import prune_dominated_cells
        return prune_dominated_cells(cells, vectorized=False)
    grid = np.asarray(coordinates, dtype=np.int64)
    strictly_less = (grid[:, None, :] < grid[None, :, :]).all(axis=2)
    dominated = strictly_less.any(axis=0)
    return {coord: cells[coord]
            for coord, dead in zip(coordinates, dominated) if not dead}


# ---------------------------------------------------------------------------
# Dominance re-filter (serving-layer result cache)
# ---------------------------------------------------------------------------


def vec_dominated_mask(rows: Sequence[Sequence],
                       by_rows: Sequence[Sequence],
                       dims: Sequence[BoundDimension]
                       ) -> "list[bool] | None":
    """Per-row mask: is ``rows[i]`` dominated by *some* row of
    ``by_rows`` (complete-data semantics)?

    The serving layer's dominance-aware result cache answers a
    subset-preference query by filtering the base table against a small
    cached skyline; this is that filter's vectorized kernel.  Returns
    ``None`` when the data cannot be columnized faithfully (NumPy
    missing, non-numeric dimensions, DIFF dimensions, nulls) -- callers
    then fall back to the scalar :func:`~repro.core.dominance.dominates`
    loop, which is always exact.
    """
    if np is None or any(d.is_diff for d in dims):
        return None
    cand = columnize(rows, dims)
    by = columnize(by_rows, dims)
    if cand is None or by is None:
        return None
    if cand.null_mask.any() or by.null_mask.any():
        # Nulls demand the incomplete semantics; the cache never stores
        # nullable preference sets, so just refuse.
        return None
    return _dominated_by(cand.values, by.values).tolist()
