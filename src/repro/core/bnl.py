"""Block-Nested-Loop skyline algorithm (Section 5.6 of the paper).

The algorithm keeps a *window* of tuples holding the skyline of everything
processed so far.  For each incoming tuple ``t``:

* if a window tuple dominates ``t``, drop ``t`` (by transitivity ``t``
  cannot dominate anything in the window);
* otherwise remove every window tuple dominated by ``t`` and insert ``t``.

The same routine serves for both the local skyline (per partition) and
the global skyline (single partition via the ``AllTuples`` distribution);
only the data distribution differs.

Correctness requires transitive dominance, i.e. complete data.  For
incomplete data the window trick is only safe *within* a null-bitmap
partition -- see :mod:`repro.core.incomplete`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .dominance import (BoundDimension, DominanceStats, dominates,
                        equal_on_dimensions)


def bnl_skyline(rows: Iterable[Sequence], dims: Sequence[BoundDimension],
                distinct: bool = False,
                stats: DominanceStats | None = None,
                dominance: Callable = dominates,
                check_deadline: Callable[[], None] | None = None
                ) -> list[Sequence]:
    """Skyline of ``rows`` via Block-Nested-Loop.

    Parameters
    ----------
    rows:
        Input tuples.
    dims:
        Skyline dimensions bound to tuple ordinals.
    distinct:
        If True, implement ``SKYLINE OF DISTINCT``: of several tuples with
        identical values in all skyline dimensions only the first is kept.
    stats:
        Optional counter sink for dominance tests and window peaks.
    dominance:
        The dominance test; must be transitive over the supplied rows
        (the default :func:`dominates` assumes complete data).
    check_deadline:
        Optional callback invoked periodically so callers can abort
        long runs (benchmark timeouts).
    """
    window: list[Sequence] = []
    comparisons = 0
    window_peak = 0
    deadline_tick = 0
    for t in rows:
        if check_deadline is not None:
            deadline_tick += 1
            if deadline_tick % 256 == 0:
                check_deadline()
        t_dominated = False
        survivors: list[Sequence] = []
        for w in window:
            if t_dominated:
                survivors.append(w)
                continue
            comparisons += 1
            if dominance(w, t, dims):
                t_dominated = True
                survivors.append(w)
                continue
            comparisons += 1
            if dominance(t, w, dims):
                # w is dominated by t: drop it.
                continue
            if distinct and equal_on_dimensions(t, w, dims):
                # Same skyline-dimension values: keep the incumbent only.
                t_dominated = True
            survivors.append(w)
        window = survivors
        if not t_dominated:
            window.append(t)
            if len(window) > window_peak:
                window_peak = len(window)
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(window_peak)
    return window


def bnl_skyline_incremental(dims: Sequence[BoundDimension],
                            distinct: bool = False,
                            dominance: Callable = dominates):
    """A reusable BNL accumulator.

    Returns ``(add, current)`` where ``add(row)`` folds one tuple into the
    window and ``current()`` returns the present skyline.  Useful for
    streaming-style consumption and for tests that probe intermediate
    window states.
    """
    window: list[Sequence] = []

    def add(t: Sequence) -> None:
        nonlocal window
        t_dominated = False
        survivors: list[Sequence] = []
        for w in window:
            if t_dominated:
                survivors.append(w)
                continue
            if dominance(w, t, dims):
                t_dominated = True
                survivors.append(w)
                continue
            if dominance(t, w, dims):
                continue
            if distinct and equal_on_dimensions(t, w, dims):
                t_dominated = True
            survivors.append(w)
        window = survivors
        if not t_dominated:
            window.append(t)

    def current() -> list[Sequence]:
        return list(window)

    return add, current
