"""Partitioning schemes for the local skyline stage.

The paper uses Spark's default (even) distribution and names grid-based
and angle-based partitioning [25, 42] as future work (Section 7).  This
module implements the three classic schemes plus grid-cell dominance
pruning [41]:

* :func:`random_partitions` -- round-robin, the Spark-default stand-in;
* :func:`grid_partitions` -- split the data space into hyper-rectangles;
  with :func:`prune_dominated_cells`, entire cells whose best corner is
  dominated by another cell's worst corner are dropped before any
  per-tuple work;
* :func:`angle_partitions` -- partition by the angular coordinates of
  each point (after mapping MAX dimensions to "smaller is better"),
  which tends to give every partition a share of the skyline and hence
  balanced local skylines.

All schemes preserve the multiset of rows, so
``global_skyline(union(local skylines))`` is unchanged -- only the local
pruning power differs.  Exercised by the partitioning ablation bench.
"""

from __future__ import annotations

import math
from typing import Sequence

from .dominance import BoundDimension, DimensionKind


def _oriented_value(row: Sequence, dim: BoundDimension) -> float:
    """Dimension value mapped so smaller is always better (MIN order)."""
    value = row[dim.index]
    return value if dim.kind is DimensionKind.MIN else -value


def random_partitions(rows: Sequence[Sequence],
                      num_partitions: int) -> list[list[Sequence]]:
    """Round-robin distribution (the baseline scheme)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    partitions: list[list[Sequence]] = [[] for _ in range(num_partitions)]
    for i, row in enumerate(rows):
        partitions[i % num_partitions].append(row)
    return partitions


def grid_partitions(rows: Sequence[Sequence],
                    dims: Sequence[BoundDimension],
                    cells_per_dimension: int = 2
                    ) -> dict[tuple[int, ...], list[Sequence]]:
    """Equi-width grid over the (oriented) skyline dimensions.

    Returns a mapping from cell coordinates to the rows in that cell.
    DIFF dimensions do not participate in the grid.
    """
    if cells_per_dimension < 1:
        raise ValueError("cells_per_dimension must be >= 1")
    rows = list(rows)
    grid_dims = [d for d in dims if d.kind is not DimensionKind.DIFF]
    if not rows or not grid_dims:
        return {(): rows}
    lows = []
    highs = []
    for dim in grid_dims:
        values = [_oriented_value(row, dim) for row in rows]
        lows.append(min(values))
        highs.append(max(values))
    cells: dict[tuple[int, ...], list[Sequence]] = {}
    for row in rows:
        coordinate = []
        for dim, low, high in zip(grid_dims, lows, highs):
            if high == low:
                coordinate.append(0)
                continue
            fraction = (_oriented_value(row, dim) - low) / (high - low)
            coordinate.append(min(cells_per_dimension - 1,
                                  int(fraction * cells_per_dimension)))
        cells.setdefault(tuple(coordinate), []).append(row)
    return cells


def prune_dominated_cells(cells: dict[tuple[int, ...], list[Sequence]],
                          vectorized: bool | None = None
                          ) -> dict[tuple[int, ...], list[Sequence]]:
    """Drop grid cells dominated by another non-empty cell [41].

    Cell ``c`` is dominated by cell ``d`` if every coordinate of ``d``
    is strictly smaller (oriented: smaller is better): then the *worst*
    corner of ``d`` dominates the *best* corner of ``c``, hence every
    tuple of ``d`` dominates every tuple of ``c``.

    Only sound when the skyline has no DIFF dimensions: DIFF dominance
    additionally requires equal DIFF values, which cell coordinates do
    not capture (:func:`partition_rows` enforces this).

    Larger grids dispatch to the NumPy implementation
    (:func:`repro.core.vectorized.prune_dominated_cells_vec`), which
    resolves all cells in one broadcast comparison; results are
    identical.  ``vectorized=False`` forces the scalar loop (the
    session's kernel pin applies to pruning too); ``None`` means
    "NumPy when available".
    """
    if len(cells) >= 32 and vectorized is not False:
        from .vectorized import numpy_available, prune_dominated_cells_vec
        if numpy_available():
            return prune_dominated_cells_vec(cells)
    occupied = list(cells.keys())
    survivors: dict[tuple[int, ...], list[Sequence]] = {}
    for cell in occupied:
        dominated = any(
            other != cell
            and len(other) == len(cell)
            and all(o < c for o, c in zip(other, cell))
            for other in occupied)
        if not dominated:
            survivors[cell] = cells[cell]
    return survivors


def angle_partitions(rows: Sequence[Sequence],
                     dims: Sequence[BoundDimension],
                     num_partitions: int) -> list[list[Sequence]]:
    """Angle-based space partitioning [42].

    Points are shifted to positive (oriented) coordinates and assigned
    by their first hyper-spherical angle.  Because every angular slice
    touches the origin region, each partition is likely to carry part of
    the skyline, balancing local skyline sizes.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    rows = list(rows)
    value_dims = [d for d in dims if d.kind is not DimensionKind.DIFF]
    if not rows or len(value_dims) < 2:
        return random_partitions(rows, num_partitions)
    lows = []
    for dim in value_dims:
        lows.append(min(_oriented_value(row, dim) for row in rows))
    partitions: list[list[Sequence]] = [[] for _ in range(num_partitions)]
    for row in rows:
        shifted = [_oriented_value(row, dim) - low + 1e-9
                   for dim, low in zip(value_dims, lows)]
        # First angular coordinate: atan2 over the first two axes.
        angle = math.atan2(shifted[1], shifted[0])  # in (0, pi/2)
        fraction = angle / (math.pi / 2)
        index = min(num_partitions - 1, int(fraction * num_partitions))
        partitions[index].append(row)
    return partitions


def partition_rows(rows: Sequence[Sequence],
                   dims: Sequence[BoundDimension],
                   scheme: str, num_partitions: int,
                   prune_cells: bool = False,
                   cells_per_dimension: int | None = None,
                   vectorized: bool | None = None
                   ) -> list[list[Sequence]]:
    """Uniform front door over the schemes.

    ``scheme`` is ``random``, ``grid`` or ``angle``; for ``grid`` the
    partition count is rounded to a per-dimension cell count (or taken
    from ``cells_per_dimension`` when the caller sized the cells
    explicitly, e.g. from column histograms) and ``prune_cells``
    enables cell-dominance pruning (``vectorized`` passes through to
    :func:`prune_dominated_cells`).
    """
    if scheme == "random":
        return random_partitions(rows, num_partitions)
    if scheme == "angle":
        return angle_partitions(rows, dims, num_partitions)
    if scheme == "grid":
        value_dims = [d for d in dims
                      if d.kind is not DimensionKind.DIFF]
        per_dimension = cells_per_dimension or max(
            1, round(num_partitions ** (1.0 / max(1, len(value_dims)))))
        cells = grid_partitions(rows, dims, per_dimension)
        if prune_cells and len(value_dims) == len(dims):
            # Pruning is unsound with DIFF dimensions: a cell may only
            # be deleted by tuples with *equal* DIFF values, which the
            # grid coordinates (value dimensions only) cannot see.
            cells = prune_dominated_cells(cells, vectorized=vectorized)
        return list(cells.values())
    raise ValueError(f"unknown partitioning scheme {scheme!r}")


def partition_indices(rows: Sequence[Sequence],
                      dims: Sequence[BoundDimension],
                      scheme: str, num_partitions: int,
                      prune_cells: bool = False,
                      cells_per_dimension: int | None = None,
                      vectorized: bool | None = None
                      ) -> list[list[int]]:
    """Like :func:`partition_rows`, but returns row *indices*.

    The batch data plane repartitions by slicing a concatenated
    :class:`~repro.engine.batch.ColumnBatch` with ``take`` rather than
    materialising row tuples per partition.  Placement is guaranteed
    identical to :func:`partition_rows`: each row is decorated with its
    ordinal as a trailing element (no dimension index can refer to it)
    and routed through the very same scheme implementations, then the
    ordinals are read back.  Pruned grid cells simply drop out of the
    index lists, exactly as their rows would.
    """
    decorated = [tuple(row) + (i,) for i, row in enumerate(rows)]
    parts = partition_rows(decorated, dims, scheme, num_partitions,
                           prune_cells=prune_cells,
                           cells_per_dimension=cells_per_dimension,
                           vectorized=vectorized)
    return [[row[-1] for row in part] for part in parts]
