"""Skyline algorithms -- the paper's core contribution, engine-free.

Everything here operates on plain Python tuples and
:class:`~repro.core.dominance.BoundDimension` descriptors, so the
algorithms are usable (and tested) independently of the SQL engine that
integrates them.
"""

from .algorithms import (Algorithm, distributed_complete,
                         distributed_incomplete, make_dimensions,
                         non_distributed_complete, reference, sfs_complete,
                         skyline)
from .bnl import bnl_skyline, bnl_skyline_incremental
from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        compare, dominates, dominates_incomplete,
                        equal_on_dimensions, has_null_dimension,
                        null_bitmap)
from .merge import (MergeSummary, build_summaries, hierarchical_merge,
                    merge_round_sizes, merge_skylines, merge_unsafe_reason,
                    tree_shape, vec_merge_skylines)
from .incomplete import (flagged_global_skyline, gulzar_global_skyline,
                         local_skylines_incomplete,
                         partition_by_null_bitmap)
from .partitioning import (angle_partitions, grid_partitions,
                           partition_rows, prune_dominated_cells,
                           random_partitions)
from .sfs import monotone_score, sfs_skyline
from .vectorized import (columnize, numpy_available, select_kernels,
                         vec_bnl_skyline, vec_flagged_global_skyline,
                         vec_sfs_skyline)

__all__ = [
    "Algorithm",
    "BoundDimension",
    "DimensionKind",
    "DominanceStats",
    "MergeSummary",
    "angle_partitions",
    "grid_partitions",
    "partition_rows",
    "prune_dominated_cells",
    "random_partitions",
    "bnl_skyline",
    "bnl_skyline_incremental",
    "columnize",
    "compare",
    "distributed_complete",
    "distributed_incomplete",
    "dominates",
    "dominates_incomplete",
    "equal_on_dimensions",
    "flagged_global_skyline",
    "gulzar_global_skyline",
    "has_null_dimension",
    "hierarchical_merge",
    "local_skylines_incomplete",
    "make_dimensions",
    "build_summaries",
    "merge_round_sizes",
    "merge_skylines",
    "merge_unsafe_reason",
    "monotone_score",
    "non_distributed_complete",
    "null_bitmap",
    "numpy_available",
    "partition_by_null_bitmap",
    "reference",
    "select_kernels",
    "sfs_complete",
    "sfs_skyline",
    "skyline",
    "tree_shape",
    "vec_bnl_skyline",
    "vec_merge_skylines",
    "vec_flagged_global_skyline",
    "vec_sfs_skyline",
]
