"""Pairwise skyline-merge kernels for the hierarchical global phase.

The two-phase algorithms (Section 4 of the paper) funnel every local
skyline into one single-threaded global merge -- the scalability
ceiling visible in the executor-scaling figures.  This module provides
the building blocks for a *tournament-tree* alternative: local
skylines are merged pairwise in parallel rounds until one partial
remains.

Correctness rests on one property: with **complete data** (no nulls,
no NaN in any MIN/MAX dimension) dominance is transitive, and then

* ``merge_skylines(A, B)`` -- keep the rows of each side not dominated
  by any row of the other -- equals the flat BNL skyline of ``A + B``
  exactly, *including row order*, whenever ``A`` and ``B`` are
  themselves dominance-free (local skylines are).  Filtering against
  the full opposite side (rather than its survivors) is exact: a row
  of ``B`` that dominates something cannot itself be dominated by a
  row of ``B``'s own side, because local skylines are dominance-free,
  and transitivity forwards any cross-side dominance.
* the merge is therefore associative and order-invariant as a *set*,
  and merging **adjacent** partials preserves the concatenation order
  bit-for-bit -- which is how the hierarchical tree reproduces the
  flat global phase's output exactly.

With incomplete data (nulls, or NaN encoding them) dominance is *not*
transitive and a merge tree can drop rows a flat pass keeps; every
entry point here detects that (:func:`merge_unsafe_reason`) and the
caller must fall back to the flat all-pairs global phase.

:class:`MergeSummary` adds the Vlachou-style grid metadata: a partial's
bounding box plus per-occupied-grid-cell boxes over the *actual* row
values (never the cell edges, so float rounding cannot make the test
unsound).  Two summaries can prove a pair of partials mutually
non-dominating (concatenate without a single comparison) or one side
entirely dominated (drop it outright).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..engine.batch import ColumnBatch
from .bnl import bnl_skyline
from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        dominates, equal_on_dimensions)
from .vectorized import ColumnBlock, _dominated_by, columnize, columnize_batch
from .vectorized import np  # None when NumPy is unavailable

#: Grid resolution (cells per dimension) of a :class:`MergeSummary`.
MERGE_GRID_CELLS = 4

#: Above this many cell-pair tests the summary checks fall back to the
#: overall bounding boxes (the shortcut must stay cheaper than the
#: comparisons it saves).
_MAX_CELL_PAIRS = 256

_NULL_REASON = ("null skyline-dimension values: dominance is not "
                "transitive over incomplete rows")
_NAN_REASON = "NaN skyline-dimension values: dominance is not transitive"


def _value_dims(dims: Sequence[BoundDimension]) -> list[BoundDimension]:
    return [d for d in dims if d.kind is not DimensionKind.DIFF]


def merge_unsafe_reason(partials: Sequence[Sequence[Sequence]],
                        dims: Sequence[BoundDimension]) -> str | None:
    """Why a hierarchical merge of these rows would be unsound, or
    ``None`` when it is provably safe.

    Nulls or NaN in a MIN/MAX dimension make dominance non-transitive
    (such a dimension carries no information), so the mutual-filter
    merge may disagree with the flat window pass.  DIFF dimensions are
    exempt: a null/NaN DIFF key only isolates its row further.
    """
    value_dims = _value_dims(dims)
    for part in partials:
        for row in part:
            for d in value_dims:
                v = row[d.index]
                if v is None:
                    return _NULL_REASON
                if isinstance(v, float) and v != v:
                    return _NAN_REASON
    return None


def batch_merge_unsafe_reason(batches: Sequence[ColumnBatch],
                              dims: Sequence[BoundDimension]) -> str | None:
    """:func:`merge_unsafe_reason` over engine column batches, scanning
    typed columns without materialising rows where possible."""
    value_dims = _value_dims(dims)
    for batch in batches:
        for d in value_dims:
            column = batch.column(d.index)
            encoded = column.as_f8() if np is not None else None
            if encoded is None:
                for v in column.to_values():
                    if v is None:
                        return _NULL_REASON
                    if isinstance(v, float) and v != v:
                        return _NAN_REASON
                continue
            data, mask = encoded
            if mask.any():
                return _NULL_REASON
            if np.isnan(data).any():
                return _NAN_REASON
    return None


# ---------------------------------------------------------------------------
# Scalar pairwise merge
# ---------------------------------------------------------------------------


def merge_skylines(left: Sequence[Sequence], right: Sequence[Sequence],
                   dims: Sequence[BoundDimension],
                   distinct: bool = False,
                   stats: DominanceStats | None = None,
                   check_deadline: Callable[[], None] | None = None
                   ) -> list[Sequence]:
    """Merge two complete-data skylines: rows of each side not dominated
    by the other, left survivors first.

    Equals ``bnl_skyline(left + right)`` exactly (rows and order) when
    both inputs are dominance-free and dominance is transitive.  Under
    ``distinct``, a right row equal on every dimension to *any* left
    row is dropped -- the left twin provably survives, matching the
    flat window's keep-the-incumbent rule.
    """
    comparisons = 0
    tick = 0
    out: list[Sequence] = []
    for t in left:
        tick += 1
        if check_deadline is not None and tick % 256 == 0:
            check_deadline()
        dominated = False
        for s in right:
            comparisons += 1
            if dominates(s, t, dims):
                dominated = True
                break
        if not dominated:
            out.append(t)
    for s in right:
        tick += 1
        if check_deadline is not None and tick % 256 == 0:
            check_deadline()
        dominated = False
        for t in left:
            comparisons += 1
            if dominates(t, s, dims) or \
                    (distinct and equal_on_dimensions(t, s, dims)):
                dominated = True
                break
        if not dominated:
            out.append(s)
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(len(left) + len(right))
    return out


def merge_partials_task(segments: Sequence[Sequence[Sequence]],
                        dims: Sequence[BoundDimension],
                        distinct: bool = False,
                        check_deadline: Callable[[], None] | None = None
                        ) -> tuple[list[Sequence], int, int]:
    """Fold consecutive partial skylines into one (scalar task kernel).

    Returns ``(rows, window_peak, comparisons)`` like the local-phase
    task kernels so the scheduler records comparable metrics.
    """
    segments = [list(s) for s in segments]
    total = sum(len(s) for s in segments)
    stats = DominanceStats()
    acc = segments[0] if segments else []
    for seg in segments[1:]:
        acc = merge_skylines(acc, seg, dims, distinct, stats=stats,
                             check_deadline=check_deadline)
    return acc, total, stats.comparisons


# ---------------------------------------------------------------------------
# Vectorized pairwise merge
# ---------------------------------------------------------------------------


def _rows_equal_any(cand: "np.ndarray", by: "np.ndarray") -> "np.ndarray":
    """Mask over ``cand`` rows exactly equal, on every oriented value
    dimension, to some row of ``by`` (-0.0 normalised so bytes agree)."""
    by_keys = {row.tobytes() for row in np.ascontiguousarray(by + 0.0)}
    cand_norm = np.ascontiguousarray(cand + 0.0)
    return np.fromiter((row.tobytes() in by_keys for row in cand_norm),
                       dtype=bool, count=len(cand))


def _vec_unmergeable(block: ColumnBlock | None) -> bool:
    """True when the block cannot drive the index-set merge faithfully
    (scalar fallback keeps the documented semantics instead)."""
    return (block is None or bool(block.null_mask.any())
            or block.has_nan_data or block.diff_keys_have_null()
            or block.diff_keys_have_nan())


def _merge_index_arrays(values: "np.ndarray", left_idx: "np.ndarray",
                        right_idx: "np.ndarray", distinct: bool,
                        stats: DominanceStats | None) -> "np.ndarray":
    l_dead = _dominated_by(values[left_idx], values[right_idx], stats)
    r_dead = _dominated_by(values[right_idx], values[left_idx], stats)
    if distinct and len(left_idx) and len(right_idx):
        r_dead |= _rows_equal_any(values[right_idx], values[left_idx])
    return np.concatenate([left_idx[~l_dead], right_idx[~r_dead]])


def _merge_index_sets(block: ColumnBlock, left_idx: "np.ndarray",
                      right_idx: "np.ndarray", distinct: bool,
                      stats: DominanceStats | None) -> "np.ndarray":
    """Surviving row indices of merging two index sets of ``block``,
    left survivors first (each side's internal order preserved)."""
    values = block.values
    if block.diff_keys is None:
        return _merge_index_arrays(values, left_idx, right_idx,
                                   distinct, stats)
    # DIFF dimensions: dominance (and distinct-equality) only applies
    # within a DIFF-key group, so filter the two sides group by group.
    dead = np.zeros(block.num_rows, dtype=bool)
    left_groups: dict[tuple, list[int]] = {}
    right_groups: dict[tuple, list[int]] = {}
    for i in left_idx:
        left_groups.setdefault(block.diff_keys[i], []).append(int(i))
    for i in right_idx:
        right_groups.setdefault(block.diff_keys[i], []).append(int(i))
    for key, l_rows in left_groups.items():
        r_rows = right_groups.get(key)
        if not r_rows:
            continue
        lg = np.asarray(l_rows)
        rg = np.asarray(r_rows)
        l_dead = _dominated_by(values[lg], values[rg], stats)
        r_dead = _dominated_by(values[rg], values[lg], stats)
        if distinct:
            r_dead |= _rows_equal_any(values[rg], values[lg])
        dead[lg[l_dead]] = True
        dead[rg[r_dead]] = True
    return np.concatenate([left_idx[~dead[left_idx]],
                           right_idx[~dead[right_idx]]])


def vec_merge_skylines(left: Sequence[Sequence], right: Sequence[Sequence],
                       dims: Sequence[BoundDimension],
                       distinct: bool = False,
                       stats: DominanceStats | None = None,
                       check_deadline: Callable[[], None] | None = None
                       ) -> list[Sequence]:
    """Vectorized :func:`merge_skylines`; defers to the scalar kernel
    whenever the rows cannot be columnized faithfully."""
    left = list(left)
    right = list(right)
    rows = left + right
    block = columnize(rows, dims)
    if _vec_unmergeable(block):
        return merge_skylines(left, right, dims, distinct, stats,
                              check_deadline)
    if check_deadline is not None:
        check_deadline()
    kept = _merge_index_sets(block, np.arange(len(left)),
                             np.arange(len(left), len(rows)),
                             distinct, stats)
    if stats is not None:
        stats.note_window(len(rows))
    return [rows[i] for i in kept]


def vec_merge_partials_task(segments: Sequence[Sequence[Sequence]],
                            dims: Sequence[BoundDimension],
                            distinct: bool = False,
                            check_deadline: Callable[[], None] | None = None
                            ) -> tuple[list[Sequence], int, int]:
    """Vectorized :func:`merge_partials_task`: columnize the group's
    rows once, fold index sets, materialise survivors at the end."""
    segments = [list(s) for s in segments]
    rows = [r for seg in segments for r in seg]
    block = columnize(rows, dims)
    if _vec_unmergeable(block):
        return merge_partials_task(segments, dims, distinct, check_deadline)
    stats = DominanceStats()
    acc = np.arange(len(segments[0])) if segments else np.arange(0)
    offset = len(acc)
    for seg in segments[1:]:
        if check_deadline is not None:
            check_deadline()
        seg_idx = np.arange(offset, offset + len(seg))
        offset += len(seg)
        acc = _merge_index_sets(block, acc, seg_idx, distinct, stats)
    return [rows[i] for i in acc], len(rows), stats.comparisons


def vec_merge_batches_task(batches: Sequence[ColumnBatch],
                           dims: Sequence[BoundDimension],
                           distinct: bool = False,
                           check_deadline: Callable[[], None] | None = None
                           ) -> tuple[ColumnBatch, int, int]:
    """Batch-plane merge task: concatenate the group's batches, merge
    index sets over one oriented matrix, ``take`` the survivors."""
    batches = list(batches)
    merged = ColumnBatch.concat(batches)
    block = columnize_batch(merged, dims)
    if _vec_unmergeable(block):
        rows, peak, comps = merge_partials_task(
            [b.to_rows() for b in batches], dims, distinct, check_deadline)
        return ColumnBatch.from_rows(rows, merged.num_columns), peak, comps
    stats = DominanceStats()
    sizes = [b.num_rows for b in batches]
    acc = np.arange(sizes[0]) if sizes else np.arange(0)
    offset = len(acc)
    for size in sizes[1:]:
        if check_deadline is not None:
            check_deadline()
        seg_idx = np.arange(offset, offset + size)
        offset += size
        acc = _merge_index_sets(block, acc, seg_idx, distinct, stats)
    kept = merged.take([int(i) for i in acc])
    return kept, merged.num_rows, stats.comparisons


# ---------------------------------------------------------------------------
# Grid-cell dominance summaries (Vlachou-style metadata)
# ---------------------------------------------------------------------------


@dataclass
class MergeSummary:
    """Dominance metadata of one partial skyline, in *oriented* value
    space (smaller is better on every axis; MAX dimensions negated).

    ``cells`` maps a grid coordinate to the bounding box of the rows
    that fell into that cell -- boxes over actual row values, never
    cell edges, so the dominance tests below stay sound under float
    rounding.
    """

    lo: "np.ndarray"
    hi: "np.ndarray"
    cells: dict[tuple, tuple["np.ndarray", "np.ndarray"]]


def build_summaries(blocks: Sequence[ColumnBlock | None],
                    cells_per_dim: int = MERGE_GRID_CELLS
                    ) -> list[MergeSummary] | None:
    """Summaries for a round's partials on one shared grid, or ``None``
    when any partial cannot be summarised soundly (no NumPy, DIFF
    dimensions, nulls, or non-finite values) -- all-or-nothing because
    the grid spans the round's global bounding box."""
    if np is None or not blocks:
        return None
    for b in blocks:
        if b is None or b.diff_keys is not None or not b.num_rows \
                or b.null_mask.any() or not np.isfinite(b.values).all():
            return None
    lo = np.min([b.values.min(axis=0) for b in blocks], axis=0)
    hi = np.max([b.values.max(axis=0) for b in blocks], axis=0)
    width = (hi - lo) / cells_per_dim
    width[width <= 0] = 1.0
    out = []
    for b in blocks:
        coords = np.clip(((b.values - lo) / width).astype(np.int64),
                         0, cells_per_dim - 1)
        uniq, inverse = np.unique(coords, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)  # shape varies across NumPy versions
        cells = {}
        for ci, coord in enumerate(uniq):
            member = b.values[inverse == ci]
            cells[tuple(int(c) for c in coord)] = \
                (member.min(axis=0), member.max(axis=0))
        out.append(MergeSummary(b.values.min(axis=0),
                                b.values.max(axis=0), cells))
    return out


def _cannot_dominate(a: MergeSummary, b: MergeSummary) -> bool:
    """True when provably *no* row of ``a`` dominates any row of ``b``:
    every (cell-of-a, cell-of-b) pair has a dimension on which all of
    ``a``'s rows are strictly worse."""
    if bool((a.lo > b.hi).any()):
        return True
    if len(a.cells) * len(b.cells) > _MAX_CELL_PAIRS:
        return False
    for alo, _ahi in a.cells.values():
        for _blo, bhi in b.cells.values():
            if not (alo > bhi).any():
                return False
    return True


def summary_disjoint(a: MergeSummary, b: MergeSummary) -> bool:
    """True when neither partial can dominate a row of the other, so
    their concatenation is itself dominance-free (merge = concat)."""
    return _cannot_dominate(a, b) and _cannot_dominate(b, a)


def summary_dominates(a: MergeSummary, b: MergeSummary) -> bool:
    """True when every row of ``b`` is provably *strictly* dominated by
    some row of ``a`` (every cell of ``b`` has a cell of ``a`` whose
    box upper corner beats its lower corner on all dimensions), so the
    whole partial ``b`` can be dropped without a comparison."""
    if bool((a.hi < b.lo).all()):
        return True
    if len(a.cells) * len(b.cells) > _MAX_CELL_PAIRS:
        return False
    a_boxes = list(a.cells.values())
    return all(any(bool((ahi < blo).all()) for _alo, ahi in a_boxes)
               for blo, _bhi in b.cells.values())


def combine_summaries(a: MergeSummary, b: MergeSummary) -> MergeSummary:
    """Summary of the concatenation of two partials summarised on the
    same round grid (cell coordinates are compatible by construction)."""
    cells = dict(a.cells)
    for coord, (blo, bhi) in b.cells.items():
        if coord in cells:
            alo, ahi = cells[coord]
            cells[coord] = (np.minimum(alo, blo), np.maximum(ahi, bhi))
        else:
            cells[coord] = (blo, bhi)
    return MergeSummary(np.minimum(a.lo, b.lo),
                        np.maximum(a.hi, b.hi), cells)


def reduce_group(group: Sequence, summaries: Sequence[MergeSummary] | None,
                 counters: dict | None = None,
                 concat: Callable | None = None) -> list:
    """Apply the summary shortcuts inside one fan-in group *before*
    scheduling a merge task.

    Drops members whose every row is provably dominated by another
    member, then concatenates **adjacent** provably-disjoint members
    (adjacency preserves the flat concatenation order bit-for-bit).
    Returns the segments still needing pairwise merging; a single
    returned segment means the group needs no task at all.  ``group``
    items are opaque; ``concat`` joins several of them (defaults to
    list concatenation for row partials).
    """
    if summaries is None or len(group) < 2:
        return list(group)
    alive = list(range(len(group)))
    changed = True
    while changed and len(alive) > 1:
        changed = False
        for i in alive:
            for j in alive:
                if i != j and summary_dominates(summaries[i], summaries[j]):
                    alive.remove(j)
                    if counters is not None:
                        counters["short_circuits"] += 1
                    changed = True
                    break
            if changed:
                break
    segments: list[list[int]] = [[alive[0]]]
    seg_sums = [summaries[alive[0]]]
    for idx in alive[1:]:
        if summary_disjoint(seg_sums[-1], summaries[idx]):
            segments[-1].append(idx)
            seg_sums[-1] = combine_summaries(seg_sums[-1], summaries[idx])
            if counters is not None:
                counters["concat_merges"] += 1
        else:
            segments.append([idx])
            seg_sums.append(summaries[idx])
    out = []
    for seg in segments:
        items = [group[i] for i in seg]
        if len(items) == 1:
            out.append(items[0])
        elif concat is not None:
            out.append(concat(items))
        else:
            out.append([row for item in items for row in item])
    return out


# ---------------------------------------------------------------------------
# Tree shape helpers + in-process reference driver
# ---------------------------------------------------------------------------


def merge_round_sizes(num_partials: int, fan_in: int) -> list[int]:
    """Partial counts per round, first to last: ``[10, 5, 3, 2, 1]``
    for ten partials at fan-in 2."""
    fan_in = max(2, int(fan_in))
    sizes = [max(1, int(num_partials))]
    while sizes[-1] > 1:
        sizes.append(math.ceil(sizes[-1] / fan_in))
    return sizes


def tree_shape(num_partials: int, fan_in: int) -> str:
    """Human-readable tree, e.g. ``'10 -> 5 -> 3 -> 2 -> 1'``."""
    return " -> ".join(str(s) for s in merge_round_sizes(num_partials,
                                                         fan_in))


def make_merge_counters() -> dict:
    """Fresh counter dict shared by the reference driver and the
    physical operators (mirrored into ``ExecutionContext.global_merge``)."""
    return {"rounds": 0, "round_tasks": [], "concat_merges": 0,
            "short_circuits": 0, "fallback": None}


def hierarchical_merge(partials: Sequence[Sequence[Sequence]],
                       dims: Sequence[BoundDimension],
                       distinct: bool = False,
                       fan_in: int = 2,
                       vectorized: bool = False,
                       use_summaries: bool = True,
                       cells_per_dim: int = MERGE_GRID_CELLS,
                       counters: dict | None = None,
                       stats: DominanceStats | None = None,
                       check_deadline: Callable[[], None] | None = None
                       ) -> list[Sequence]:
    """In-process reference driver for the tournament-tree merge.

    Always returns exactly ``bnl_skyline(concat(partials))`` -- same
    rows, same order -- running the flat merge outright when dominance
    is not provably transitive (:func:`merge_unsafe_reason`).  The
    engine's staged implementation (``plan/physical.py``) mirrors this
    loop with one scheduled task per merged group; the test suite
    exercises this driver directly for the property/differential legs.
    """
    counters = counters if counters is not None else make_merge_counters()
    partials = [list(p) for p in partials if len(p)]
    if not partials:
        return []
    reason = merge_unsafe_reason(partials, dims)
    if reason is not None:
        counters["fallback"] = reason
        return bnl_skyline([r for p in partials for r in p], dims,
                           distinct, stats=stats,
                           check_deadline=check_deadline)
    fan_in = max(2, int(fan_in))
    task = vec_merge_partials_task if vectorized else merge_partials_task
    while len(partials) > 1:
        counters["rounds"] += 1
        summaries = None
        if use_summaries:
            summaries = build_summaries(
                [columnize(p, dims) for p in partials], cells_per_dim)
        next_partials = []
        tasks = 0
        for g in range(0, len(partials), fan_in):
            group = partials[g:g + fan_in]
            gsum = summaries[g:g + fan_in] if summaries is not None else None
            segments = reduce_group(group, gsum, counters)
            if len(segments) == 1:
                merged = segments[0]
            else:
                merged, peak, comps = task(segments, dims, distinct,
                                           check_deadline=check_deadline)
                tasks += 1
                if stats is not None:
                    stats.comparisons += comps
                    stats.note_window(peak)
            next_partials.append(merged)
        counters["round_tasks"].append(tasks)
        partials = next_partials
    return partials[0]
