"""Sort-Filter-Skyline (SFS) -- presorting-based skyline computation.

The paper lists sorting-based algorithms (SFS [10, 11], LESS, SaLSa, SDI)
as the main alternative family and names implementing them in Spark as
future work (Section 7).  We provide SFS as a drop-in replacement for the
BNL local/global computation, exercised by the ablation benchmark.

SFS sorts the input by a *monotone scoring function* (here: the sum of
each dimension's value normalised to "smaller is better" rank order).
After sorting, no tuple can be dominated by a *later* tuple, so the
window only needs dominance checks in one direction and never shrinks --
every window insertion is final.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        dominates, equal_on_dimensions)


def monotone_score(row: Sequence, dims: Sequence[BoundDimension]) -> float:
    """A scoring function monotone w.r.t. dominance.

    If ``r`` dominates ``s`` then ``score(r) < score(s)`` (MIN/MAX
    dimensions only; DIFF dimensions do not contribute).  Nulls are not
    supported -- SFS is a complete-data algorithm.
    """
    score = 0.0
    for dim in dims:
        if dim.kind is DimensionKind.DIFF:
            continue
        value = row[dim.index]
        score += value if dim.kind is DimensionKind.MIN else -value
    return score


def sfs_skyline(rows: Sequence[Sequence], dims: Sequence[BoundDimension],
                distinct: bool = False,
                stats: DominanceStats | None = None,
                check_deadline: Callable[[], None] | None = None
                ) -> list[Sequence]:
    """Skyline via Sort-Filter-Skyline.

    Only valid for complete data (no nulls in skyline dimensions) because
    both the scoring function and the one-directional window argument
    require total comparability.
    """
    ordered = sorted(rows, key=lambda r: monotone_score(r, dims))
    window: list[Sequence] = []
    comparisons = 0
    for i, t in enumerate(ordered):
        if check_deadline is not None and i % 256 == 0:
            check_deadline()
        t_dominated = False
        for w in window:
            comparisons += 1
            if dominates(w, t, dims):
                t_dominated = True
                break
            if distinct and equal_on_dimensions(w, t, dims):
                t_dominated = True
                break
        if not t_dominated:
            window.append(t)
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(len(window))
    return window
