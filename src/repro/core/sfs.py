"""Sort-Filter-Skyline (SFS) -- presorting-based skyline computation.

The paper lists sorting-based algorithms (SFS [10, 11], LESS, SaLSa, SDI)
as the main alternative family and names implementing them in Spark as
future work (Section 7).  We provide SFS as a drop-in replacement for the
BNL local/global computation, exercised by the ablation benchmark.

SFS sorts the input by a *monotone scoring function* (here: the sum of
each dimension's value normalised to "smaller is better" rank order).
After sorting, no tuple can be dominated by a *later* tuple, so the
window only needs dominance checks in one direction and never shrinks --
every window insertion is final.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from .bnl import bnl_skyline
from .dominance import (BoundDimension, DimensionKind, DominanceStats,
                        dominates, equal_on_dimensions)


def monotone_score(row: Sequence, dims: Sequence[BoundDimension]) -> float:
    """A scoring function monotone w.r.t. dominance.

    If ``r`` dominates ``s`` then ``score(r) < score(s)`` (MIN/MAX
    dimensions only; DIFF dimensions do not contribute).  Nulls are not
    supported -- SFS is a complete-data algorithm.
    """
    score = 0.0
    for dim in dims:
        if dim.kind is DimensionKind.DIFF:
            continue
        value = row[dim.index]
        score += value if dim.kind is DimensionKind.MIN else -value
    return score


def sfs_skyline(rows: Sequence[Sequence], dims: Sequence[BoundDimension],
                distinct: bool = False,
                stats: DominanceStats | None = None,
                check_deadline: Callable[[], None] | None = None
                ) -> list[Sequence]:
    """Skyline via Sort-Filter-Skyline.

    Only valid for complete data (no nulls in skyline dimensions) because
    both the scoring function and the one-directional window argument
    require total comparability.

    Non-finite scores void the monotone property the one-directional
    window relies on: NaN values (or ``+inf`` and ``-inf`` cancelling
    inside the sum) make the sort order arbitrary, and an absorbing
    ``±inf`` score ties a dominator with its victim, so a dominated
    tuple can sort *before* the tuple that dominates it and wrongly
    survive.  Such inputs are therefore computed with
    :func:`~repro.core.bnl.bnl_skyline` instead, keeping SFS's results
    identical to BNL's on every input (the pinned NaN/±inf semantics of
    :mod:`repro.core.dominance`).

    Finite scores are only *weakly* monotone under rounding (the exact
    sums satisfy ``score(r) < score(s)`` whenever ``r`` dominates
    ``s``, but float addition can collapse that to equality -- e.g. a
    ``1e16`` dimension absorbs any sub-ulp difference elsewhere), so a
    dominator can tie with, and stably sort after, its victim.  Window
    insertions are therefore final only across *strictly increasing*
    scores; within an equal-score run a newcomer additionally evicts
    window rows it dominates.
    """
    rows = list(rows)
    scores = [monotone_score(row, dims) for row in rows]
    if not all(math.isfinite(score) for score in scores):
        return bnl_skyline(rows, dims, distinct=distinct, stats=stats,
                           check_deadline=check_deadline)
    ordered = sorted(zip(scores, rows), key=lambda pair: pair[0])
    window: list[Sequence] = []
    window_scores: list[float] = []
    comparisons = 0
    for i, (score, t) in enumerate(ordered):
        if check_deadline is not None and i % 256 == 0:
            check_deadline()
        t_dominated = False
        for w in window:
            comparisons += 1
            if dominates(w, t, dims):
                t_dominated = True
                break
            if distinct and equal_on_dimensions(w, t, dims):
                t_dominated = True
                break
        if t_dominated:
            continue
        if window_scores and window_scores[-1] == score:
            # Equal-score suffix: rounding may have tied t with window
            # rows it dominates -- the one case insertion-is-final
            # fails.  Window scores are non-decreasing, so only the
            # suffix needs checking.
            keep = []
            for ws, w in zip(window_scores, window):
                if ws == score:
                    comparisons += 1
                    if dominates(t, w, dims):
                        continue
                keep.append((ws, w))
            if len(keep) != len(window):
                window_scores = [ws for ws, _ in keep]
                window = [w for _, w in keep]
        window.append(t)
        window_scores.append(score)
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(len(window))
    return window
