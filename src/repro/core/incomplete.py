"""Skyline computation for incomplete (null-containing) data.

Section 5.7 and Appendix A of the paper.  With nulls, dominance loses
transitivity and may be cyclic (``a ≺ b ≺ c ≺ a``), so two adaptations
are required:

* **Local skylines** are only computed inside *null-bitmap partitions*:
  all tuples with nulls in exactly the same skyline dimensions share a
  partition, where dominance is again transitive and plain BNL is safe
  (Lemma 5.1 proves no global-skyline answer is lost this way).

* The **global skyline** must not delete dominated tuples prematurely: a
  dominated tuple may be the only witness against another tuple.  The
  paper's fix is flag-based all-pairs testing -- mark dominated tuples,
  delete only after *all* pairs were examined.

For regression purposes this module also contains
:func:`gulzar_global_skyline`, the *incorrect* cluster-ordered algorithm
of Gulzar et al. [20] whose counterexample (Appendix A) our tests verify.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .bnl import bnl_skyline
from .dominance import (BoundDimension, DominanceStats,
                        dominates_incomplete, equal_on_dimensions,
                        null_bitmap)


def partition_by_null_bitmap(rows: Sequence[Sequence],
                             dims: Sequence[BoundDimension]
                             ) -> dict[int, list[Sequence]]:
    """Group rows by the bitmap of their null skyline dimensions."""
    partitions: dict[int, list[Sequence]] = {}
    for row in rows:
        partitions.setdefault(null_bitmap(row, dims), []).append(row)
    return partitions


def local_skylines_incomplete(rows: Sequence[Sequence],
                              dims: Sequence[BoundDimension],
                              distinct: bool = False,
                              stats: DominanceStats | None = None,
                              check_deadline: Callable[[], None] | None = None
                              ) -> list[Sequence]:
    """Union of per-bitmap-partition local skylines.

    Within one bitmap partition all tuples have identical null positions,
    hence dominance restricted to the partition is transitive and BNL
    applies unchanged (using the incomplete dominance test, which inside
    a partition coincides with the complete test on the non-null
    dimensions).
    """
    result: list[Sequence] = []
    partitions = partition_by_null_bitmap(rows, dims)
    if stats is not None:
        stats.partition_sizes.extend(len(p) for p in partitions.values())
    for partition in partitions.values():
        result.extend(bnl_skyline(partition, dims, distinct=distinct,
                                  stats=stats,
                                  dominance=dominates_incomplete,
                                  check_deadline=check_deadline))
    return result


def flagged_global_skyline(rows: Sequence[Sequence],
                           dims: Sequence[BoundDimension],
                           distinct: bool = False,
                           stats: DominanceStats | None = None,
                           check_deadline: Callable[[], None] | None = None
                           ) -> list[Sequence]:
    """Correct global skyline under cyclic dominance (Section 5.7).

    Compares all pairs, *flags* dominated tuples, and deletes flagged
    tuples only once every pair has been examined.  Even a dominated
    tuple keeps eliminating others -- this is exactly what the algorithm
    of [20] misses (see :func:`gulzar_global_skyline`).
    """
    rows = list(rows)
    n = len(rows)
    dominated = [False] * n
    comparisons = 0
    for i in range(n):
        if check_deadline is not None and i % 64 == 0:
            check_deadline()
        for j in range(i + 1, n):
            comparisons += 1
            if dominates_incomplete(rows[i], rows[j], dims):
                dominated[j] = True
            comparisons += 1
            if dominates_incomplete(rows[j], rows[i], dims):
                dominated[i] = True
    if stats is not None:
        stats.comparisons += comparisons
        stats.note_window(n)
    survivors = [row for row, flag in zip(rows, dominated) if not flag]
    if distinct:
        survivors = _drop_skyline_duplicates(survivors, dims)
    return survivors


def _drop_skyline_duplicates(rows: list[Sequence],
                             dims: Sequence[BoundDimension]
                             ) -> list[Sequence]:
    """Keep one arbitrary representative per skyline-dimension value set."""
    kept: list[Sequence] = []
    for row in rows:
        if not any(equal_on_dimensions(row, other, dims) for other in kept):
            kept.append(row)
    return kept


def gulzar_global_skyline(clusters: Sequence[Sequence[Sequence]],
                          dims: Sequence[BoundDimension]
                          ) -> list[Sequence]:
    """The *incorrect* global skyline of Gulzar et al. [20] (Appendix A).

    Visits clusters in order; for the current point ``p`` it compares
    against all not-yet-deleted points of *subsequent* clusters, deleting
    points ``p`` dominates immediately and flagging ``p`` when dominated.
    Premature deletion loses witnesses under cyclic dominance: on the
    counterexample ``a=(1,*,10), b=(3,2,*), c=(*,5,3)`` (all MIN) it
    wrongly returns ``[c]`` although the true skyline is empty.

    Provided *only* to document and test the bug; never used by the
    engine.
    """
    remaining: list[list[Sequence]] = [list(c) for c in clusters]
    for i, cluster in enumerate(remaining):
        survivors_i: list[Sequence] = []
        for p in cluster:
            p_dominated = False
            for j in range(i + 1, len(remaining)):
                survivors_j: list[Sequence] = []
                for q in remaining[j]:
                    if dominates_incomplete(p, q, dims):
                        continue  # premature deletion -- the bug
                    if dominates_incomplete(q, p, dims):
                        p_dominated = True
                    survivors_j.append(q)
                remaining[j] = survivors_j
            if not p_dominated:
                survivors_i.append(p)
        remaining[i] = survivors_i
    result: list[Sequence] = []
    for cluster in remaining:
        result.extend(cluster)
    return result
