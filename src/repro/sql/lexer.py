"""SQL tokenizer.

A hand-written lexer standing in for the ANTLR-generated one that the
paper extends (Section 5.1).  Keywords are case-insensitive; the skyline
extension adds ``SKYLINE``, ``OF``, ``COMPLETE``, ``MIN``, ``MAX`` and
``DIFF`` as (soft) keywords.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParseError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "limit", "as", "and", "or", "not", "null", "is", "in",
    "exists", "between", "like", "case", "when", "then", "else", "end",
    "join", "inner", "left", "right", "full", "outer", "cross", "on",
    "using", "asc", "desc", "nulls", "first", "last", "true", "false",
    # -- skyline extension (Listing 5) --
    "skyline", "of", "complete", "min", "max", "diff",
}

_OPERATORS = ("<=>", "<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*",
              "/", "%", "||")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int
    line: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"{self.kind.name}:{self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on invalid input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            # Line comment.
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment", i, line)
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(text, i, line)
            tokens.append(Token(TokenKind.STRING, value, i, line))
            continue
        if ch == '"' or ch == "`":
            value, i = _read_quoted_identifier(text, i, line, ch)
            tokens.append(Token(TokenKind.IDENTIFIER, value, i, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i, line)
            tokens.append(Token(TokenKind.NUMBER, value, i, line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, start, line))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, start, line))
            continue
        matched_operator = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_operator = op
                break
        if matched_operator is not None:
            tokens.append(Token(TokenKind.OPERATOR, matched_operator, i,
                                line))
            i += len(matched_operator)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i, line))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i, line)
    tokens.append(Token(TokenKind.EOF, "", n, line))
    return tokens


def _read_string(text: str, start: int, line: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start, line)


def _read_quoted_identifier(text: str, start: int, line: int,
                            quote: str) -> tuple[str, int]:
    end = text.find(quote, start + 1)
    if end < 0:
        raise ParseError("unterminated quoted identifier", start, line)
    return text[start + 1:end], end + 1


def _read_number(text: str, start: int, line: int) -> tuple[str, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    value = text[start:i]
    if value in (".",):
        raise ParseError("malformed number", start, line)
    return value, i
