"""Recursive-descent SQL parser producing unresolved logical plans.

Stands in for Spark's ANTLR parser (``AstBuilder``) with the skyline
grammar extension of Listing 5:

.. code-block:: text

    skylineClause : SKYLINE OF DISTINCT? COMPLETE? skylineItem (',' skylineItem)*
    skylineItem   : expression (MIN | MAX | DIFF)

A ``SKYLINE OF`` clause follows HAVING (if any) and precedes ORDER BY,
exactly as the paper specifies.
"""

from __future__ import annotations

from ..core.dominance import DimensionKind
from ..engine import expressions as E
from ..errors import ParseError
from ..plan import logical as L
from .lexer import Token, TokenKind, tokenize

#: Keywords that may terminate a FROM alias position.
_CLAUSE_KEYWORDS = {
    "where", "group", "having", "skyline", "order", "limit", "on", "using",
    "join", "inner", "left", "right", "full", "cross",
}


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check_keyword(self, *words: str) -> bool:
        return self.current.is_keyword(*words)

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            raise ParseError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position, self.current.line)
        return self.advance()

    def check_punct(self, value: str) -> bool:
        return (self.current.kind is TokenKind.PUNCT
                and self.current.value == value)

    def accept_punct(self, value: str) -> bool:
        if self.check_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.check_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position, self.current.line)
        return self.advance()

    def check_operator(self, *values: str) -> bool:
        return (self.current.kind is TokenKind.OPERATOR
                and self.current.value in values)

    def accept_operator(self, *values: str) -> str | None:
        if self.check_operator(*values):
            return self.advance().value
        return None

    def expect_identifier(self) -> str:
        token = self.current
        if token.kind is TokenKind.IDENTIFIER:
            self.advance()
            return token.value
        # Soft keywords (min/max/diff/complete/of...) are legal identifiers
        # outside their clause position.
        if token.kind is TokenKind.KEYWORD and token.value in (
                "min", "max", "diff", "complete", "of", "first", "last",
                "nulls"):
            self.advance()
            return token.value
        raise ParseError(f"expected identifier, found {token.value!r}",
                         token.position, token.line)

    # -- entry points --------------------------------------------------------

    def parse_query(self) -> L.LogicalPlan:
        if self._at_word("analyze"):
            plan: L.LogicalPlan = self.parse_analyze()
        else:
            plan = self.parse_select()
        if self.current.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input: {self.current.value!r}",
                self.current.position, self.current.line)
        return plan

    # -- ANALYZE TABLE ------------------------------------------------------

    def _at_word(self, word: str) -> bool:
        """True if the current token is the soft keyword ``word``.

        ANALYZE/TABLE/COMPUTE/STATISTICS are not reserved -- they stay
        usable as identifiers everywhere else.
        """
        token = self.current
        return (token.kind is TokenKind.IDENTIFIER
                and token.value.lower() == word)

    def _expect_word(self, word: str) -> None:
        if not self._at_word(word):
            raise ParseError(
                f"expected {word.upper()}, found {self.current.value!r}",
                self.current.position, self.current.line)
        self.advance()

    def parse_analyze(self) -> L.AnalyzeTable:
        """``ANALYZE TABLE name [COMPUTE STATISTICS]``."""
        self._expect_word("analyze")
        self._expect_word("table")
        name = self.expect_identifier()
        if self._at_word("compute"):
            self.advance()
            self._expect_word("statistics")
        return L.AnalyzeTable(name)

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> L.LogicalPlan:
        self.expect_keyword("select")
        is_distinct = self.accept_keyword("distinct")
        select_list = self.parse_select_list()

        plan: L.LogicalPlan
        if self.accept_keyword("from"):
            plan = self.parse_from()
        else:
            # SELECT without FROM: a single-row relation.
            plan = L.LocalRelation([], [()])

        if self.accept_keyword("where"):
            plan = L.Filter(self.parse_expression(), plan)

        grouping: list[E.Expression] = []
        has_group_by = False
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            has_group_by = True
            grouping.append(self.parse_expression())
            while self.accept_punct(","):
                grouping.append(self.parse_expression())

        named_select = [self._ensure_named(e) for e in select_list]
        uses_aggregates = any(_contains_aggregate_call(e)
                              for e in select_list)
        if has_group_by or uses_aggregates:
            plan = L.Aggregate(grouping, named_select, plan)
        else:
            plan = L.Project(named_select, plan)

        if self.accept_keyword("having"):
            plan = L.Filter(self.parse_expression(), plan)

        if self.check_keyword("skyline"):
            plan = self.parse_skyline_clause(plan)

        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order = [self.parse_sort_item()]
            while self.accept_punct(","):
                order.append(self.parse_sort_item())
            plan = L.Sort(order, True, plan)

        if self.accept_keyword("limit"):
            token = self.current
            if token.kind is not TokenKind.NUMBER:
                raise ParseError("LIMIT expects a number", token.position,
                                 token.line)
            self.advance()
            plan = L.Limit(int(token.value), plan)

        if is_distinct:
            plan = L.Distinct(plan)
        return plan

    def parse_select_list(self) -> list[E.Expression]:
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> E.Expression:
        if self.check_operator("*"):
            self.advance()
            return E.UnresolvedStar()
        # t.* form
        if (self.current.kind is TokenKind.IDENTIFIER
                and self.pos + 2 < len(self.tokens)
                and self.tokens[self.pos + 1].kind is TokenKind.PUNCT
                and self.tokens[self.pos + 1].value == "."
                and self.tokens[self.pos + 2].kind is TokenKind.OPERATOR
                and self.tokens[self.pos + 2].value == "*"):
            qualifier = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return E.UnresolvedStar(qualifier)
        expr = self.parse_expression()
        if self.accept_keyword("as"):
            return E.Alias(expr, self.expect_identifier())
        if self.current.kind is TokenKind.IDENTIFIER:
            return E.Alias(expr, self.advance().value)
        return expr

    def _ensure_named(self, expr: E.Expression) -> E.Expression:
        """Give computed select-list entries a deterministic alias."""
        if isinstance(expr, (E.Alias, E.UnresolvedStar, E.UnresolvedAttribute,
                             E.AttributeReference)):
            return expr
        return E.Alias(expr, expr.display_name)

    # -- skyline clause (Listing 5) -----------------------------------------

    def parse_skyline_clause(self, child: L.LogicalPlan) -> L.LogicalPlan:
        self.expect_keyword("skyline")
        self.expect_keyword("of")
        skyline_distinct = self.accept_keyword("distinct")
        skyline_complete = self.accept_keyword("complete")
        items = [self.parse_skyline_item()]
        while self.accept_punct(","):
            items.append(self.parse_skyline_item())
        return L.SkylineOperator(skyline_distinct, skyline_complete, items,
                                 child)

    def parse_skyline_item(self) -> E.SkylineDimension:
        expr = self.parse_expression()
        token = self.current
        if token.is_keyword("min"):
            kind = DimensionKind.MIN
        elif token.is_keyword("max"):
            kind = DimensionKind.MAX
        elif token.is_keyword("diff"):
            kind = DimensionKind.DIFF
        else:
            raise ParseError(
                f"skyline dimension must end with MIN, MAX or DIFF; "
                f"found {token.value!r}", token.position, token.line)
        self.advance()
        return E.SkylineDimension(expr, kind)

    # -- FROM / joins ---------------------------------------------------------

    def parse_from(self) -> L.LogicalPlan:
        plan = self.parse_relation()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                if self.accept_punct(","):
                    right = self.parse_relation()
                    plan = L.Join(plan, right, L.JoinType.CROSS)
                    continue
                break
            right = self.parse_relation()
            condition: E.Expression | None = None
            using: tuple[str, ...] = ()
            if self.accept_keyword("on"):
                condition = self.parse_expression()
            elif self.accept_keyword("using"):
                self.expect_punct("(")
                columns = [self.expect_identifier()]
                while self.accept_punct(","):
                    columns.append(self.expect_identifier())
                self.expect_punct(")")
                using = tuple(columns)
            elif join_type not in (L.JoinType.CROSS,):
                raise ParseError(
                    "JOIN requires an ON or USING clause",
                    self.current.position, self.current.line)
            plan = L.Join(plan, right, join_type, condition, using)
        return plan

    def _parse_join_type(self) -> str | None:
        if self.accept_keyword("join"):
            return L.JoinType.INNER
        if self.check_keyword("inner"):
            self.advance()
            self.expect_keyword("join")
            return L.JoinType.INNER
        if self.check_keyword("left"):
            self.advance()
            self.accept_keyword("outer")
            self.expect_keyword("join")
            return L.JoinType.LEFT_OUTER
        if self.check_keyword("right"):
            self.advance()
            self.accept_keyword("outer")
            self.expect_keyword("join")
            return L.JoinType.RIGHT_OUTER
        if self.check_keyword("full"):
            self.advance()
            self.accept_keyword("outer")
            self.expect_keyword("join")
            return L.JoinType.FULL_OUTER
        if self.check_keyword("cross"):
            self.advance()
            self.expect_keyword("join")
            return L.JoinType.CROSS
        return None

    def parse_relation(self) -> L.LogicalPlan:
        if self.accept_punct("("):
            inner = self.parse_select()
            self.expect_punct(")")
            alias = self._parse_optional_alias()
            if alias is not None:
                return L.SubqueryAlias(alias, inner)
            return inner
        name = self.expect_identifier()
        plan: L.LogicalPlan = L.UnresolvedRelation(name)
        alias = self._parse_optional_alias()
        if alias is not None:
            return L.SubqueryAlias(alias, plan)
        return L.SubqueryAlias(name, plan)

    def _parse_optional_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self.expect_identifier()
        token = self.current
        if (token.kind is TokenKind.IDENTIFIER
                and token.value.lower() not in _CLAUSE_KEYWORDS):
            self.advance()
            return token.value
        return None

    # -- ORDER BY -----------------------------------------------------------------

    def parse_sort_item(self) -> L.SortOrder:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        nulls_first: bool | None = None
        if self.accept_keyword("nulls"):
            if self.accept_keyword("first"):
                nulls_first = True
            elif self.accept_keyword("last"):
                nulls_first = False
            else:
                raise ParseError("expected FIRST or LAST after NULLS",
                                 self.current.position, self.current.line)
        return L.SortOrder(expr, ascending, nulls_first)

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> E.Expression:
        return self.parse_or()

    def parse_or(self) -> E.Expression:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = E.Or(left, self.parse_and())
        return left

    def parse_and(self) -> E.Expression:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = E.And(left, self.parse_not())
        return left

    def parse_not(self) -> E.Expression:
        if self.accept_keyword("not"):
            return E.Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> E.Expression:
        left = self.parse_additive()
        while True:
            if self.accept_keyword("is"):
                negated = self.accept_keyword("not")
                self.expect_keyword("null")
                left = E.IsNotNull(left) if negated else E.IsNull(left)
                continue
            if self.check_keyword("between", "in", "not"):
                negated = self.accept_keyword("not")
                if self.accept_keyword("between"):
                    low = self.parse_additive()
                    self.expect_keyword("and")
                    high = self.parse_additive()
                    between = E.And(E.GreaterThanOrEqual(left, low),
                                    E.LessThanOrEqual(left, high))
                    left = E.Not(between) if negated else between
                    continue
                if self.accept_keyword("in"):
                    self.expect_punct("(")
                    options = [self.parse_expression()]
                    while self.accept_punct(","):
                        options.append(self.parse_expression())
                    self.expect_punct(")")
                    membership = E.disjunction(
                        [E.EqualTo(left, option) for option in options])
                    left = E.Not(membership) if negated else membership
                    continue
                if negated:
                    raise ParseError("unexpected NOT",
                                     self.current.position,
                                     self.current.line)
            op = self.accept_operator("=", "<>", "!=", "<", "<=", ">", ">=",
                                      "<=>")
            if op is None:
                return left
            right = self.parse_additive()
            left = _COMPARISONS[op](left, right)

    def parse_additive(self) -> E.Expression:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-")
            if op is None:
                return left
            right = self.parse_multiplicative()
            left = E.Add(left, right) if op == "+" else E.Subtract(left,
                                                                   right)

    def parse_multiplicative(self) -> E.Expression:
        left = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            right = self.parse_unary()
            if op == "*":
                left = E.Multiply(left, right)
            elif op == "/":
                left = E.Divide(left, right)
            else:
                left = E.Modulo(left, right)

    def parse_unary(self) -> E.Expression:
        if self.accept_operator("-"):
            return E.Negate(self.parse_unary())
        if self.accept_operator("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> E.Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            if any(c in token.value for c in ".eE"):
                return E.Literal(float(token.value))
            return E.Literal(int(token.value))
        if token.kind is TokenKind.STRING:
            self.advance()
            return E.Literal(token.value)
        if token.is_keyword("true"):
            self.advance()
            return E.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return E.Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return E.Literal(None)
        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            plan = self.parse_select()
            self.expect_punct(")")
            return E.Exists(plan)
        if token.is_keyword("case"):
            return self.parse_case()
        if token.is_keyword("not"):
            self.advance()
            return E.Not(self.parse_primary())
        if self.check_punct("("):
            self.advance()
            if self.check_keyword("select"):
                plan = self.parse_select()
                self.expect_punct(")")
                return E.ScalarSubquery(plan)
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENTIFIER or token.kind is \
                TokenKind.KEYWORD:
            return self.parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r}",
                         token.position, token.line)

    def parse_case(self) -> E.Expression:
        self.expect_keyword("case")
        branches: list[tuple[E.Expression, E.Expression]] = []
        # Simple CASE (CASE expr WHEN v ...) or searched CASE.
        subject: E.Expression | None = None
        if not self.check_keyword("when"):
            subject = self.parse_expression()
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            if subject is not None:
                condition = E.EqualTo(subject, condition)
            self.expect_keyword("then")
            value = self.parse_expression()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch",
                             self.current.position, self.current.line)
        else_value: E.Expression | None = None
        if self.accept_keyword("else"):
            else_value = self.parse_expression()
        self.expect_keyword("end")
        return E.CaseWhen(branches, else_value)

    def parse_identifier_expression(self) -> E.Expression:
        """An identifier: column ref, qualified ref, or function call."""
        token = self.current
        # min/max can appear as aggregate function names even though they
        # are skyline keywords.
        if token.kind is TokenKind.KEYWORD and token.value not in (
                "min", "max", "left", "right"):
            raise ParseError(f"unexpected keyword {token.value!r}",
                             token.position, token.line)
        name = self.advance().value
        if self.check_punct("("):
            return self.parse_function_call(name)
        if self.accept_punct("."):
            column = self.expect_identifier()
            return E.UnresolvedAttribute(column, qualifier=name)
        return E.UnresolvedAttribute(name)

    def parse_function_call(self, name: str) -> E.Expression:
        self.expect_punct("(")
        is_distinct = False
        args: list[E.Expression] = []
        if self.check_operator("*"):
            self.advance()
            self.expect_punct(")")
            if name.lower() != "count":
                raise ParseError(f"{name}(*) is not supported",
                                 self.current.position, self.current.line)
            return E.Count(E.Literal(1))
        if not self.check_punct(")"):
            is_distinct = self.accept_keyword("distinct")
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return E.UnresolvedFunction(name, args, is_distinct)


def _contains_aggregate_call(expr: E.Expression) -> bool:
    """True if the (possibly unresolved) expression calls an aggregate."""
    for node in expr.iter_tree():
        if isinstance(node, E.AggregateFunction):
            return True
        if isinstance(node, E.UnresolvedFunction) and \
                node.name in E.AGGREGATE_FUNCTIONS:
            return True
    return False


_COMPARISONS = {
    "=": E.EqualTo,
    "<>": E.NotEqualTo,
    "!=": E.NotEqualTo,
    "<": E.LessThan,
    "<=": E.LessThanOrEqual,
    ">": E.GreaterThan,
    ">=": E.GreaterThanOrEqual,
    "<=>": E.EqualNullSafe,
}


def parse_query(sql: str) -> L.LogicalPlan:
    """Parse a SQL query string into an unresolved logical plan."""
    return _Parser(tokenize(sql), sql).parse_query()


def parse_expression(sql: str) -> E.Expression:
    """Parse a standalone SQL expression (used by tests and the API)."""
    parser = _Parser(tokenize(sql), sql)
    expr = parser.parse_expression()
    if parser.current.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input: {parser.current.value!r}",
            parser.current.position, parser.current.line)
    return expr
