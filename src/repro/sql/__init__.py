"""SQL front end: lexer and parser with the SKYLINE OF extension."""

from .lexer import Token, TokenKind, tokenize
from .parser import parse_expression, parse_query

__all__ = ["Token", "TokenKind", "tokenize", "parse_expression",
           "parse_query"]
