"""Physical planning: lower an optimized logical plan onto executors.

The skyline strategy implements Listing 8 of the paper:

.. code-block:: text

    skylineNullable <- exists d in D_SKY : isnullable(d)
    if COMPLETE is set OR not skylineNullable:
        local  <- local_node()            # distributed BNL
        global <- complete_global_node()  # BNL, AllTuples
    else:
        local  <- local_node()            # null-bitmap partitioned BNL
        global <- incomplete_global_node()# flagged all-pairs, AllTuples

plus a session-level override (``skyline.algorithm``) that the benchmark
harness uses to force each of the evaluated strategies, and an ``sfs``
option for the sorting-based future-work algorithm.
"""

from __future__ import annotations

from ..engine import expressions as E
from ..errors import PlanningError
from . import logical as L
from . import physical as P

#: Valid values of the ``skyline.algorithm`` session option.
SKYLINE_STRATEGIES = (
    "auto",
    "distributed-complete",
    "non-distributed-complete",
    "distributed-incomplete",
    "sfs",
    "cost-based",
    "adaptive",
)

#: Valid values of the ``skyline.partitioning`` session option;
#: ``keep`` preserves the child's partitioning (the paper's default).
PARTITIONING_SCHEMES = ("keep", "random", "grid", "angle")

#: Strategies whose local stage accepts a partitioning override.
_PARTITIONABLE = ("distributed-complete", "sfs")

#: Valid values of the ``global_merge`` session option: ``auto`` lets
#: the cost model pick, ``flat``/``hierarchical`` force the global
#: phase's merge strategy (hierarchical still falls back to flat when
#: dominance is not transitive -- incomplete data, nullable dims).
GLOBAL_MERGE_STRATEGIES = ("auto", "flat", "hierarchical")

#: Valid values of the ``execution`` session option: ``staged`` runs
#: the bulk-synchronous operator barriers, ``pipelined`` the
#: morsel-driven overlapping executor (:mod:`repro.engine.pipeline`),
#: and ``auto`` lets the cost model pick per skyline operator.
EXECUTION_MODES = ("staged", "pipelined", "auto")


class Planner:
    """Lowers logical plans to physical plans.

    ``catalog``/``num_executors``/``max_workers`` feed the cost model
    used by the ``cost-based`` and ``adaptive`` strategies;
    ``partitioning``/``num_partitions`` force a local-stage partitioning
    scheme for any distributed strategy (the benchmark harness uses this
    to evaluate fixed algorithm x partitioning combinations).  Every
    skyline operator planned leaves a
    :class:`~repro.plan.cost.PlanDecision` in :attr:`decisions`, which
    ``EXPLAIN`` renders.
    """

    def __init__(self, skyline_strategy: str = "auto", *,
                 catalog=None, num_executors: int = 2,
                 max_workers: int | None = None,
                 partitioning: str = "keep",
                 num_partitions: int | None = None,
                 vectorized: bool = False,
                 columnar: bool = False,
                 global_merge: str = "auto",
                 merge_fan_in: int | None = None,
                 execution: str = "auto",
                 operator_memory_mb: float | None = None,
                 backend: str = "local") -> None:
        if skyline_strategy not in SKYLINE_STRATEGIES:
            raise PlanningError(
                f"unknown skyline strategy {skyline_strategy!r}; expected "
                f"one of {SKYLINE_STRATEGIES}")
        if partitioning not in PARTITIONING_SCHEMES:
            raise PlanningError(
                f"unknown partitioning scheme {partitioning!r}; expected "
                f"one of {PARTITIONING_SCHEMES}")
        if global_merge not in GLOBAL_MERGE_STRATEGIES:
            raise PlanningError(
                f"unknown global merge strategy {global_merge!r}; "
                f"expected one of {GLOBAL_MERGE_STRATEGIES}")
        if merge_fan_in is not None and merge_fan_in < 2:
            raise PlanningError("merge_fan_in must be >= 2")
        if execution not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {execution!r}; expected one "
                f"of {EXECUTION_MODES}")
        if operator_memory_mb is not None and operator_memory_mb <= 0:
            raise PlanningError("operator_memory_mb must be > 0")
        self.skyline_strategy = skyline_strategy
        self.catalog = catalog
        self.num_executors = num_executors
        self.max_workers = max_workers
        self.partitioning = partitioning
        self.num_partitions = num_partitions
        #: True when the skyline operators should run the columnar
        #: NumPy kernels (:mod:`repro.core.vectorized`).
        self.vectorized = vectorized
        #: True when the plan should execute on the batch data plane:
        #: scans columnize their partitions and the batch-capable
        #: operators exchange :class:`~repro.engine.batch.ColumnBatch`es.
        self.columnar = columnar
        #: Global-merge strategy ("auto"/"flat"/"hierarchical") and an
        #: optional forced fan-in for the hierarchical merge tree.
        self.global_merge = global_merge
        self.merge_fan_in = merge_fan_in
        #: Execution mode ("staged"/"pipelined"/"auto"), the pipelined
        #: per-operator memory budget, and the backend name the cost
        #: model consults (pipelining never pays on the sequential
        #: local backend).
        self.execution = execution
        self.operator_memory_mb = operator_memory_mb
        self.backend = backend
        #: One entry per planned skyline operator, in plan order.
        self.decisions: list = []
        #: One :class:`~repro.plan.cost.MergeDecision` per planned
        #: skyline operator, in plan order (EXPLAIN's Global Merge
        #: section).
        self.merge_decisions: list = []
        #: One :class:`~repro.plan.cost.ExecutionDecision` per planned
        #: skyline operator, in plan order (EXPLAIN's Execution
        #: section).
        self.execution_decisions: list = []

    def settings_key(self) -> tuple:
        """Hashable snapshot of every planning-relevant setting.

        Two planners with equal keys (over the same catalog state)
        lower identical logical plans to identical physical plans --
        the contract the serving layer's cross-session plan cache
        relies on (its full key adds the catalog version, which covers
        the statistics feeding the adaptive strategy).
        """
        return (self.skyline_strategy, self.num_executors,
                self.max_workers, self.partitioning, self.num_partitions,
                self.vectorized, self.columnar, self.global_merge,
                self.merge_fan_in, self.execution,
                self.operator_memory_mb, self.backend)

    # -- entry point ------------------------------------------------------

    def plan(self, node: L.LogicalPlan) -> P.PhysicalPlan:
        if isinstance(node, L.LogicalRelation):
            return P.ScanExec(node.table.rows, node.output,
                              node.table.name, columnar=self.columnar,
                              table=node.table)
        if isinstance(node, L.LocalRelation):
            return P.ScanExec(node.rows, node.output, "local",
                              columnar=self.columnar)
        if isinstance(node, L.SubqueryAlias):
            # Normally eliminated by the optimizer; harmless passthrough.
            child = self.plan(node.child)
            return _RenameExec(node.output, child)
        if isinstance(node, L.Project):
            child = self.plan(node.child)
            projections = [self._lower_expr(p) for p in node.projections]
            return P.ProjectExec(projections, child)
        if isinstance(node, L.Filter):
            child = self.plan(node.child)
            return P.FilterExec(self._lower_expr(node.condition), child)
        if isinstance(node, L.Distinct):
            return P.DistinctExec(self.plan(node.child))
        if isinstance(node, L.Limit):
            return P.LimitExec(node.limit, self.plan(node.child))
        if isinstance(node, L.Sort):
            child = self.plan(node.child)
            order = [o.copy(child=self._lower_expr(o.child))
                     for o in node.order]
            return P.SortExec(order, child)
        if isinstance(node, L.Aggregate):
            child = self.plan(node.child)
            grouping = [self._lower_expr(g)
                        for g in node.grouping_expressions]
            aggregates = [self._lower_expr(a)
                          for a in node.aggregate_expressions]
            return P.HashAggregateExec(grouping, aggregates, child)
        if isinstance(node, L.Join):
            return self._plan_join(node)
        if isinstance(node, L.SkylineOperator):
            return self._plan_skyline(node)
        raise PlanningError(
            f"no physical strategy for {node.node_description()}")

    # -- expressions ----------------------------------------------------------

    def _lower_expr(self, expr: E.Expression) -> E.Expression:
        """Replace logical subquery expressions with physical ones."""

        def step(node: E.Expression) -> E.Expression:
            if isinstance(node, E.ScalarSubquery):
                return P.PhysicalScalarSubquery(self.plan(node.plan))
            if isinstance(node, E.Exists):
                raise PlanningError(
                    "EXISTS subquery survived optimization; it should have "
                    "been rewritten to a semi/anti join")
            return node

        return expr.transform_up(step)

    # -- joins ------------------------------------------------------------------

    def _plan_join(self, node: L.Join) -> P.PhysicalPlan:
        left = self.plan(node.left)
        right = self.plan(node.right)
        condition = self._lower_expr(node.condition) \
            if node.condition is not None else None
        left_ids = {a.expr_id for a in node.left.output}
        right_ids = {a.expr_id for a in node.right.output}
        left_keys: list[E.Expression] = []
        right_keys: list[E.Expression] = []
        residual: list[E.Expression] = []
        if condition is not None:
            for conjunct in E.split_conjuncts(condition):
                if isinstance(conjunct, E.EqualTo):
                    l_refs = {r.expr_id for r in conjunct.left.references()}
                    r_refs = {r.expr_id for r in conjunct.right.references()}
                    if l_refs and r_refs and l_refs <= left_ids and \
                            r_refs <= right_ids:
                        left_keys.append(conjunct.left)
                        right_keys.append(conjunct.right)
                        continue
                    if l_refs and r_refs and l_refs <= right_ids and \
                            r_refs <= left_ids:
                        left_keys.append(conjunct.right)
                        right_keys.append(conjunct.left)
                        continue
                residual.append(conjunct)
        if left_keys:
            residual_expr = E.conjunction(residual) if residual else None
            return P.HashJoinExec(left, right, node.join_type, left_keys,
                                  right_keys, residual_expr, node.output)
        return P.BroadcastNestedLoopJoinExec(left, right, node.join_type,
                                             condition, node.output)

    # -- skyline (Listing 8) -------------------------------------------------------

    def _plan_skyline(self, node: L.SkylineOperator) -> P.PhysicalPlan:
        from .cost import (CostModel, applied_decision,
                           choose_execution_mode, choose_global_merge,
                           estimate_input_rows)

        child = self.plan(node.child)
        items = node.skyline_items
        strategy = self.skyline_strategy
        partitioning = self.partitioning
        num_partitions = self.num_partitions
        grid_cells: int | None = None

        decision = None
        if strategy in ("cost-based", "adaptive"):
            # Section 7's lightweight cost-based selection, fed by the
            # statistics subsystem.
            model = CostModel(self.catalog, self.num_executors,
                              self.max_workers,
                              vectorized=self.vectorized,
                              columnar=self.columnar)
            decision = model.decide(node)
            strategy = decision.algorithm
            if self.skyline_strategy == "adaptive" and \
                    partitioning == "keep":
                # Adaptive also chooses the partitioning, unless the
                # session forces a scheme explicitly.
                partitioning = decision.partitioning
                num_partitions = decision.num_partitions
                grid_cells = decision.grid_cells_per_dim
        elif strategy == "auto":
            # Listing 8: COMPLETE keyword or non-nullable dimensions
            # allow the (faster) complete algorithm.
            use_complete = node.complete or not node.dimensions_nullable
            strategy = "distributed-complete" if use_complete \
                else "distributed-incomplete"

        # What actually runs: a repartition is only inserted for the
        # strategies with a partitionable local stage.
        applies = partitioning != "keep" and strategy in _PARTITIONABLE
        applied_count = (num_partitions or self.num_executors) \
            if applies else None
        self.decisions.append(applied_decision(
            decision, strategy, partitioning if applies else "keep",
            applied_count, auto=self.skyline_strategy == "auto"))
        est_rows = decision.estimated_rows if decision is not None \
            else estimate_input_rows(node)
        merge = choose_global_merge(
            strategy,
            num_executors=self.num_executors,
            est_partials=applied_count if applies else self.num_executors,
            estimated_rows=est_rows,
            dimensions_nullable=node.dimensions_nullable,
            forced=self.global_merge, fan_in=self.merge_fan_in)
        self.merge_decisions.append(merge)
        exec_decision = choose_execution_mode(
            strategy, backend=self.backend, estimated_rows=est_rows,
            operator_memory_mb=self.operator_memory_mb,
            forced=self.execution)
        self.execution_decisions.append(exec_decision)

        def stamp(local: P.PhysicalPlan) -> P.PhysicalPlan:
            """Mark the local chain with the chosen execution mode.

            Pipelined stamps the whole scan -> ... -> local chain
            (every operator participates in the morsel pipeline); a
            *forced* staged session stamps the local exec only.  The
            auto-resolved staged default stays unmarked so EXPLAIN
            output is unchanged for existing sessions.
            """
            if exec_decision.mode == "pipelined":
                local.operator_memory_mb = self.operator_memory_mb
                here: P.PhysicalPlan | None = local
                while here is not None:
                    here.execution = "pipelined"
                    if isinstance(here, P.ScanExec) or not here.children:
                        break
                    here = here.children[0]
            elif exec_decision.forced:
                local.execution = "staged"
            return local

        vectorized = self.vectorized
        if applies:
            child = P.SkylineRepartitionExec(
                items, partitioning, applied_count, child,
                cells_per_dimension=grid_cells, vectorized=vectorized)
        if strategy == "distributed-complete":
            local = stamp(P.SkylineLocalExec(items, node.distinct, child,
                                             vectorized=vectorized))
            return P.SkylineGlobalCompleteExec(items, node.distinct, local,
                                               vectorized=vectorized,
                                               merge=merge)
        if strategy == "non-distributed-complete":
            return P.SkylineGlobalCompleteExec(items, node.distinct, child,
                                               vectorized=vectorized,
                                               merge=merge)
        if strategy == "distributed-incomplete":
            local = stamp(P.SkylineLocalIncompleteExec(
                items, node.distinct, child, vectorized=vectorized))
            return P.SkylineGlobalIncompleteExec(items, node.distinct, local,
                                                 vectorized=vectorized,
                                                 merge=merge)
        if strategy == "sfs":
            local = stamp(P.SkylineLocalSFSExec(items, node.distinct, child,
                                                vectorized=vectorized))
            return P.SkylineGlobalSFSExec(items, node.distinct, local,
                                          vectorized=vectorized,
                                          merge=merge)
        raise PlanningError(f"unhandled skyline strategy {strategy!r}")


class _RenameExec(P.PhysicalPlan):
    """Passthrough that re-labels output attributes (SubqueryAlias)."""

    def __init__(self, output, child: P.PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self._output = output

    @property
    def output(self):
        return list(self._output)

    @property
    def exec_mode(self) -> str:
        return self.children[0].exec_mode

    def execute(self, ctx):
        return self.children[0].execute(ctx)
