"""Physical operators.

Each operator consumes and produces an :class:`~repro.engine.rdd.RDD`
of row tuples, recording per-partition task metrics in the
:class:`~repro.engine.cluster.ExecutionContext` so the simulated cluster
can derive distributed execution times and memory peaks.

The skyline operators implement the two-node split of Section 5.5: a
*local* node that runs on every partition in parallel and a *global*
node that requires the ``AllTuples`` distribution (one partition).  For
incomplete data the local node uses the null-bitmap distribution of
Section 5.7 and the global node uses flag-based all-pairs testing.
"""

from __future__ import annotations

import functools
import itertools
import math
from typing import Any, Callable, Sequence

from ..core.dominance import BoundDimension, DimensionKind, null_bitmap
from ..core.merge import (batch_merge_unsafe_reason, build_summaries,
                          merge_partials_task, merge_round_sizes,
                          merge_unsafe_reason, reduce_group, tree_shape,
                          vec_merge_batches_task, vec_merge_partials_task)
from ..core.partitioning import partition_indices, partition_rows
from ..core.sfs import monotone_score
from ..core.vectorized import (KernelSet, _monotone_scores, columnize,
                               columnize_batch, select_kernels)
from ..core.vectorized import np as _np
from ..engine import expressions as E
from ..engine.backends import StageTask
from ..engine.batch import ColumnBatch
from ..engine.cluster import ExecutionContext
from ..engine.rdd import RDD, BatchRDD
from ..errors import ExecutionError
from . import logical as L

def _rows_rdd(result: "RDD | BatchRDD") -> RDD:
    """A row RDD view of an operator's output (no-op for row RDDs).

    Row-oriented operators (sorts, joins, aggregates, shuffles) call
    this on their child's output, so they work unchanged under the
    batch data plane -- the conversion is exact, the batch plane's
    invariant.
    """
    if isinstance(result, BatchRDD):
        return result.to_row_rdd()
    return result

_node_ids = itertools.count(1)


class PhysicalScalarSubquery(E.LeafExpression):
    """A scalar subquery lowered to a physical plan.

    The planner substitutes these for
    :class:`~repro.engine.expressions.ScalarSubquery`; ``prepare`` runs
    the subplan once per query execution and caches the single value.
    """

    def __init__(self, plan: "PhysicalPlan") -> None:
        self.plan = plan
        self._value: Any = None
        self._prepared = False

    @property
    def resolved(self) -> bool:
        return True

    @property
    def dtype(self):
        output = self.plan.output
        return output[0].dtype

    def prepare(self, ctx: ExecutionContext) -> None:
        if self._prepared:
            return
        rows = self.plan.execute(ctx).collect()
        if len(rows) > 1:
            raise ExecutionError(
                f"scalar subquery returned {len(rows)} rows")
        self._value = rows[0][0] if rows else None
        self._prepared = True

    def eval(self, row: tuple) -> Any:
        if not self._prepared:
            raise ExecutionError("scalar subquery evaluated before prepare")
        return self._value

    def __repr__(self) -> str:
        return "PhysicalScalarSubquery(...)"


def _prepare_subqueries(expr: E.Expression, ctx: ExecutionContext) -> None:
    for node in expr.iter_tree():
        if isinstance(node, PhysicalScalarSubquery):
            node.prepare(ctx)


class PhysicalPlan:
    """Base class of physical operators."""

    children: tuple["PhysicalPlan", ...] = ()

    #: How this operator's partitions travel to process-backend
    #: workers: ``"shm"`` (shared-memory handles), ``"pickle"`` (by
    #: value), or ``None`` (not applicable / not a process backend).
    #: Stamped onto batch-mode operators by the session before
    #: EXPLAIN/execution; purely informational.
    transport: "str | None" = None

    #: Physical execution mode of the local skyline chain this operator
    #: belongs to: ``"pipelined"`` (morsel-driven overlap, stamped down
    #: the scan -> local chain by the planner), ``"staged"`` (only
    #: stamped when the session *forces* staged execution), or ``None``
    #: (the unmarked staged default).
    execution: "str | None" = None

    #: Per-operator memory budget (MB) for the pipelined executor;
    #: stamped onto the local skyline exec by the planner.  ``None``
    #: means the executor's built-in default.
    operator_memory_mb: "float | None" = None

    def __init__(self) -> None:
        self.node_id = next(_node_ids)

    @property
    def output(self) -> list[E.AttributeReference]:
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        raise NotImplementedError

    @property
    def exec_mode(self) -> str:
        """Partition representation this operator emits.

        ``batch`` operators exchange :class:`ColumnBatch`es (the
        columnar data plane), ``row`` operators exchange row-tuple
        lists.  Reported per operator by ``EXPLAIN``.
        """
        return "row"

    def _mode_tag(self) -> str:
        tag = f" [{self.exec_mode}]"
        if self.transport is not None and self.exec_mode == "batch":
            tag += f" [{self.transport}]"
        if self.execution is not None:
            tag += f" [{self.execution}]"
        return tag

    def stage_name(self, suffix: str = "") -> str:
        base = f"{type(self).__name__}-{self.node_id}"
        return f"{base}{suffix}"

    def iter_tree(self):
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def __repr__(self) -> str:
        return physical_tree_string(self)

    def node_description(self) -> str:
        return type(self).__name__


def physical_tree_string(plan: PhysicalPlan, indent: int = 0) -> str:
    lines = ["  " * indent + plan.node_description()]
    for child in plan.children:
        lines.append(physical_tree_string(child, indent + 1))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


class ScanExec(PhysicalPlan):
    """Read a catalog table, split over the default parallelism.

    With ``columnar=True`` (the session's batch data plane) each
    partition is columnized **once** here -- the single row->batch
    boundary of a fully columnar plan -- and every downstream
    batch-capable operator exchanges :class:`ColumnBatch`es.
    """

    def __init__(self, rows: list[tuple],
                 output: list[E.AttributeReference],
                 description: str = "scan",
                 columnar: bool = False,
                 table=None) -> None:
        super().__init__()
        self.rows = rows
        self._output = output
        self.description = description
        self.columnar = columnar
        #: The catalog :class:`~repro.engine.catalog.Table` behind
        #: ``rows`` (``None`` for literal relations).  Its
        #: ``data_version`` keys the columnize cache below.
        self.table = table
        self._batch_cache: "tuple | None" = None

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    @property
    def exec_mode(self) -> str:
        return "batch" if self.columnar else "row"

    def _cache_key(self, num_partitions: int) -> tuple:
        version = self.table.data_version if self.table is not None \
            else None
        return (id(self.rows), len(self.rows), version, num_partitions)

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        num_partitions = ctx.config.default_parallelism
        rdd = RDD.from_rows(self.rows, num_partitions)
        if self.columnar:
            # "Columnize once": re-executions of a prepared plan reuse
            # the typed batches as long as the table version (bumped by
            # every catalog DML delta) and partitioning are unchanged.
            # Same caveat as the statistics cache: mutating the row
            # list behind the catalog's back is undetectable.
            width = len(self._output)
            key = self._cache_key(num_partitions)
            cached = self._batch_cache
            if cached is not None and cached[0] == key:
                tasks = [StageTask(partition=i, rows_in=batch.num_rows,
                                   bytes_in=batch.nbytes,
                                   fn=lambda batch=batch: batch)
                         for i, batch in enumerate(cached[1])]
                return BatchRDD(ctx.run_stage(self.stage_name(), tasks))
            tasks = [StageTask(
                partition=i, rows_in=len(partition),
                fn=lambda rows=partition: ColumnBatch.from_rows(
                    rows, width))
                for i, partition in enumerate(rdd.partitions)]
            batches = ctx.run_stage(self.stage_name(), tasks)
            self._batch_cache = (key, batches)
            return BatchRDD(batches)
        tasks = [StageTask(partition=i, rows_in=len(partition),
                           fn=lambda rows=partition: rows)
                 for i, partition in enumerate(rdd.partitions)]
        ctx.run_stage(self.stage_name(), tasks)
        return rdd

    def node_description(self) -> str:
        return f"Scan({self.description}, {len(self.rows)} rows)" \
            + self._mode_tag()


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------


def _filter_batch(batch: ColumnBatch,
                  condition: E.Expression) -> ColumnBatch:
    """One batch filtered to the rows where ``condition`` is TRUE."""
    verdict = condition.eval_batch(batch)
    if verdict.is_array:
        keep = verdict.data if verdict.mask is None \
            else (verdict.data & ~verdict.mask)
    else:
        keep = [v is True for v in verdict.data]
    return batch.compress(keep)


class FilterExec(PhysicalPlan):
    def __init__(self, condition: E.Expression, child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self.condition = E.bind_expression(condition, child.output)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    @property
    def exec_mode(self) -> str:
        return self.children[0].exec_mode

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        _prepare_subqueries(self.condition, ctx)
        child_out = self.children[0].execute(ctx)
        if isinstance(child_out, BatchRDD):
            condition = self.condition
            tasks = [StageTask(
                partition=i, rows_in=batch.num_rows,
                bytes_in=batch.nbytes,
                fn=lambda batch=batch: _filter_batch(batch, condition))
                for i, batch in enumerate(child_out.batches)]
            return BatchRDD(ctx.run_stage(self.stage_name(), tasks))
        predicate = self.condition.eval
        tasks = []
        for i, partition in enumerate(child_out.partitions):
            def task(rows=partition):
                return [row for row in rows if predicate(row) is True]
            tasks.append(StageTask(partition=i, rows_in=len(partition),
                                   fn=task))
        return RDD(ctx.run_stage(self.stage_name(), tasks))

    def node_description(self) -> str:
        return f"Filter({self.condition!r})" + self._mode_tag()


class ProjectExec(PhysicalPlan):
    def __init__(self, projections: Sequence[E.Expression],
                 child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self._output = [E.named_output(p) for p in projections]
        self.projections = [E.bind_expression(p, child.output)
                            for p in projections]

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    @property
    def exec_mode(self) -> str:
        return self.children[0].exec_mode

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        for projection in self.projections:
            _prepare_subqueries(projection, ctx)
        child_out = self.children[0].execute(ctx)
        if isinstance(child_out, BatchRDD):
            projections = self.projections
            tasks = [StageTask(
                partition=i, rows_in=batch.num_rows,
                bytes_in=batch.nbytes,
                fn=lambda batch=batch: ColumnBatch(
                    [p.eval_batch(batch) for p in projections],
                    num_rows=batch.num_rows))
                for i, batch in enumerate(child_out.batches)]
            return BatchRDD(ctx.run_stage(self.stage_name(), tasks))
        evaluators = [p.eval for p in self.projections]
        tasks = []
        for i, partition in enumerate(child_out.partitions):
            def task(rows=partition):
                return [tuple(ev(row) for ev in evaluators) for row in rows]
            tasks.append(StageTask(partition=i, rows_in=len(partition),
                                   fn=task))
        return RDD(ctx.run_stage(self.stage_name(), tasks))

    def node_description(self) -> str:
        return "Project" + self._mode_tag()


class LimitExec(PhysicalPlan):
    def __init__(self, limit: int, child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self.limit = limit

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    def execute(self, ctx: ExecutionContext) -> RDD:
        child_rdd = _rows_rdd(self.children[0].execute(ctx))
        rows = child_rdd.collect()[:self.limit]
        stage = self.stage_name()
        ctx.stage(stage, parallelizable=False)
        ctx.run_task(stage, 0, lambda: rows, len(rows),
                     parallelizable=False)
        return RDD([rows])


class DistinctExec(PhysicalPlan):
    def __init__(self, child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    def execute(self, ctx: ExecutionContext) -> RDD:
        child_rdd = _rows_rdd(self.children[0].execute(ctx))
        stage = self.stage_name()
        ctx.record_shuffle(stage, child_rdd.count())

        def task():
            seen: set = set()
            result = []
            for row in child_rdd.iter_rows():
                if row not in seen:
                    seen.add(row)
                    result.append(row)
            return result

        rows = ctx.run_task(stage, 0, task, child_rdd.count(),
                            parallelizable=False)
        return RDD([rows])


class SortExec(PhysicalPlan):
    def __init__(self, order: Sequence[L.SortOrder],
                 child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self.order = [o.copy(child=E.bind_expression(o.child, child.output))
                      for o in order]

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    def execute(self, ctx: ExecutionContext) -> RDD:
        child_rdd = _rows_rdd(self.children[0].execute(ctx))
        stage = self.stage_name()
        ctx.record_shuffle(stage, child_rdd.count())
        comparator = _build_comparator(self.order)

        def task():
            return sorted(child_rdd.collect(),
                          key=functools.cmp_to_key(comparator))

        rows = ctx.run_task(stage, 0, task, child_rdd.count(),
                            parallelizable=False)
        return RDD([rows])


def _build_comparator(order: Sequence[L.SortOrder]
                      ) -> Callable[[tuple, tuple], int]:
    def comparator(a: tuple, b: tuple) -> int:
        for spec in order:
            av = spec.child.eval(a)
            bv = spec.child.eval(b)
            if av is None and bv is None:
                continue
            if av is None:
                return -1 if spec.nulls_first else 1
            if bv is None:
                return 1 if spec.nulls_first else -1
            if av == bv:
                continue
            result = -1 if av < bv else 1
            return result if spec.ascending else -result
        return 0

    return comparator


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class HashAggregateExec(PhysicalPlan):
    """Hash aggregation over grouping keys.

    The output expressions may be arbitrary trees over grouping
    expressions and aggregate functions; they are rewritten onto an
    internal layout ``(grouping values..., aggregate results...)`` and
    evaluated per group.
    """

    def __init__(self, grouping: Sequence[E.Expression],
                 aggregates: Sequence[E.Expression],
                 child: PhysicalPlan) -> None:
        super().__init__()
        self.children = (child,)
        self._output = [E.named_output(a) for a in aggregates]
        self.grouping = [E.bind_expression(g, child.output)
                         for g in grouping]
        self._grouping_sql = [g.sql() for g in grouping]

        # Collect distinct aggregate functions appearing in the output.
        agg_functions: list[E.AggregateFunction] = []
        agg_sql: list[str] = []
        for expr in aggregates:
            for node in expr.iter_tree():
                if isinstance(node, E.AggregateFunction) and \
                        node.sql() not in agg_sql:
                    agg_sql.append(node.sql())
                    agg_functions.append(node)
        self.agg_functions = [
            type(f)(E.bind_expression(f.child, child.output), f.is_distinct)
            for f in agg_functions]
        self._agg_sql = agg_sql

        # Rewrite output expressions onto the internal layout.
        internal_width = len(grouping) + len(agg_sql)
        self.result_exprs = [
            self._rewrite_output(expr, grouping, internal_width)
            for expr in aggregates]

    def _rewrite_output(self, expr: E.Expression,
                        grouping: Sequence[E.Expression],
                        width: int) -> E.Expression:
        grouping_sql = self._grouping_sql
        agg_sql = self._agg_sql

        def step(node: E.Expression) -> E.Expression:
            if isinstance(node, E.AggregateFunction):
                index = len(grouping_sql) + agg_sql.index(node.sql())
                return E.BoundReference(index, node.dtype, True)
            if isinstance(node, E.AttributeReference):
                # Must be a grouping column.
                for i, g in enumerate(grouping):
                    if isinstance(g, E.AttributeReference) and \
                            g.expr_id == node.expr_id:
                        return E.BoundReference(i, node.dtype, node.nullable)
                raise ExecutionError(
                    f"non-grouping attribute {node!r} in aggregate output")
            if node.sql() in grouping_sql:
                index = grouping_sql.index(node.sql())
                return E.BoundReference(index, node.dtype, True)
            return node

        def rewrite(node: E.Expression) -> E.Expression:
            replaced = step(node)
            if replaced is not node:
                return replaced
            if node.children:
                return node.with_children(
                    [rewrite(c) for c in node.children])
            return node

        return rewrite(expr)

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    def execute(self, ctx: ExecutionContext) -> RDD:
        child_rdd = _rows_rdd(self.children[0].execute(ctx))
        stage = self.stage_name()
        ctx.record_shuffle(stage, child_rdd.count())
        grouping_evals = [g.eval for g in self.grouping]
        functions = self.agg_functions

        def task():
            groups: dict[tuple, list[Any]] = {}
            for row in child_rdd.iter_rows():
                key = tuple(ev(row) for ev in grouping_evals)
                state = groups.get(key)
                if state is None:
                    state = [f.initial() for f in functions]
                    groups[key] = state
                for i, f in enumerate(functions):
                    state[i] = f.update(state[i], f.child.eval(row))
            if not groups and not self.grouping:
                # Global aggregate over the empty input: one null row
                # (count() handles its own zero via initial()).
                groups[()] = [f.initial() for f in functions]
            result = []
            for key, state in groups.items():
                internal = key + tuple(
                    f.result(acc) for f, acc in zip(functions, state))
                result.append(tuple(expr.eval(internal)
                                    for expr in self.result_exprs))
            return result

        rows = ctx.run_task(stage, 0, task, child_rdd.count(),
                            parallelizable=False)
        return RDD([rows])

    def node_description(self) -> str:
        keys = ", ".join(self._grouping_sql)
        return f"HashAggregate(keys=[{keys}])"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


class HashJoinExec(PhysicalPlan):
    """Equi-join via a broadcast hash table on the right side."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 join_type: str,
                 left_keys: Sequence[E.Expression],
                 right_keys: Sequence[E.Expression],
                 residual: E.Expression | None,
                 output: list[E.AttributeReference]) -> None:
        super().__init__()
        self.children = (left, right)
        self.join_type = join_type
        self.left_keys = [E.bind_expression(k, left.output)
                          for k in left_keys]
        self.right_keys = [E.bind_expression(k, right.output)
                           for k in right_keys]
        combined = list(left.output) + list(right.output)
        self.residual = E.bind_expression(residual, combined) \
            if residual is not None else None
        self._output = output

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    def execute(self, ctx: ExecutionContext) -> RDD:
        left_rdd = _rows_rdd(self.children[0].execute(ctx))
        right_rdd = _rows_rdd(self.children[1].execute(ctx))
        stage = self.stage_name()
        right_rows = right_rdd.collect()
        ctx.record_shuffle(stage, len(right_rows))

        table: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            key = tuple(k.eval(row) for k in self.right_keys)
            if any(v is None for v in key):
                continue  # null keys never match
            table.setdefault(key, []).append(row)

        right_width = len(self.children[1].output)
        left_width = len(self.children[0].output)
        null_right = (None,) * right_width
        null_left = (None,) * left_width
        residual = self.residual
        join_type = self.join_type
        matched_right: set[int] = set()
        right_index = {id(row): i for i, row in enumerate(right_rows)}

        tasks = []
        for i, partition in enumerate(left_rdd.partitions):
            def task(rows=partition):
                out = []
                for left_row in rows:
                    key = tuple(k.eval(left_row) for k in self.left_keys)
                    matches = [] if any(v is None for v in key) \
                        else table.get(key, [])
                    kept = []
                    for right_row in matches:
                        combined = left_row + right_row
                        if residual is not None and \
                                residual.eval(combined) is not True:
                            continue
                        kept.append(right_row)
                        if join_type == L.JoinType.FULL_OUTER:
                            matched_right.add(right_index[id(right_row)])
                    if join_type == L.JoinType.LEFT_SEMI:
                        if kept:
                            out.append(left_row)
                    elif join_type == L.JoinType.LEFT_ANTI:
                        if not kept:
                            out.append(left_row)
                    elif kept:
                        out.extend(left_row + r for r in kept)
                    elif join_type in (L.JoinType.LEFT_OUTER,
                                       L.JoinType.FULL_OUTER):
                        out.append(left_row + null_right)
                return out

            tasks.append(StageTask(partition=i, rows_in=len(partition),
                                   fn=task))
        result_partitions = ctx.run_stage(stage, tasks)

        if join_type == L.JoinType.RIGHT_OUTER:
            return self._right_outer(ctx, left_rdd, right_rows, stage)
        if join_type == L.JoinType.FULL_OUTER:
            tail = [null_left + row for i, row in enumerate(right_rows)
                    if i not in matched_right]
            if tail:
                result_partitions.append(tail)
        return RDD(result_partitions)

    def _right_outer(self, ctx: ExecutionContext, left_rdd: RDD,
                     right_rows: list[tuple], stage: str) -> RDD:
        """Right outer join: probe from the right side instead."""
        left_rows = left_rdd.collect()
        table: dict[tuple, list[tuple]] = {}
        for row in left_rows:
            key = tuple(k.eval(row) for k in self.left_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
        null_left = (None,) * len(self.children[0].output)
        residual = self.residual

        def task():
            out = []
            for right_row in right_rows:
                key = tuple(k.eval(right_row) for k in self.right_keys)
                matches = [] if any(v is None for v in key) \
                    else table.get(key, [])
                kept = []
                for left_row in matches:
                    combined = left_row + right_row
                    if residual is not None and \
                            residual.eval(combined) is not True:
                        continue
                    kept.append(left_row)
                if kept:
                    out.extend(left + right_row for left in kept)
                else:
                    out.append(null_left + right_row)
            return out

        rows = ctx.run_task(stage + "-right", 0, task, len(right_rows),
                            parallelizable=False)
        return RDD([rows])

    def node_description(self) -> str:
        return f"HashJoin({self.join_type})"


class BroadcastNestedLoopJoinExec(PhysicalPlan):
    """Nested-loop join for non-equi conditions.

    This is the operator Spark falls back to for the correlated
    ``NOT EXISTS`` dominance predicate of the plain-SQL skyline rewrite:
    every left row scans the broadcast right side -- quadratic work, the
    root cause of the reference algorithm's poor scaling.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 join_type: str, condition: E.Expression | None,
                 output: list[E.AttributeReference]) -> None:
        super().__init__()
        self.children = (left, right)
        self.join_type = join_type
        combined = list(left.output) + list(right.output)
        self.condition = E.bind_expression(condition, combined) \
            if condition is not None else None
        self._output = output

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    def execute(self, ctx: ExecutionContext) -> RDD:
        left_rdd = _rows_rdd(self.children[0].execute(ctx))
        right_rdd = _rows_rdd(self.children[1].execute(ctx))
        stage = self.stage_name()
        right_rows = right_rdd.collect()
        ctx.record_shuffle(stage, len(right_rows) * max(
            1, left_rdd.num_partitions))
        condition = self.condition
        join_type = self.join_type
        null_right = (None,) * len(self.children[1].output)

        tasks = []
        for i, partition in enumerate(left_rdd.partitions):
            def task(rows=partition):
                out = []
                tick = 0
                for left_row in rows:
                    tick += 1
                    if tick % 64 == 0:
                        ctx.check_deadline()
                    matched = False
                    collected = []
                    for right_row in right_rows:
                        if condition is None:
                            passes = True
                        else:
                            passes = condition.eval(
                                left_row + right_row) is True
                        if passes:
                            matched = True
                            if join_type in (L.JoinType.LEFT_SEMI,
                                             L.JoinType.LEFT_ANTI):
                                break
                            collected.append(left_row + right_row)
                    if join_type == L.JoinType.LEFT_SEMI:
                        if matched:
                            out.append(left_row)
                    elif join_type == L.JoinType.LEFT_ANTI:
                        if not matched:
                            out.append(left_row)
                    elif collected:
                        out.extend(collected)
                    elif join_type == L.JoinType.LEFT_OUTER:
                        out.append(left_row + null_right)
                return out

            tasks.append(StageTask(partition=i, rows_in=len(partition),
                                   fn=task))
        return RDD(ctx.run_stage(stage, tasks))

    def node_description(self) -> str:
        return f"BroadcastNestedLoopJoin({self.join_type})"


# ---------------------------------------------------------------------------
# Skyline operators (Section 5.5 - 5.7)
# ---------------------------------------------------------------------------


def _bind_dimensions(items: Sequence[E.SkylineDimension],
                     input_attributes: Sequence[E.AttributeReference]
                     ) -> list[BoundDimension]:
    """Bind skyline dimensions to tuple ordinals.

    Every dimension must resolve to a direct attribute of the child
    output; the analyzer guarantees this by materialising computed
    dimensions (aggregates etc.) as child columns first.
    """
    index_by_id = {a.expr_id: i for i, a in enumerate(input_attributes)}
    dims: list[BoundDimension] = []
    for item in items:
        child = item.child
        if isinstance(child, E.Alias):
            child = child.to_attribute()
        if not isinstance(child, E.AttributeReference):
            raise ExecutionError(
                f"skyline dimension {item.sql()} did not resolve to a "
                f"column; the analyzer should have materialised it")
        try:
            index = index_by_id[child.expr_id]
        except KeyError:
            raise ExecutionError(
                f"skyline dimension {item.sql()} not present in child "
                f"output") from None
        dims.append(BoundDimension(index, item.kind))
    return dims


def _local_skyline_tasks(ctx: ExecutionContext,
                         partitions: Sequence[list[tuple]],
                         func: Callable, extra_args: tuple,
                         kernel: str = "scalar") -> list[StageTask]:
    """Per-partition skyline tasks in both execution flavours.

    ``fn`` is a deadline-aware in-process closure (used by the local and
    thread backends); ``func``/``args`` is the picklable payload process
    backends ship to workers (workers cannot see the driver's deadline
    clock, so the budget is checked between stages instead).
    """
    tasks = []
    for i, partition in enumerate(partitions):
        args = (partition, *extra_args)
        tasks.append(StageTask(
            partition=i, rows_in=len(partition),
            fn=functools.partial(func, *args,
                                 check_deadline=ctx.check_deadline),
            func=func, args=args, kernel=kernel))
    return tasks


class _SkylineExec(PhysicalPlan):
    """Shared plumbing of the skyline operators.

    ``vectorized=True`` selects the columnar NumPy kernels of
    :mod:`repro.core.vectorized` (which fall back to the scalar
    reference per partition when the data cannot be columnized);
    the default keeps the pure-Python kernels.

    Under the batch data plane (a :class:`BatchRDD` child) the
    vectorized operators run the ``*_batch`` kernels, which assemble
    their oriented value matrix straight from the batch columns --
    no per-partition re-columnization -- and return filtered batches.
    A scalar kernel set always drops to rows first (honouring
    ``vectorized=False`` even in a columnar session).
    """

    #: Which batch kernel of the :class:`KernelSet` this operator runs
    #: (overridden per subclass; ``None`` = no batch path).
    batch_kernel_attr: str | None = None

    def __init__(self, items: Sequence[E.SkylineDimension], distinct: bool,
                 child: PhysicalPlan, vectorized: bool = False,
                 merge=None) -> None:
        super().__init__()
        self.children = (child,)
        self.items = list(items)
        self.distinct = distinct
        self.dims = _bind_dimensions(items, child.output)
        self.kernels: KernelSet = select_kernels(vectorized)
        #: The planner's :class:`~repro.plan.cost.MergeDecision` for the
        #: global phase (``None`` on local operators and legacy
        #: constructions: the flat single-task merge).
        self.merge_plan = merge
        #: Resident input partitions: ``(token, BatchRDD)`` reused by
        #: re-executions under the shared-memory data plane.
        self._pinned: "tuple | None" = None

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    def _batch_kernel(self):
        if self.batch_kernel_attr is None:
            return None
        return getattr(self.kernels, self.batch_kernel_attr)

    @property
    def exec_mode(self) -> str:
        if self.children[0].exec_mode == "batch" and \
                self._batch_kernel() is not None:
            return "batch"
        return "row"

    def _batch_input(self, child_out: "RDD | BatchRDD"
                     ) -> "BatchRDD | None":
        """The child output as batches when the batch path applies."""
        if isinstance(child_out, BatchRDD) and \
                self._batch_kernel() is not None:
            return child_out
        return None

    # -- resident input partitions (shared-memory data plane) -------------

    def _input_token(self, ctx: ExecutionContext) -> "tuple | None":
        """Validity token of this operator's input partitions.

        The chain below a local skyline operator is deterministic data
        preparation (scan, filter, project, repartition), so its output
        only changes when the scanned data or the partitioning does.
        The token captures exactly that: the leaf scan's identity and
        catalog ``data_version`` plus the parallelism.  ``None`` means
        the chain has an unexpected shape -- never pin then.
        """
        node: PhysicalPlan = self.children[0]
        while True:
            if isinstance(node, ScanExec):
                version = node.table.data_version \
                    if node.table is not None else None
                return (id(node.rows), len(node.rows), version,
                        ctx.config.default_parallelism)
            if isinstance(node, (FilterExec, ProjectExec,
                                 SkylineRepartitionExec)):
                node = node.children[0]
                continue
            return None

    def _resident_child(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        """The child output, kept resident across plan re-executions.

        Only under an active :class:`~repro.engine.shm.SharedColumnStore`
        (process backend with ``shared_memory`` on): the input batches
        are pinned in the store, so repeat executions of a prepared
        query ship the *same* segments as handles instead of
        re-columnizing, re-filtering and re-copying -- this is what
        "partitions stay resident across stages" buys end to end.
        Catalog DML bumps the leaf table's ``data_version``, which
        invalidates the pin (and releases the stale segments).
        """
        store = getattr(ctx, "shm_store", None)
        if store is None or store.closed:
            return self.children[0].execute(ctx)
        token = self._input_token(ctx)
        if token is not None and self._pinned is not None \
                and self._pinned[0] == token:
            rdd = self._pinned[1]
            store.pin(rdd.batches)  # idempotent; re-pins after close
            return rdd
        child_out = self.children[0].execute(ctx)
        if token is not None and isinstance(child_out, BatchRDD) \
                and self._batch_kernel() is not None:
            if self._pinned is not None:
                store.unpin(self._pinned[1].batches)
            store.pin(child_out.batches)
            self._pinned = (token, child_out)
        return child_out

    def _global_batch_execute(self, ctx: ExecutionContext,
                              batches: "BatchRDD") -> "BatchRDD":
        """The shared global-stage batch shape (``AllTuples``): merge
        every partition into one batch and run the batch kernel as a
        single non-parallelizable task."""
        stage = self.stage_name()
        merged = batches.concat()
        ctx.record_shuffle(stage, merged.num_rows)
        func = self._batch_kernel()
        task = functools.partial(func, merged, self.dims, self.distinct,
                                 check_deadline=ctx.check_deadline)
        result = ctx.run_task(stage, 0, task, merged.num_rows,
                              parallelizable=False,
                              kernel=self.kernels.name)
        return BatchRDD([result])

    def _batch_tasks(self, ctx: ExecutionContext,
                     batches: Sequence[ColumnBatch]) -> list[StageTask]:
        """Per-partition batch-kernel tasks (picklable payloads)."""
        func = self._batch_kernel()
        tasks = []
        for i, batch in enumerate(batches):
            args = (batch, self.dims, self.distinct)
            tasks.append(StageTask(
                partition=i, rows_in=batch.num_rows,
                bytes_in=batch.nbytes,
                fn=functools.partial(func, *args,
                                     check_deadline=ctx.check_deadline),
                func=func, args=args, kernel=self.kernels.name))
        return tasks

    def _kernel_label(self, algorithm: str) -> str:
        if self.kernels.name == "vectorized":
            return f"vectorized {algorithm}"
        return algorithm

    def _pipelined_local(self, ctx: ExecutionContext
                         ) -> "RDD | BatchRDD | None":
        """The morsel-driven execution of this local operator's chain.

        Returns ``None`` when the operator is not stamped for pipelined
        execution or the chain has a shape the pipelined executor does
        not support (recorded in ``ctx.pipeline``), in which case the
        caller proceeds with the staged path.
        """
        if self.execution != "pipelined":
            return None
        from ..engine.pipeline import run_pipelined_local
        return run_pipelined_local(self, ctx)

    # -- hierarchical global merge (tournament tree) ---------------------

    def _merge_tag(self) -> str:
        plan = self.merge_plan
        if plan is not None and plan.strategy == "hierarchical":
            return f" [merge tree fan-in {plan.fan_in}]"
        return ""

    def _record_flat_merge(self, ctx: ExecutionContext,
                           fallback: str | None = None) -> None:
        """Surface the (flat) global-merge shape in the context metrics.

        ``fallback`` carries the *runtime* reason a planned hierarchical
        merge dropped back to the flat pass (unmergeable data, too few
        partials); the planner-side reason lives in ``reason``.
        """
        plan = self.merge_plan
        ctx.global_merge = {
            "strategy": "flat", "fan_in": None, "partials": None,
            "tree": None,
            "reason": plan.reason if plan is not None
            else "single-task global phase",
            "rounds_planned": 0, "rounds_completed": 0,
            "round_tasks": [], "concat_merges": 0, "short_circuits": 0,
            "fallback": fallback,
        }

    def _init_merge_info(self, ctx: ExecutionContext,
                         num_partials: int) -> dict:
        plan = self.merge_plan
        info = {
            "strategy": "hierarchical", "fan_in": plan.fan_in,
            "partials": num_partials,
            "tree": tree_shape(num_partials, plan.fan_in),
            "reason": plan.reason,
            "rounds_planned":
                len(merge_round_sizes(num_partials, plan.fan_in)) - 1,
            "rounds_completed": 0, "round_tasks": [],
            "concat_merges": 0, "short_circuits": 0, "fallback": None,
        }
        ctx.global_merge = info
        return info

    def _scores_finite_rows(self, rows) -> bool | None:
        """Whether every SFS monotone score is finite (``None``:
        not computable -- non-numeric dimension values)."""
        try:
            return all(math.isfinite(monotone_score(row, self.dims))
                       for row in rows)
        except TypeError:
            return None

    def _scores_finite_batches(self, parts: Sequence[ColumnBatch]
                               ) -> bool | None:
        for part in parts:
            block = columnize_batch(part, self.dims)
            if block is None:
                finite = self._scores_finite_rows(part.to_rows())
            else:
                finite = bool(_np.isfinite(
                    _monotone_scores(block.values)).all())
            if finite is not True:
                return finite
        return True

    def _run_merge_rounds(self, ctx: ExecutionContext, partials: list,
                          merge_func: Callable, *, blocks_of: Callable,
                          size_of: Callable, concat: Callable | None):
        """Execute the merge tree as real scheduled stages.

        ``partials`` are row lists or :class:`ColumnBatch`es (opaque
        here); each round recomputes the grid summaries from the
        *surviving* rows -- a stale summary could claim dominance rows
        it no longer has -- reduces every consecutive fan-in group with
        the shortcut rules, and runs one merge task per group that
        still needs comparisons.  Retry/deadline semantics ride on
        :meth:`ExecutionContext.run_stage` per round.
        """
        plan = self.merge_plan
        info = ctx.global_merge
        fan_in = max(2, plan.fan_in or 2)
        rounds = 0
        while len(partials) > 1:
            rounds += 1
            stage = f"{self.stage_name()}.round{rounds}"
            summaries = build_summaries(
                [blocks_of(p) for p in partials])
            next_partials: list = []
            tasks: list[StageTask] = []
            slots: list[int] = []
            for g in range(0, len(partials), fan_in):
                group = partials[g:g + fan_in]
                gsum = summaries[g:g + fan_in] \
                    if summaries is not None else None
                segments = reduce_group(group, gsum, info, concat)
                if len(segments) == 1:
                    next_partials.append(segments[0])
                    continue
                next_partials.append(None)
                slots.append(len(next_partials) - 1)
                args = (segments, self.dims, self.distinct)
                tasks.append(StageTask(
                    partition=len(tasks),
                    rows_in=sum(size_of(s) for s in segments),
                    fn=functools.partial(
                        merge_func, *args,
                        check_deadline=ctx.check_deadline),
                    func=merge_func, args=args,
                    kernel=self.kernels.name))
            if tasks:
                ctx.record_shuffle(stage, sum(t.rows_in for t in tasks))
                results = ctx.run_stage(stage, tasks)
                for slot, result in zip(slots, results):
                    next_partials[slot] = result
            info["round_tasks"].append(len(tasks))
            info["rounds_completed"] = rounds
            partials = next_partials
        return partials[0]

    def _try_hierarchical_rows(self, ctx: ExecutionContext,
                               child_out: "RDD | BatchRDD",
                               sfs: bool = False) -> "RDD | None":
        """The multi-round merge over row partials, or ``None`` when the
        flat global phase should run (shape recorded either way)."""
        plan = self.merge_plan
        if plan is None or plan.strategy != "hierarchical":
            self._record_flat_merge(ctx)
            return None
        partials = [list(p) for p in _rows_rdd(child_out).partitions if p]
        if len(partials) < 2:
            self._record_flat_merge(
                ctx, fallback="fewer than two non-empty local skylines")
            return None
        reason = merge_unsafe_reason(partials, self.dims)
        if reason is not None:
            self._record_flat_merge(ctx, fallback=reason)
            return None
        finalize = None
        if sfs:
            finite = self._scores_finite_rows(
                row for part in partials for row in part)
            if finite is None:
                self._record_flat_merge(
                    ctx, fallback="non-numeric skyline dimension values")
                return None
            if finite:
                # All-finite scores: the flat global SFS task would
                # sort; reproduce it with one final SFS pass over the
                # merged skyline.  Non-finite scores pin flat SFS to
                # its BNL fallback -- which the merge tree *is*.
                finalize = self.kernels.local_sfs
        self._init_merge_info(ctx, len(partials))
        merge_func = vec_merge_partials_task \
            if self.kernels.name == "vectorized" else merge_partials_task
        merged = self._run_merge_rounds(
            ctx, partials, merge_func,
            blocks_of=lambda p: columnize(p, self.dims),
            size_of=len, concat=None)
        if finalize is not None:
            fstage = f"{self.stage_name()}.finalize"
            ctx.record_shuffle(fstage, len(merged))
            task = functools.partial(finalize, merged, self.dims,
                                     self.distinct,
                                     check_deadline=ctx.check_deadline)
            merged = ctx.run_task(fstage, 0, task, len(merged),
                                  parallelizable=False,
                                  kernel=self.kernels.name)
        return RDD([merged])

    def _try_hierarchical_batches(self, ctx: ExecutionContext,
                                  batches: "BatchRDD",
                                  sfs: bool = False) -> "BatchRDD | None":
        """Batch-plane twin of :meth:`_try_hierarchical_rows`."""
        plan = self.merge_plan
        if plan is None or plan.strategy != "hierarchical":
            self._record_flat_merge(ctx)
            return None
        parts = [b for b in batches.batches if b.num_rows]
        if len(parts) < 2:
            self._record_flat_merge(
                ctx, fallback="fewer than two non-empty local skylines")
            return None
        reason = batch_merge_unsafe_reason(parts, self.dims)
        if reason is not None:
            self._record_flat_merge(ctx, fallback=reason)
            return None
        finalize = None
        if sfs:
            finite = self._scores_finite_batches(parts)
            if finite is None:
                self._record_flat_merge(
                    ctx, fallback="non-numeric skyline dimension values")
                return None
            if finite:
                finalize = self._batch_kernel()
        self._init_merge_info(ctx, len(parts))
        merged = self._run_merge_rounds(
            ctx, parts, vec_merge_batches_task,
            blocks_of=lambda b: columnize_batch(b, self.dims),
            size_of=lambda b: b.num_rows,
            concat=lambda items: ColumnBatch.concat(list(items)))
        if finalize is not None:
            fstage = f"{self.stage_name()}.finalize"
            ctx.record_shuffle(fstage, merged.num_rows)
            task = functools.partial(finalize, merged, self.dims,
                                     self.distinct,
                                     check_deadline=ctx.check_deadline)
            merged = ctx.run_task(fstage, 0, task, merged.num_rows,
                                  parallelizable=False,
                                  kernel=self.kernels.name)
        return BatchRDD([merged])


class SkylineRepartitionExec(PhysicalPlan):
    """Redistribute rows under a chosen partitioning scheme.

    Placed below the local skyline stage when the planner (adaptive or
    session-forced) overrides the paper's keep-Spark's-partitioning
    default: ``random`` round-robin, ``grid`` (equi-width cells over the
    oriented dimensions, dominated cells pruned before any per-tuple
    work), or ``angle`` (angular slices, balancing local skylines on
    anti-correlated data).  Grid and angle need *finite* comparable
    values (a NaN or ±inf coordinate makes the cell fraction / angle
    undefined), so rows with nulls or non-finite floats in a value
    dimension fall back to random.
    """

    def __init__(self, items: Sequence[E.SkylineDimension], scheme: str,
                 num_partitions: int, child: PhysicalPlan,
                 cells_per_dimension: int | None = None,
                 vectorized: bool = False) -> None:
        super().__init__()
        self.children = (child,)
        self.items = list(items)
        self.scheme = scheme
        self.num_partitions = max(1, num_partitions)
        self.cells_per_dimension = cells_per_dimension
        self.vectorized = vectorized
        self.dims = _bind_dimensions(items, child.output)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.children[0].output

    @property
    def exec_mode(self) -> str:
        return self.children[0].exec_mode

    @staticmethod
    def _downgrade_scheme(rows, scheme: str, value_dims) -> str:
        """Grid/angle need finite comparable coordinates; otherwise
        fall back to random (same rule on both data planes)."""
        if scheme in ("grid", "angle") and any(
                row[d.index] is None or
                (isinstance(row[d.index], float) and
                 not math.isfinite(row[d.index]))
                for row in rows for d in value_dims):
            return "random"
        return scheme

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        child_out = self.children[0].execute(ctx)
        stage = self.stage_name()
        dims = self.dims
        value_dims = [d for d in dims
                      if d.kind is not DimensionKind.DIFF]
        if isinstance(child_out, BatchRDD):
            # Batch-native shuffle: the scheme assigns row ordinals
            # (placement identical to the row plane by construction,
            # see partition_indices) and the batch columns are sliced
            # directly -- no row materialisation round-trip, and typed
            # columns/null masks survive the shuffle.
            merged = child_out.concat()
            rows = merged.to_rows()
            ctx.record_shuffle(stage, len(rows))
            scheme = self._downgrade_scheme(rows, self.scheme,
                                            value_dims)

            def task(scheme=scheme):
                return partition_indices(
                    rows, dims, scheme, self.num_partitions,
                    prune_cells=scheme == "grid",
                    cells_per_dimension=self.cells_per_dimension,
                    vectorized=self.vectorized)

            index_lists = ctx.run_task(stage, 0, task, len(rows),
                                       parallelizable=False,
                                       kernel=select_kernels(
                                           self.vectorized).name)
            return BatchRDD([merged.take(ix) for ix in index_lists]
                            if index_lists else [merged.take([])])
        child_rdd = _rows_rdd(child_out)
        rows = child_rdd.collect()
        ctx.record_shuffle(stage, len(rows))
        scheme = self._downgrade_scheme(rows, self.scheme, value_dims)

        def task(scheme=scheme):
            return partition_rows(
                rows, dims, scheme, self.num_partitions,
                prune_cells=scheme == "grid",
                cells_per_dimension=self.cells_per_dimension,
                vectorized=self.vectorized)

        partitions = ctx.run_task(stage, 0, task, len(rows),
                                  parallelizable=False,
                                  kernel=select_kernels(
                                      self.vectorized).name)
        return RDD(partitions if partitions else [[]])

    def node_description(self) -> str:
        return (f"SkylineRepartition({self.scheme}, "
                f"{self.num_partitions} partitions)") + self._mode_tag()


class SkylineLocalExec(_SkylineExec):
    """Local (per-partition) BNL skyline -- the distributed stage.

    Keeps the child's partitioning ("to avoid unnecessary communication
    cost, we refrain from overriding Spark's partitioning mechanism",
    Section 2); each partition's window survivors feed the global node.
    """

    batch_kernel_attr = "local_bnl_batch"

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        pipelined = self._pipelined_local(ctx)
        if pipelined is not None:
            return pipelined
        child_out = self._resident_child(ctx)
        batches = self._batch_input(child_out)
        if batches is not None:
            tasks = self._batch_tasks(ctx, batches.batches)
            return BatchRDD(ctx.run_stage(self.stage_name(), tasks))
        child_rdd = _rows_rdd(child_out)
        tasks = _local_skyline_tasks(ctx, child_rdd.partitions,
                                     self.kernels.local_bnl,
                                     (self.dims, self.distinct),
                                     kernel=self.kernels.name)
        return RDD(ctx.run_stage(self.stage_name(), tasks))

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        return f"SkylineLocal({self._kernel_label('BNL')}, [{dims}])" \
            + self._mode_tag()


class SkylineGlobalCompleteExec(_SkylineExec):
    """Global BNL skyline under the ``AllTuples`` distribution."""

    batch_kernel_attr = "local_bnl_batch"

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        child_out = self.children[0].execute(ctx)
        stage = self.stage_name()
        batches = self._batch_input(child_out)
        if batches is not None:
            merged = self._try_hierarchical_batches(ctx, batches)
            if merged is not None:
                return merged
            return self._global_batch_execute(ctx, batches)
        merged = self._try_hierarchical_rows(ctx, child_out)
        if merged is not None:
            return merged
        rows = _rows_rdd(child_out).collect()
        ctx.record_shuffle(stage, len(rows))
        task = functools.partial(self.kernels.local_bnl, rows, self.dims,
                                 self.distinct,
                                 check_deadline=ctx.check_deadline)
        result = ctx.run_task(stage, 0, task, len(rows),
                              parallelizable=False,
                              kernel=self.kernels.name)
        return RDD([result])

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        return f"SkylineGlobalComplete({self._kernel_label('BNL')}, " \
               f"[{dims}])" + self._mode_tag() + self._merge_tag()


class SkylineLocalIncompleteExec(_SkylineExec):
    """Local skylines under the null-bitmap distribution (Section 5.7).

    The child's rows are re-distributed so that all tuples sharing a
    bitmap of null skyline dimensions land in the same partition (crafted
    "via the integrated distribution of the nodes ... using the
    predefined IsNull() method"); BNL with the incomplete dominance test
    is then safe per partition.
    """

    batch_kernel_attr = "local_bnl_incomplete_batch"

    def _bitmap_batches(self, batches: BatchRDD) -> list[ColumnBatch]:
        """The null-bitmap distribution, computed column-wise.

        Mirrors :meth:`~repro.engine.rdd.RDD.partition_by_key` exactly:
        one partition per distinct bitmap, in first-seen order over the
        concatenated input.
        """
        from ..core.vectorized import batch_null_bitmaps
        merged = batches.concat()
        bitmaps = batch_null_bitmaps(merged, self.dims)
        groups: dict[int, list[int]] = {}
        for i, bitmap in enumerate(bitmaps):
            groups.setdefault(bitmap, []).append(i)
        if not groups:
            return [merged]
        return [merged.take(indices) for indices in groups.values()]

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        pipelined = self._pipelined_local(ctx)
        if pipelined is not None:
            return pipelined
        child_out = self._resident_child(ctx)
        stage = self.stage_name()
        dims = self.dims
        batches = self._batch_input(child_out)
        if batches is not None:
            ctx.record_shuffle(stage, batches.count())
            func = self._batch_kernel()
            tasks = []
            for i, batch in enumerate(self._bitmap_batches(batches)):
                args = (batch, dims)
                tasks.append(StageTask(
                    partition=i, rows_in=batch.num_rows,
                    bytes_in=batch.nbytes,
                    fn=functools.partial(
                        func, *args, check_deadline=ctx.check_deadline),
                    func=func, args=args, kernel=self.kernels.name))
            return BatchRDD(ctx.run_stage(stage, tasks))
        child_rdd = _rows_rdd(child_out)
        ctx.record_shuffle(stage, child_rdd.count())
        partitioned = child_rdd.partition_by_key(
            lambda row: null_bitmap(row, dims))
        tasks = _local_skyline_tasks(ctx, partitioned.partitions,
                                     self.kernels.local_bnl_incomplete,
                                     (dims,), kernel=self.kernels.name)
        return RDD(ctx.run_stage(stage, tasks))

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        label = self._kernel_label("bitmap-partitioned BNL")
        return f"SkylineLocalIncomplete({label}, [{dims}])" \
            + self._mode_tag()


class SkylineGlobalIncompleteExec(_SkylineExec):
    """Flag-based all-pairs global skyline for incomplete data.

    Cannot delete dominated tuples early (cyclic dominance, Appendix A);
    compares all pairs, flags, and deletes at the end.
    """

    batch_kernel_attr = "global_flagged_batch"

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        child_out = self.children[0].execute(ctx)
        stage = self.stage_name()
        # Flag-based dominance is not transitive; pairwise merging of
        # flagged partials is unsound, so this node is always flat.
        self._record_flat_merge(ctx)
        batches = self._batch_input(child_out)
        if batches is not None:
            return self._global_batch_execute(ctx, batches)
        rows = _rows_rdd(child_out).collect()
        ctx.record_shuffle(stage, len(rows))
        task = functools.partial(self.kernels.global_flagged, rows,
                                 self.dims, self.distinct,
                                 check_deadline=ctx.check_deadline)
        result = ctx.run_task(stage, 0, task, len(rows),
                              parallelizable=False,
                              kernel=self.kernels.name)
        return RDD([result])

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        label = self._kernel_label("all-pairs flagged")
        return f"SkylineGlobalIncomplete({label}, [{dims}])" \
            + self._mode_tag()


class SkylineLocalSFSExec(_SkylineExec):
    """Local skyline via Sort-Filter-Skyline -- the future-work algorithm
    (Section 7), available through the ``skyline.algorithm=sfs`` session
    option and exercised by the ablation benchmarks."""

    batch_kernel_attr = "local_sfs_batch"

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        pipelined = self._pipelined_local(ctx)
        if pipelined is not None:
            return pipelined
        child_out = self._resident_child(ctx)
        batches = self._batch_input(child_out)
        if batches is not None:
            tasks = self._batch_tasks(ctx, batches.batches)
            return BatchRDD(ctx.run_stage(self.stage_name(), tasks))
        child_rdd = _rows_rdd(child_out)
        tasks = _local_skyline_tasks(ctx, child_rdd.partitions,
                                     self.kernels.local_sfs,
                                     (self.dims, self.distinct),
                                     kernel=self.kernels.name)
        return RDD(ctx.run_stage(self.stage_name(), tasks))

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        return f"SkylineLocalSFS({self._kernel_label('SFS')}, [{dims}])" \
            + self._mode_tag()


class SkylineGlobalSFSExec(_SkylineExec):
    """Global SFS skyline under the ``AllTuples`` distribution."""

    batch_kernel_attr = "local_sfs_batch"

    def execute(self, ctx: ExecutionContext) -> "RDD | BatchRDD":
        child_out = self.children[0].execute(ctx)
        stage = self.stage_name()
        batches = self._batch_input(child_out)
        if batches is not None:
            merged = self._try_hierarchical_batches(ctx, batches, sfs=True)
            if merged is not None:
                return merged
            return self._global_batch_execute(ctx, batches)
        merged = self._try_hierarchical_rows(ctx, child_out, sfs=True)
        if merged is not None:
            return merged
        rows = _rows_rdd(child_out).collect()
        ctx.record_shuffle(stage, len(rows))
        task = functools.partial(self.kernels.local_sfs, rows, self.dims,
                                 self.distinct,
                                 check_deadline=ctx.check_deadline)
        result = ctx.run_task(stage, 0, task, len(rows),
                              parallelizable=False,
                              kernel=self.kernels.name)
        return RDD([result])

    def node_description(self) -> str:
        dims = ", ".join(i.sql() for i in self.items)
        return f"SkylineGlobalSFS({self._kernel_label('SFS')}, " \
               f"[{dims}])" + self._mode_tag() + self._merge_tag()
