"""The Catalyst-style rule-based optimizer.

Generic batches (constant folding, filter pushdown, plan simplification)
apply to every query -- skyline queries "benefit from existing
optimizations" (Section 5.4) -- plus the skyline-specific rules:

* :class:`SingleDimensionSkyline` -- a skyline over one MIN/MAX dimension
  is just the optimum of that dimension; rewritten into a scalar-subquery
  min/max filter, which is O(n) instead of a full skyline run.
* :class:`PushSkylineThroughJoin` -- a skyline whose dimensions all come
  from one side of a *non-reductive* join (Carey & Kossmann [6]) is
  pushed below the join, shrinking both operators' inputs.
* :class:`RewriteExistsJoin` -- correlated ``[NOT] EXISTS`` becomes a
  left-semi/anti join; this is the plan the plain-SQL reference
  formulation of skyline queries executes.
"""

from __future__ import annotations

from typing import Sequence

from ..engine import expressions as E
from ..engine.catalog import Catalog
from . import logical as L

_MAX_ITERATIONS = 25


class Rule:
    """A logical-plan rewrite rule."""

    name = "rule"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        raise NotImplementedError


class Batch:
    """A named group of rules executed to fixed point (like Catalyst)."""

    def __init__(self, name: str, rules: Sequence[Rule],
                 once: bool = False) -> None:
        self.name = name
        self.rules = list(rules)
        self.once = once

    def execute(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        iterations = 1 if self.once else _MAX_ITERATIONS
        for _ in range(iterations):
            before = L.tree_string(plan)
            for rule in self.rules:
                plan = rule.apply(plan)
            if L.tree_string(plan) == before:
                break
        return plan


# ---------------------------------------------------------------------------
# Generic rules
# ---------------------------------------------------------------------------


class EliminateSubqueryAliases(Rule):
    """Drop SubqueryAlias nodes -- after analysis, qualifiers are moot."""

    name = "EliminateSubqueryAliases"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if isinstance(node, L.SubqueryAlias):
                return node.child
            return node

        return plan.transform_up(rule)


class ConstantFolding(Rule):
    """Evaluate reference-free sub-expressions at plan time."""

    name = "ConstantFolding"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def fold(expr: E.Expression) -> E.Expression:
            if isinstance(expr, (E.Literal, E.AggregateFunction, E.Alias,
                                 E.SubqueryExpression, E.SkylineDimension,
                                 L.SortOrder)):
                return expr
            if not expr.children:
                return expr
            if all(isinstance(c, E.Literal) for c in expr.children) and \
                    expr.resolved:
                try:
                    return E.Literal(expr.eval(()), expr.dtype)
                except Exception:
                    return expr
            return expr

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            return node.transform_expressions_up(fold)

        return plan.transform_up(rule)


class BooleanSimplification(Rule):
    """Short-circuit constant TRUE/FALSE in boolean connectives."""

    name = "BooleanSimplification"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def simplify(expr: E.Expression) -> E.Expression:
            if isinstance(expr, E.And):
                if _is_true(expr.left):
                    return expr.right
                if _is_true(expr.right):
                    return expr.left
                if _is_false(expr.left) or _is_false(expr.right):
                    return E.Literal(False)
            elif isinstance(expr, E.Or):
                if _is_false(expr.left):
                    return expr.right
                if _is_false(expr.right):
                    return expr.left
                if _is_true(expr.left) or _is_true(expr.right):
                    return E.Literal(True)
            elif isinstance(expr, E.Not):
                child = expr.children[0]
                if _is_true(child):
                    return E.Literal(False)
                if _is_false(child):
                    return E.Literal(True)
                if isinstance(child, E.Not):
                    return child.children[0]
            return expr

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            return node.transform_expressions_up(simplify)

        return plan.transform_up(rule)


class PruneFilters(Rule):
    """Remove always-true filters."""

    name = "PruneFilters"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if isinstance(node, L.Filter) and _is_true(node.condition):
                return node.child
            return node

        return plan.transform_up(rule)


class CombineFilters(Rule):
    name = "CombineFilters"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if isinstance(node, L.Filter) and isinstance(node.child,
                                                         L.Filter):
                inner = node.child
                return L.Filter(E.And(inner.condition, node.condition),
                                inner.child)
            return node

        return plan.transform_up(rule)


class CollapseProjects(Rule):
    """Merge adjacent Projects by inlining alias definitions."""

    name = "CollapseProjects"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not (isinstance(node, L.Project)
                    and isinstance(node.child, L.Project)):
                return node
            inner = node.child
            mapping = _projection_mapping(inner.projections)
            try:
                merged = [self._merge_projection(p, mapping)
                          for p in node.projections]
            except KeyError:
                return node
            return L.Project(merged, inner.child)

        return plan.transform_up(rule)

    @staticmethod
    def _merge_projection(projection: E.Expression,
                          mapping: dict) -> E.Expression:
        """Inline ``mapping`` while preserving the output name and id."""
        if isinstance(projection, E.AttributeReference):
            replacement = mapping[projection.expr_id]
            if isinstance(replacement, E.AttributeReference):
                return replacement
            # The outer node exposed the inner alias's attribute; rewrap
            # so the merged Project keeps the same output attribute.
            return E.Alias(replacement, projection.name,
                           projection.expr_id)
        if isinstance(projection, E.Alias):
            return E.Alias(_substitute(projection.child, mapping),
                           projection.name, projection.expr_id)
        return _substitute(projection, mapping)


class PushDownPredicate(Rule):
    """Push filters below projects and into join sides."""

    name = "PushDownPredicate"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not isinstance(node, L.Filter):
                return node
            child = node.child
            if isinstance(child, L.Project):
                if any(p.contains_aggregate() for p in child.projections):
                    return node
                mapping = _projection_mapping(child.projections)
                try:
                    pushed = _substitute(node.condition, mapping)
                except KeyError:
                    return node
                return L.Project(child.projections,
                                 L.Filter(pushed, child.child))
            if isinstance(child, L.Join):
                return self._push_into_join(node, child)
            return node

        return plan.transform_up(rule)

    def _push_into_join(self, filter_node: L.Filter,
                        join: L.Join) -> L.LogicalPlan:
        if join.join_type not in (L.JoinType.INNER, L.JoinType.CROSS):
            return filter_node
        left_ids = {a.expr_id for a in join.left.output}
        right_ids = {a.expr_id for a in join.right.output}
        left_only: list[E.Expression] = []
        right_only: list[E.Expression] = []
        rest: list[E.Expression] = []
        for conjunct in E.split_conjuncts(filter_node.condition):
            refs = {r.expr_id for r in conjunct.references()}
            if refs and refs <= left_ids:
                left_only.append(conjunct)
            elif refs and refs <= right_ids:
                right_only.append(conjunct)
            else:
                rest.append(conjunct)
        if not left_only and not right_only:
            return filter_node
        new_left = L.Filter(E.conjunction(left_only), join.left) \
            if left_only else join.left
        new_right = L.Filter(E.conjunction(right_only), join.right) \
            if right_only else join.right
        new_join = L.Join(new_left, new_right, join.join_type,
                          join.condition)
        if rest:
            return L.Filter(E.conjunction(rest), new_join)
        return new_join


class RewriteExistsJoin(Rule):
    """Correlated ``[NOT] EXISTS`` -> left-semi/anti join.

    This is the plan Spark produces for the plain-SQL skyline rewrite
    (Listing 4): the dominance predicates are correlated, so they become
    the join condition of a (nested-loop) anti join -- the quadratic
    "reference" algorithm of the evaluation.
    """

    name = "RewriteExistsJoin"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not isinstance(node, L.Filter):
                return node
            conjuncts = E.split_conjuncts(node.condition)
            remaining: list[E.Expression] = []
            result: L.LogicalPlan = node.child
            rewritten = False
            for conjunct in conjuncts:
                exists, negated = _match_exists(conjunct)
                if exists is None:
                    remaining.append(conjunct)
                    continue
                subplan, correlated = _decorrelate(exists.plan,
                                                   result.output)
                join_type = L.JoinType.LEFT_ANTI if negated \
                    else L.JoinType.LEFT_SEMI
                result = L.Join(result, subplan, join_type,
                                E.conjunction(correlated)
                                if correlated else None)
                rewritten = True
            if not rewritten:
                return node
            if remaining:
                return L.Filter(E.conjunction(remaining), result)
            return result

        return plan.transform_up(rule)


def _match_exists(expr: E.Expression) -> tuple[E.Exists | None, bool]:
    if isinstance(expr, E.Exists):
        return expr, False
    if isinstance(expr, E.Not) and isinstance(expr.children[0], E.Exists):
        return expr.children[0], True
    return None, False


def _decorrelate(subplan: L.LogicalPlan,
                 outer_output: Sequence[E.AttributeReference]
                 ) -> tuple[L.LogicalPlan, list[E.Expression]]:
    """Strip correlated predicates out of ``subplan``.

    A conjunct inside a Filter of the subquery is *correlated* if it
    contains an :class:`~repro.engine.expressions.OuterReference`.
    Correlated conjuncts are removed from the subquery, unwrapped, and
    returned for use as the join condition.
    """
    correlated: list[E.Expression] = []

    def strip(node: L.LogicalPlan) -> L.LogicalPlan:
        if isinstance(node, L.Filter):
            local: list[E.Expression] = []
            for conjunct in E.split_conjuncts(node.condition):
                if E.contains_outer_reference(conjunct):
                    correlated.append(E.strip_outer_references(conjunct))
                else:
                    local.append(conjunct)
            if not local:
                return node.child
            return L.Filter(E.conjunction(local), node.child)
        return node

    stripped = subplan.transform_up(strip)
    return stripped, correlated


# ---------------------------------------------------------------------------
# Skyline rules (Section 5.4)
# ---------------------------------------------------------------------------


class SingleDimensionSkyline(Rule):
    """A single-MIN/MAX-dimension skyline is a plain optimum (Section 5.4).

    ``SKYLINE OF d MIN`` selects exactly the tuples whose ``d`` equals
    ``(SELECT min(d) ...)`` -- O(n) via a scalar subquery instead of a
    skyline computation.  The paper chooses the scalar subquery over
    sort-and-limit for exactly this complexity reason.

    For potentially incomplete data, tuples that are null in the
    dimension are incomparable with everything and therefore also belong
    to the skyline; the rewrite keeps them with an ``IS NULL`` disjunct.
    """

    name = "SingleDimensionSkyline"

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not isinstance(node, L.SkylineOperator):
                return node
            if len(node.skyline_items) != 1:
                return node
            item = node.skyline_items[0]
            from ..core.dominance import DimensionKind
            if item.kind is DimensionKind.DIFF:
                return node
            dim = item.child
            if not isinstance(dim, E.AttributeReference):
                return node
            agg_fn: E.AggregateFunction
            if item.kind is DimensionKind.MIN:
                agg_fn = E.Min(dim)
            else:
                agg_fn = E.Max(dim)
            alias = E.Alias(agg_fn, f"{agg_fn.name}({dim.name})")
            subquery_plan = L.Aggregate([], [alias], node.child)
            condition: E.Expression = E.EqualTo(
                dim, E.ScalarSubquery(subquery_plan))
            treat_complete = node.complete or not item.nullable
            if not treat_complete:
                condition = E.Or(E.IsNull(dim), condition)
            result: L.LogicalPlan = L.Filter(condition, node.child)
            if node.distinct:
                result = L.Limit(1, result)
            return result

        return plan.transform_up(rule)


class PushSkylineThroughJoin(Rule):
    """Push a skyline below a non-reductive join (Section 5.4, [5, 6]).

    Applicable when every skyline dimension comes from one join side and
    the join cannot eliminate rows of that side.  Non-reductiveness is
    established from catalog constraints: the equi-join keys of the
    skyline side must form a foreign key referencing the other side's
    primary (or unique) key, with non-nullable referencing columns.
    """

    name = "PushSkylineThroughJoin"

    def __init__(self, catalog: Catalog | None = None) -> None:
        self.catalog = catalog

    def apply(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not isinstance(node, L.SkylineOperator):
                return node
            child = node.children[0]
            # See through a pure column-selection Project (commonly left
            # behind by the analyzer's missing-reference handling): the
            # skyline commutes with it as long as its dimensions resolve
            # below.
            if isinstance(child, L.Project) and \
                    isinstance(child.child, L.Join) and \
                    all(isinstance(p, E.AttributeReference)
                        for p in child.projections):
                pushed = rule(node.copy(child=child.child))
                if not isinstance(pushed, L.SkylineOperator):
                    return L.Project(child.projections, pushed)
                return node
            if not isinstance(child, L.Join):
                return node
            join = child
            if join.join_type != L.JoinType.INNER or join.condition is None:
                return node
            dim_refs = set()
            for item in node.skyline_items:
                dim_refs |= {r.expr_id for r in item.references()}
            left_ids = {a.expr_id for a in join.left.output}
            right_ids = {a.expr_id for a in join.right.output}
            if dim_refs and dim_refs <= left_ids:
                side, other, side_is_left = join.left, join.right, True
            elif dim_refs and dim_refs <= right_ids:
                side, other, side_is_left = join.right, join.left, False
            else:
                return node
            if not self._non_reductive(join, side, other):
                return node
            pushed = node.copy(child=side)
            if side_is_left:
                new_join = L.Join(pushed, other, join.join_type,
                                  join.condition)
            else:
                new_join = L.Join(other, pushed, join.join_type,
                                  join.condition)
            return new_join

        return plan.transform_up(rule)

    def _non_reductive(self, join: L.Join, side: L.LogicalPlan,
                       other: L.LogicalPlan) -> bool:
        """Check the FK/PK pattern that guarantees every ``side`` row joins."""
        provenance = _attribute_provenance(side)
        other_provenance = _attribute_provenance(other)
        if provenance is None or other_provenance is None:
            return False
        side_ids = {a.expr_id for a in side.output}
        equalities: list[tuple[E.AttributeReference,
                               E.AttributeReference]] = []
        for conjunct in E.split_conjuncts(join.condition):
            if not isinstance(conjunct, E.EqualTo):
                return False
            left, right = conjunct.left, conjunct.right
            if not (isinstance(left, E.AttributeReference)
                    and isinstance(right, E.AttributeReference)):
                return False
            if left.expr_id in side_ids:
                equalities.append((left, right))
            else:
                equalities.append((right, left))
        if not equalities:
            return False
        side_columns = []
        other_columns = []
        side_table = other_table = None
        for side_attr, other_attr in equalities:
            if side_attr.nullable:
                return False
            side_info = provenance.get(side_attr.expr_id)
            other_info = other_provenance.get(other_attr.expr_id)
            if side_info is None or other_info is None:
                return False
            if side_table is None:
                side_table = side_info[0]
            if other_table is None:
                other_table = other_info[0]
            if side_info[0] is not side_table or \
                    other_info[0] is not other_table:
                return False
            side_columns.append(side_info[1])
            other_columns.append(other_info[1])
        if side_table is None or other_table is None:
            return False
        # The joined-to columns must be a key of the other table so the
        # join cannot multiply rows arbitrarily *and* must be the target
        # of a foreign key from the skyline side so every row matches.
        other_key = set(other_columns)
        is_key = (set(other_table.primary_key) == other_key
                  or any(set(k) == other_key
                         for k in other_table.unique_keys))
        if not is_key:
            return False
        for fk in side_table.foreign_keys:
            if (fk.ref_table.lower() == other_table.name.lower()
                    and set(fk.columns) == set(side_columns)
                    and set(fk.ref_columns) == other_key):
                return True
        return False


def _attribute_provenance(plan: L.LogicalPlan) -> dict | None:
    """Map attribute expr_ids to ``(Table, column_name)`` origins.

    Returns None when the plan derives columns (aliases over computed
    expressions) in ways that break direct provenance.
    """
    mapping: dict[int, tuple] = {}

    def walk(node: L.LogicalPlan) -> bool:
        if isinstance(node, L.LogicalRelation):
            for attr, field in zip(node.output, node.table.schema):
                mapping[attr.expr_id] = (node.table, field.name)
            return True
        if isinstance(node, (L.SubqueryAlias, L.Filter, L.Distinct,
                             L.Limit, L.Sort, L.SkylineOperator)):
            return walk(node.children[0])
        if isinstance(node, L.Project):
            if not walk(node.child):
                return False
            for projection in node.projections:
                if isinstance(projection, E.Alias) and isinstance(
                        projection.child, E.AttributeReference):
                    origin = mapping.get(projection.child.expr_id)
                    if origin is not None:
                        mapping[projection.expr_id] = origin
            return True
        return False

    if not walk(plan):
        return None
    return mapping


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _is_true(expr: E.Expression) -> bool:
    return isinstance(expr, E.Literal) and expr.value is True


def _is_false(expr: E.Expression) -> bool:
    return isinstance(expr, E.Literal) and expr.value is False


def _projection_mapping(projections: Sequence[E.Expression]) -> dict:
    mapping: dict[int, E.Expression] = {}
    for projection in projections:
        if isinstance(projection, E.Alias):
            mapping[projection.expr_id] = projection.child
        elif isinstance(projection, E.AttributeReference):
            mapping[projection.expr_id] = projection
    return mapping


def _substitute(expr: E.Expression, mapping: dict) -> E.Expression:
    """Replace attribute references using ``mapping``; raises KeyError if a
    reference has no definition (caller then skips the rewrite)."""

    def step(node: E.Expression) -> E.Expression:
        if isinstance(node, E.AttributeReference):
            if node.expr_id not in mapping:
                raise KeyError(node.expr_id)
            return mapping[node.expr_id]
        return node

    return expr.transform_up(step)


# ---------------------------------------------------------------------------
# The optimizer
# ---------------------------------------------------------------------------


class Optimizer:
    """Runs the rule batches over a resolved logical plan."""

    def __init__(self, catalog: Catalog | None = None,
                 enable_skyline_rules: bool = True) -> None:
        self.catalog = catalog
        skyline_rules: list[Rule] = []
        if enable_skyline_rules:
            skyline_rules = [PushSkylineThroughJoin(catalog),
                             SingleDimensionSkyline()]
        self.batches = [
            Batch("Finish analysis", [EliminateSubqueryAliases()],
                  once=True),
            Batch("Subquery rewriting", [RewriteExistsJoin()]),
            Batch("Skyline optimizations", skyline_rules),
            Batch("Operator optimizations", [
                ConstantFolding(),
                BooleanSimplification(),
                PruneFilters(),
                CombineFilters(),
                CollapseProjects(),
                PushDownPredicate(),
            ]),
        ]

    def optimize(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        plan = self._optimize_subqueries(plan)
        for batch in self.batches:
            plan = batch.execute(plan)
        return plan

    def _optimize_subqueries(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        optimizer = self

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            def fix_expr(expr: E.Expression) -> E.Expression:
                if isinstance(expr, E.ScalarSubquery):
                    return expr.with_plan(optimizer.optimize(expr.plan))
                return expr

            return node.transform_expressions_up(fix_expr)

        return plan.transform_up(rule)
