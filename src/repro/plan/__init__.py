"""Logical planning, analysis, optimization and physical planning."""
