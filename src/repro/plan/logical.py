"""Logical plan operators.

Parsing (or the DataFrame API) produces a tree of these nodes; the
analyzer resolves identifiers against the catalog, the optimizer rewrites
the tree, and the physical planner lowers it onto executable operators.

The skyline extension adds exactly one operator, ``SkylineOperator``,
with a single child -- "a single node with a single child in the logical
plan" (Section 5.2) -- carrying the skyline dimensions, the DISTINCT flag
and the COMPLETE flag.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..engine import expressions as E
from ..engine.catalog import Table
from ..errors import AnalysisError


class LogicalPlan:
    """Base class of logical operators."""

    children: tuple["LogicalPlan", ...] = ()

    # -- schema ------------------------------------------------------------

    @property
    def output(self) -> list[E.AttributeReference]:
        """The attributes this operator produces, in order."""
        raise NotImplementedError

    @property
    def resolved(self) -> bool:
        return (all(c.resolved for c in self.children)
                and all(e.resolved for e in self.expressions()))

    # -- expressions ---------------------------------------------------------

    def expressions(self) -> list[E.Expression]:
        """Top-level expressions of this node (not recursed into children)."""
        return []

    def map_expressions(self, fn: Callable[[E.Expression], E.Expression]
                        ) -> "LogicalPlan":
        """Copy of this node with ``fn`` applied to each top-level
        expression (not recursive into the expression trees)."""
        return self

    def transform_expressions_up(
            self, fn: Callable[[E.Expression], E.Expression]
    ) -> "LogicalPlan":
        """Apply ``fn`` bottom-up inside every expression of this node."""
        return self.map_expressions(lambda expr: expr.transform_up(fn))

    def references(self) -> set[E.AttributeReference]:
        refs: set[E.AttributeReference] = set()
        for expr in self.expressions():
            refs |= expr.references()
        return refs

    @property
    def input_attributes(self) -> list[E.AttributeReference]:
        """Union of children outputs (in order)."""
        attrs: list[E.AttributeReference] = []
        for child in self.children:
            attrs.extend(child.output)
        return attrs

    @property
    def missing_input(self) -> set[E.AttributeReference]:
        """References not satisfied by the children's output."""
        available = {a.expr_id for a in self.input_attributes}
        return {r for r in self.references() if r.expr_id not in available}

    # -- tree plumbing --------------------------------------------------------

    def with_children(self, children: Sequence["LogicalPlan"]
                      ) -> "LogicalPlan":
        raise NotImplementedError

    def transform_up(self, fn: Callable[["LogicalPlan"], "LogicalPlan"]
                     ) -> "LogicalPlan":
        if self.children:
            new_children = [c.transform_up(fn) for c in self.children]
            if any(n is not o for n, o in zip(new_children, self.children)):
                return fn(self.with_children(new_children))
        return fn(self)

    def transform_down(self, fn: Callable[["LogicalPlan"], "LogicalPlan"]
                       ) -> "LogicalPlan":
        new_self = fn(self)
        if new_self.children:
            new_children = [c.transform_down(fn) for c in new_self.children]
            if any(n is not o
                   for n, o in zip(new_children, new_self.children)):
                return new_self.with_children(new_children)
        return new_self

    def iter_tree(self) -> Iterator["LogicalPlan"]:
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def same_result(self, other: "LogicalPlan") -> bool:
        """Crude structural equality used by fixed-point rule execution."""
        return tree_string(self) == tree_string(other)

    # -- display ---------------------------------------------------------------

    def node_description(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return tree_string(self)


def tree_string(plan: LogicalPlan, indent: int = 0) -> str:
    lines = ["  " * indent + plan.node_description()]
    for child in plan.children:
        lines.append(tree_string(child, indent + 1))
    return "\n".join(lines)


class LeafNode(LogicalPlan):
    children = ()

    def with_children(self, children: Sequence[LogicalPlan]) -> LogicalPlan:
        return self


class UnaryNode(LogicalPlan):
    @property
    def child(self) -> LogicalPlan:
        return self.children[0]


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class UnresolvedRelation(LeafNode):
    """A table reference by name, before catalog lookup."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def resolved(self) -> bool:
        return False

    @property
    def output(self) -> list[E.AttributeReference]:
        raise AnalysisError(f"unresolved relation {self.name!r} has no schema")

    def node_description(self) -> str:
        return f"UnresolvedRelation({self.name})"


class LogicalRelation(LeafNode):
    """A resolved catalog table with stable output attributes."""

    def __init__(self, table: Table,
                 output: list[E.AttributeReference] | None = None) -> None:
        self.table = table
        if output is None:
            output = [E.AttributeReference(f.name, f.dtype, f.nullable)
                      for f in table.schema]
        self._output = output

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    def node_description(self) -> str:
        return f"Relation({self.table.name})"


class LocalRelation(LeafNode):
    """Literal in-memory data (used by ``createDataFrame`` and tests)."""

    def __init__(self, output: list[E.AttributeReference],
                 rows: list[tuple]) -> None:
        self._output = output
        self.rows = rows

    @property
    def output(self) -> list[E.AttributeReference]:
        return list(self._output)

    def node_description(self) -> str:
        return f"LocalRelation({len(self.rows)} rows)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class SubqueryAlias(UnaryNode):
    """``rel AS alias``: re-qualifies the child's output."""

    def __init__(self, alias: str, child: LogicalPlan) -> None:
        self.alias = alias
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return [a.with_qualifier(self.alias) for a in self.child.output]

    def with_children(self, children: Sequence[LogicalPlan]
                      ) -> "SubqueryAlias":
        return SubqueryAlias(self.alias, children[0])

    def node_description(self) -> str:
        return f"SubqueryAlias({self.alias})"


class Project(UnaryNode):
    def __init__(self, projections: Sequence[E.Expression],
                 child: LogicalPlan) -> None:
        self.projections = list(projections)
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return [E.named_output(p) for p in self.projections]

    @property
    def resolved(self) -> bool:
        if not super().resolved:
            return False
        # A projection list containing a star or a bare aggregate is not
        # final; also every element must be nameable.
        for p in self.projections:
            if isinstance(p, (E.UnresolvedStar, E.UnresolvedAttribute)):
                return False
            if not isinstance(p, (E.Alias, E.AttributeReference)):
                return False
        return not self.missing_input

    def expressions(self) -> list[E.Expression]:
        return list(self.projections)

    def map_expressions(self, fn) -> "Project":
        return Project([fn(p) for p in self.projections], self.child)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        return Project(self.projections, children[0])

    def node_description(self) -> str:
        cols = ", ".join(p.display_name for p in self.projections)
        return f"Project({cols})"


class Filter(UnaryNode):
    def __init__(self, condition: E.Expression, child: LogicalPlan) -> None:
        self.condition = condition
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.child.output

    @property
    def resolved(self) -> bool:
        return super().resolved and not self.missing_input

    def expressions(self) -> list[E.Expression]:
        return [self.condition]

    def map_expressions(self, fn) -> "Filter":
        return Filter(fn(self.condition), self.child)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        return Filter(self.condition, children[0])

    def node_description(self) -> str:
        return f"Filter({self.condition.sql()})"


class Distinct(UnaryNode):
    def __init__(self, child: LogicalPlan) -> None:
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.child.output

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        return Distinct(children[0])


class Limit(UnaryNode):
    def __init__(self, limit: int, child: LogicalPlan) -> None:
        self.limit = limit
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.child.output

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        return Limit(self.limit, children[0])

    def node_description(self) -> str:
        return f"Limit({self.limit})"


class SortOrder(E.Expression):
    """Ordering spec: expression + direction + null placement."""

    def __init__(self, child: E.Expression, ascending: bool = True,
                 nulls_first: bool | None = None) -> None:
        self.children = (child,)
        self.ascending = ascending
        # SQL default: NULLS FIRST for ASC, NULLS LAST for DESC.
        self.nulls_first = ascending if nulls_first is None else nulls_first

    @property
    def child(self) -> E.Expression:
        return self.children[0]

    @property
    def dtype(self):
        return self.child.dtype

    def with_children(self, children: Sequence[E.Expression]) -> "SortOrder":
        return SortOrder(children[0], self.ascending, self.nulls_first)

    def copy(self, child: E.Expression) -> "SortOrder":
        return SortOrder(child, self.ascending, self.nulls_first)

    def sql(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.child.sql()} {direction}"


class Sort(UnaryNode):
    def __init__(self, order: Sequence[SortOrder], is_global: bool,
                 child: LogicalPlan) -> None:
        self.order = list(order)
        self.is_global = is_global
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.child.output

    @property
    def resolved(self) -> bool:
        return super().resolved and not self.missing_input

    def expressions(self) -> list[E.Expression]:
        return list(self.order)

    def map_expressions(self, fn) -> "Sort":
        new_order = []
        for o in self.order:
            mapped = fn(o)
            if not isinstance(mapped, SortOrder):
                mapped = o.copy(mapped)
            new_order.append(mapped)
        return Sort(new_order, self.is_global, self.child)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        return Sort(self.order, self.is_global, children[0])

    def copy(self, order: Sequence[SortOrder] | None = None,
             child: LogicalPlan | None = None) -> "Sort":
        return Sort(order if order is not None else self.order,
                    self.is_global,
                    child if child is not None else self.child)

    def node_description(self) -> str:
        keys = ", ".join(o.sql() for o in self.order)
        return f"Sort({keys})"


class Aggregate(UnaryNode):
    """``GROUP BY`` + aggregate select list.

    ``aggregate_expressions`` is the output list (each entry an Alias or
    AttributeReference, possibly containing AggregateFunction calls);
    ``grouping_expressions`` are the GROUP BY keys.
    """

    def __init__(self, grouping_expressions: Sequence[E.Expression],
                 aggregate_expressions: Sequence[E.Expression],
                 child: LogicalPlan) -> None:
        self.grouping_expressions = list(grouping_expressions)
        self.aggregate_expressions = list(aggregate_expressions)
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return [E.named_output(a) for a in self.aggregate_expressions]

    @property
    def resolved(self) -> bool:
        if not super().resolved:
            return False
        for a in self.aggregate_expressions:
            if not isinstance(a, (E.Alias, E.AttributeReference)):
                return False
        return not self.missing_input

    @property
    def missing_input(self) -> set[E.AttributeReference]:
        available = {a.expr_id for a in self.input_attributes}
        return {r for r in self.references() if r.expr_id not in available}

    def expressions(self) -> list[E.Expression]:
        return list(self.grouping_expressions) + list(
            self.aggregate_expressions)

    def map_expressions(self, fn) -> "Aggregate":
        return Aggregate([fn(g) for g in self.grouping_expressions],
                         [fn(a) for a in self.aggregate_expressions],
                         self.child)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        return Aggregate(self.grouping_expressions,
                         self.aggregate_expressions, children[0])

    def copy(self, grouping=None, aggregates=None,
             child=None) -> "Aggregate":
        return Aggregate(
            grouping if grouping is not None else self.grouping_expressions,
            aggregates if aggregates is not None
            else self.aggregate_expressions,
            child if child is not None else self.child)

    def node_description(self) -> str:
        keys = ", ".join(g.sql() for g in self.grouping_expressions)
        outs = ", ".join(a.display_name for a in self.aggregate_expressions)
        return f"Aggregate(keys=[{keys}], output=[{outs}])"


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


class JoinType:
    INNER = "inner"
    LEFT_OUTER = "left_outer"
    RIGHT_OUTER = "right_outer"
    FULL_OUTER = "full_outer"
    LEFT_SEMI = "left_semi"
    LEFT_ANTI = "left_anti"
    CROSS = "cross"

    ALL = (INNER, LEFT_OUTER, RIGHT_OUTER, FULL_OUTER, LEFT_SEMI, LEFT_ANTI,
           CROSS)


class Join(LogicalPlan):
    """Binary join; ``using_columns`` handles ``JOIN ... USING (c1, ...)``.

    For USING joins the analyzer rewrites the node into a condition-based
    join plus a projection merging the key columns, so the physical layer
    only ever sees ``condition``.
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 join_type: str = JoinType.INNER,
                 condition: E.Expression | None = None,
                 using_columns: Sequence[str] = ()) -> None:
        if join_type not in JoinType.ALL:
            raise AnalysisError(f"unsupported join type {join_type!r}")
        self.children = (left, right)
        self.join_type = join_type
        self.condition = condition
        self.using_columns = tuple(using_columns)

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    @property
    def output(self) -> list[E.AttributeReference]:
        if self.join_type in (JoinType.LEFT_SEMI, JoinType.LEFT_ANTI):
            return self.left.output
        left_out = self.left.output
        right_out = self.right.output
        if self.join_type in (JoinType.LEFT_OUTER, JoinType.FULL_OUTER):
            right_out = [a.with_nullability(True) for a in right_out]
        if self.join_type in (JoinType.RIGHT_OUTER, JoinType.FULL_OUTER):
            left_out = [a.with_nullability(True) for a in left_out]
        return left_out + right_out

    @property
    def resolved(self) -> bool:
        if self.using_columns:
            return False  # awaiting analyzer rewrite
        if not all(c.resolved for c in self.children):
            return False
        if self.condition is not None:
            if not self.condition.resolved:
                return False
            available = {a.expr_id for a in self.input_attributes}
            if any(r.expr_id not in available
                   for r in self.condition.references()):
                return False
        return True

    def expressions(self) -> list[E.Expression]:
        return [self.condition] if self.condition is not None else []

    def map_expressions(self, fn) -> "Join":
        condition = fn(self.condition) if self.condition is not None else None
        return Join(self.left, self.right, self.join_type, condition,
                    self.using_columns)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        return Join(children[0], children[1], self.join_type, self.condition,
                    self.using_columns)

    def node_description(self) -> str:
        cond = f", on={self.condition.sql()}" if self.condition is not None \
            else ""
        using = f", using={list(self.using_columns)}" if self.using_columns \
            else ""
        return f"Join({self.join_type}{cond}{using})"


# ---------------------------------------------------------------------------
# Skyline operator (Section 5.2)
# ---------------------------------------------------------------------------


class SkylineOperator(UnaryNode):
    """The skyline logical node.

    Stores the skyline dimensions (``skyline_items``, each a
    :class:`~repro.engine.expressions.SkylineDimension`), whether the
    result is DISTINCT over the skyline dimensions, and whether the user
    asserted completeness via the ``COMPLETE`` keyword (Section 5.5's
    algorithm-selection override).
    """

    def __init__(self, distinct: bool, complete: bool,
                 skyline_items: Sequence[E.SkylineDimension],
                 child: LogicalPlan) -> None:
        self.distinct = distinct
        self.complete = complete
        self.skyline_items = list(skyline_items)
        self.children = (child,)

    @property
    def output(self) -> list[E.AttributeReference]:
        return self.child.output

    @property
    def resolved(self) -> bool:
        if not self.skyline_items:
            return False
        return super().resolved and not self.missing_input

    def expressions(self) -> list[E.Expression]:
        return list(self.skyline_items)

    def map_expressions(self, fn) -> "SkylineOperator":
        items = []
        for item in self.skyline_items:
            mapped = fn(item)
            if not isinstance(mapped, E.SkylineDimension):
                mapped = item.copy(child=mapped)
            items.append(mapped)
        return SkylineOperator(self.distinct, self.complete, items,
                               self.child)

    def with_children(self, children: Sequence[LogicalPlan]
                      ) -> "SkylineOperator":
        return SkylineOperator(self.distinct, self.complete,
                               self.skyline_items, children[0])

    def copy(self, skyline_items: Sequence[E.SkylineDimension] | None = None,
             child: LogicalPlan | None = None) -> "SkylineOperator":
        return SkylineOperator(
            self.distinct, self.complete,
            skyline_items if skyline_items is not None
            else self.skyline_items,
            child if child is not None else self.child)

    @property
    def dimensions_nullable(self) -> bool:
        """True if any skyline dimension may produce nulls.

        This is the ``skylineNullable`` test of Listing 8; the planner
        picks the incomplete algorithm when it holds and COMPLETE was not
        asserted.
        """
        return any(item.nullable for item in self.skyline_items)

    def node_description(self) -> str:
        flags = []
        if self.distinct:
            flags.append("DISTINCT")
        if self.complete:
            flags.append("COMPLETE")
        dims = ", ".join(i.sql() for i in self.skyline_items)
        prefix = (" ".join(flags) + " ") if flags else ""
        return f"Skyline({prefix}{dims})"


class AnalyzeTable(LeafNode):
    """``ANALYZE TABLE name [COMPUTE STATISTICS]`` -- a command node.

    Executed directly by the session (it never reaches the physical
    planner): statistics for the named table are (re)collected into the
    catalog's stats store and returned as a per-column summary relation.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> list[E.AttributeReference]:
        return []

    def node_description(self) -> str:
        return f"AnalyzeTable({self.name})"


def find_skyline_operators(plan: LogicalPlan) -> list[SkylineOperator]:
    """All skyline operators in a plan (helper for tests and tooling)."""
    return [node for node in plan.iter_tree()
            if isinstance(node, SkylineOperator)]


def subquery_plans(expr: E.Expression) -> list[Any]:
    """Logical plans embedded in subquery expressions of ``expr``."""
    return [node.plan for node in expr.iter_tree()
            if isinstance(node, E.SubqueryExpression)]
