"""Lightweight cost-based skyline strategy selection.

Section 7 of the paper: "as soon as further skyline algorithms are
implemented, a light-weight form of cost-based optimization should be
implemented that selects the best-suited skyline algorithm for a
particular query".  With BNL, SFS and the distributed/non-distributed
variants all available here, this module provides that selector.

The model is deliberately simple and fully explainable:

1. Correctness first: nullable dimensions without the COMPLETE keyword
   force the incomplete algorithm (Listing 8 logic).
2. Cardinality: the input size is estimated by walking the plan to its
   leaves (row-multiplying operators give up -> conservative default).
   Tiny inputs skip distribution -- the local stage would only add
   overhead (the Section 6.4 "sweet spot" effect at the small end).
3. Skyline density: a small sample of leaf rows is used to estimate how
   large local windows get.  Dense skylines (anti-correlated data) pay
   many window comparisons under BNL; presorting (SFS) then wins because
   its window is only scanned until the first dominator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bnl import bnl_skyline
from ..core.dominance import BoundDimension, DimensionKind
from ..engine import expressions as E
from . import logical as L

#: Inputs at most this large run the plain non-distributed algorithm.
SMALL_INPUT_ROWS = 512
#: Sample size for skyline-density estimation.
SAMPLE_ROWS = 256
#: Sample skyline fraction beyond which SFS is preferred over BNL.
DENSE_SKYLINE_FRACTION = 0.25


@dataclass(frozen=True)
class CostDecision:
    """The chosen strategy plus the reasoning, for EXPLAIN output."""

    strategy: str
    estimated_rows: int | None
    sample_skyline_fraction: float | None
    reason: str


def estimate_input_rows(plan: L.LogicalPlan) -> int | None:
    """Upper-bound row estimate by walking to the leaves.

    Filters and skylines only shrink; projections/sorts preserve; joins
    and aggregates change cardinality unpredictably -> None (unknown).
    """
    if isinstance(plan, L.LogicalRelation):
        return plan.table.num_rows
    if isinstance(plan, L.LocalRelation):
        return len(plan.rows)
    if isinstance(plan, (L.Project, L.Filter, L.Distinct, L.Sort,
                         L.SubqueryAlias, L.SkylineOperator)):
        return estimate_input_rows(plan.children[0])
    if isinstance(plan, L.Limit):
        below = estimate_input_rows(plan.children[0])
        return plan.limit if below is None else min(plan.limit, below)
    return None


def _leaf_rows(plan: L.LogicalPlan) -> list[tuple] | None:
    """Raw rows of the single leaf under shrink/preserve operators."""
    if isinstance(plan, L.LogicalRelation):
        return plan.table.rows
    if isinstance(plan, L.LocalRelation):
        return plan.rows
    if isinstance(plan, (L.Filter, L.Distinct, L.Sort, L.SubqueryAlias,
                         L.Limit, L.Project)):
        # Projects are safe to traverse: dimension attributes are matched
        # against the *leaf* output by expr-id below, so any computed
        # (re-derived) dimension simply fails the lookup.
        return _leaf_rows(plan.children[0])
    return None


def sample_skyline_fraction(node: L.SkylineOperator) -> float | None:
    """Estimated |skyline| / |sample| on a leaf-row sample.

    Only possible when every skyline dimension maps directly to a leaf
    column (no computed dimensions) and the leaf is reachable through
    cardinality-preserving operators.
    """
    leaf = _leaf_rows(node.child)
    if leaf is None or not leaf:
        return None
    # Map dimension attributes to leaf ordinals via the leaf plan output.
    base = node.child
    while isinstance(base, (L.Filter, L.Distinct, L.Sort, L.SubqueryAlias,
                            L.Limit, L.Project)):
        base = base.children[0]
    if not isinstance(base, (L.LogicalRelation, L.LocalRelation)):
        return None
    index_by_id = {a.expr_id: i for i, a in enumerate(base.output)}
    dims = []
    for item in node.skyline_items:
        child = item.child
        if not isinstance(child, E.AttributeReference):
            return None
        if child.expr_id not in index_by_id:
            return None
        dims.append(BoundDimension(index_by_id[child.expr_id], item.kind))
    if any(row[d.index] is None for row in leaf[:SAMPLE_ROWS]
           for d in dims):
        return None  # null-aware costing is out of scope
    sample = leaf[:SAMPLE_ROWS]
    sample_skyline = bnl_skyline(sample, dims)
    return len(sample_skyline) / len(sample)


def choose_strategy(node: L.SkylineOperator) -> CostDecision:
    """Pick the best-suited strategy for this skyline operator."""
    if not node.complete and node.dimensions_nullable:
        return CostDecision(
            "distributed-incomplete", None, None,
            "nullable dimensions without COMPLETE require the "
            "incomplete algorithm")
    estimated = estimate_input_rows(node.child)
    if estimated is not None and estimated <= SMALL_INPUT_ROWS:
        return CostDecision(
            "non-distributed-complete", estimated, None,
            f"input of ~{estimated} rows is below the distribution "
            f"threshold ({SMALL_INPUT_ROWS})")
    fraction = sample_skyline_fraction(node)
    if fraction is not None and fraction >= DENSE_SKYLINE_FRACTION:
        non_diff = sum(1 for i in node.skyline_items
                       if i.kind is not DimensionKind.DIFF)
        if non_diff >= 2:
            return CostDecision(
                "sfs", estimated, fraction,
                f"dense skyline (sample fraction {fraction:.2f}) favours "
                f"presorting")
    return CostDecision(
        "distributed-complete", estimated, fraction,
        "default: distributed BNL wins on sparse-to-moderate skylines")
