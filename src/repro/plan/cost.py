"""Statistics-driven cost model for skyline strategy selection.

Section 7 of the paper: "as soon as further skyline algorithms are
implemented, a light-weight form of cost-based optimization should be
implemented that selects the best-suited skyline algorithm for a
particular query".  The original cut of this module re-sampled leaf rows
on every query and only picked the algorithm; :class:`CostModel` now
consumes the persistent statistics subsystem (:mod:`repro.stats`) and
decides the *whole* physical shape of a skyline query:

(a) the algorithm -- BNL (distributed or not), SFS, or the incomplete
    variant forced by nullable dimensions without ``COMPLETE``;
(b) the partitioning scheme for the local stage -- random, grid (cell
    counts sized from the column histograms, with cell-dominance
    pruning), or angle (only for uniformly-oriented all-MIN/all-MAX
    dimension sets, where the angular transform is meaningful);
(c) the partition count handed to the execution backends.

Every choice is recorded with the statistic that drove it and surfaced
through ``DataFrame.explain()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.dominance import BoundDimension, DimensionKind
from ..engine import expressions as E
from ..stats import TableStats, collect_table_stats
from . import logical as L

#: Inputs at most this large run the plain non-distributed algorithm.
SMALL_INPUT_ROWS = 512
#: Skyline density beyond which SFS is preferred over BNL.
DENSE_SKYLINE_FRACTION = 0.25
#: The same crossover when the vectorized kernels run.  Block-BNL's
#: per-comparison cost collapses under vectorization while SFS still
#: pays a scalar-ish O(n log n) sort (argsort over Python-derived
#: scores), so BNL stays competitive on considerably denser skylines
#: before presorting wins.
DENSE_SKYLINE_FRACTION_VECTORIZED = 0.5
#: Rows an adaptive partition should aim to hold.
TARGET_ROWS_PER_PARTITION = 1024
#: Hard cap on adaptively chosen partition counts.
MAX_ADAPTIVE_PARTITIONS = 64
#: Expected local-stage window size (density x partition rows) below
#: which a repartition shuffle cannot pay for itself and the child's
#: partitioning is kept.  Deliberately high: on sparse data BNL's
#: window scans terminate at the first dominator, so the per-row work
#: saved by cell pruning is far smaller than the window size suggests,
#: while the repartition pass costs a full non-parallelizable scan.
REPARTITION_BREAK_EVEN_WINDOW = 512
#: The same break-even under the vectorized kernels, whose block-wise
#: window scans are an order of magnitude cheaper per row -- the
#: repartition pass stays a full non-parallelizable scan, so it only
#: pays off on far larger expected windows.
REPARTITION_BREAK_EVEN_WINDOW_VECTORIZED = 8192
#: Measured cost of evaluating one filter predicate row on the batch
#: data plane relative to the row-at-a-time interpreter (columnar
#: ablation, `python -m repro.bench --columnar`): one vectorized pass
#: over the column replaces a per-row expression-tree walk.  A
#: calibration constant surfaced in EXPLAIN's statistics lines -- it
#: documents the measured plane gap and does not steer plan choice
#: (the behavioural knob is :data:`COLUMNAR_REPARTITION_PENALTY`).
COLUMNAR_FILTER_COST_FACTOR = 0.05
#: The same ratio for projection expressions (slightly higher: each
#: output column still pays one kernel dispatch per expression node).
COLUMNAR_PROJECT_COST_FACTOR = 0.10
#: Extra multiplier on the repartition break-even when the plan runs on
#: the batch data plane: a grid/angle/random repartition is
#: row-oriented, so inserting one additionally materialises the
#: batches and drops the rest of the skyline stage off the batch plane
#: -- the shuffle must save that much more window work to pay off.
COLUMNAR_REPARTITION_PENALTY = 2
#: Selectivity assumed for filter conjuncts the model cannot estimate.
DEFAULT_SELECTIVITY = 1.0
#: Row bound for profiling uncached leaves (LocalRelation): catalog
#: tables get cached statistics, detached data gets a strided sample so
#: planning never scans an unbounded input.
LOCAL_STATS_MAX_ROWS = 4096

#: Operators that preserve (or only shrink) cardinality on the way from
#: a skyline operator down to its leaf.
_PRESERVING = (L.Filter, L.Distinct, L.Sort, L.SubqueryAlias, L.Limit,
               L.Project)

#: Fewer local skylines than this and a merge tree is all stage
#: overhead: the flat single-task global pass wins.
MERGE_MIN_PARTIALS = 3
#: Ceiling on the chosen merge fan-in; beyond this each merge task is
#: itself so large the tree degenerates toward the flat pass.
MERGE_MAX_FAN_IN = 8
#: Estimated input rows below which the whole global phase is too cheap
#: for multi-round scheduling (per-stage overhead dominates).
MERGE_MIN_ROWS = 2048

#: Estimated input rows below which pipelined execution cannot win:
#: morsel scheduling adds a per-wave overhead that a handful of rows
#: never amortises, and the staged path's single barrier is cheap.
PIPELINE_MIN_ROWS = 4096


@dataclass(frozen=True)
class CostDecision:
    """Algorithm-only decision (the legacy ``cost-based`` strategy)."""

    strategy: str
    estimated_rows: int | None
    sample_skyline_fraction: float | None
    reason: str


@dataclass(frozen=True)
class PlanDecision:
    """The full adaptive decision plus the reasoning, for EXPLAIN."""

    algorithm: str
    algorithm_reason: str
    partitioning: str
    partitioning_reason: str
    num_partitions: int | None
    partitions_reason: str
    grid_cells_per_dim: int | None
    estimated_rows: int | None
    skyline_density: float | None
    stats_lines: tuple[str, ...]

    def describe(self) -> str:
        count = "inherited" if self.num_partitions is None \
            else str(self.num_partitions)
        lines = [
            f"algorithm    = {self.algorithm:<26} -- "
            f"{self.algorithm_reason}",
            f"partitioning = {self.partitioning:<26} -- "
            f"{self.partitioning_reason}",
            f"partitions   = {count:<26} -- {self.partitions_reason}",
        ]
        if self.stats_lines:
            lines.append("statistics:")
            lines.extend("  " + line for line in self.stats_lines)
        return "\n".join(lines)


def forced_decision(strategy: str, partitioning: str,
                    num_partitions: int | None,
                    auto: bool = False) -> PlanDecision:
    """A :class:`PlanDecision` record for non-adaptive strategies, so
    ``EXPLAIN`` always reports the same shape of information.

    ``auto=True`` marks the default Listing 8 selection (COMPLETE /
    nullability rule) as opposed to an explicit session override.
    """
    reason = "forced by session configuration"
    algorithm_reason = ("selected by the Listing 8 rule (COMPLETE "
                        "keyword / dimension nullability)") if auto \
        else reason
    return PlanDecision(
        algorithm=strategy, algorithm_reason=algorithm_reason,
        partitioning=partitioning, partitioning_reason=reason
        if partitioning != "keep" else "child partitioning kept",
        num_partitions=num_partitions,
        partitions_reason=reason if num_partitions is not None
        else "scan parallelism (num_executors)",
        grid_cells_per_dim=None, estimated_rows=None,
        skyline_density=None, stats_lines=())


def applied_decision(model: "PlanDecision | None", algorithm: str,
                     partitioning: str, num_partitions: int | None,
                     auto: bool = False) -> PlanDecision:
    """The decision as *applied* by the planner.

    ``model`` is the cost model's proposal (``None`` for forced/auto
    strategies).  The planner does not always apply the proposed
    partitioning -- ``cost-based`` selects the algorithm only, a
    session-forced scheme overrides the adaptive choice, and
    non-partitionable strategies take no scheme -- so EXPLAIN must
    report the applied values, never an unapplied proposal.
    """
    if model is None:
        return forced_decision(algorithm, partitioning, num_partitions,
                               auto=auto)
    if partitioning == model.partitioning and (
            partitioning == "keep"
            or num_partitions == model.num_partitions):
        return model
    if partitioning == "keep":
        # Only reachable for cost-based sessions: the model proposed a
        # scheme, but cost-based applies the algorithm choice alone.
        scheme_reason = ("cost-based selects the algorithm only; "
                         "child partitioning kept")
        count_reason = "inherited from the scan parallelism"
    else:
        scheme_reason = "forced by session configuration"
        count_reason = "forced by session configuration"
    return PlanDecision(
        algorithm=algorithm, algorithm_reason=model.algorithm_reason,
        partitioning=partitioning, partitioning_reason=scheme_reason,
        num_partitions=num_partitions, partitions_reason=count_reason,
        grid_cells_per_dim=None, estimated_rows=model.estimated_rows,
        skyline_density=model.skyline_density,
        stats_lines=model.stats_lines)


# ---------------------------------------------------------------------------
# Global-merge strategy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MergeDecision:
    """How the global phase merges local skylines, for EXPLAIN.

    ``strategy`` is ``"flat"`` (one single-threaded all-pairs task) or
    ``"hierarchical"`` (the tournament-tree merge of
    :mod:`repro.core.merge`).  ``tree`` renders the planned round
    sizes; the executed shape can differ when summary shortcuts prune
    whole partials at run time.
    """

    strategy: str
    fan_in: int | None
    est_partials: int | None
    est_rounds: int | None
    tree: str | None
    reason: str

    def describe(self) -> str:
        lines = [f"global merge = {self.strategy:<26} -- {self.reason}"]
        if self.strategy == "hierarchical":
            lines.append(
                f"fan-in       = {self.fan_in:<26} -- "
                f"ceil(partials / executors), clamped to "
                f"[2, {MERGE_MAX_FAN_IN}]")
            lines.append(
                f"merge tree   = {self.tree} "
                f"({self.est_rounds} rounds planned)")
        return "\n".join(lines)


def choose_global_merge(algorithm: str, *, num_executors: int,
                        est_partials: int,
                        estimated_rows: int | None = None,
                        dimensions_nullable: bool = False,
                        forced: str = "auto",
                        fan_in: int | None = None) -> MergeDecision:
    """Pick the global-merge strategy for one skyline operator.

    Correctness gates come first and cannot be overridden: flag-based
    dominance (incomplete data) and nullable skyline dimensions are
    non-transitive, where a merge tree may drop rows the flat pass
    keeps, so those queries always take the flat global phase -- even
    under ``global_merge="hierarchical"``.
    """

    def flat(reason: str) -> MergeDecision:
        return MergeDecision(strategy="flat", fan_in=None,
                             est_partials=est_partials, est_rounds=None,
                             tree=None, reason=reason)

    if algorithm == "distributed-incomplete":
        return flat("flag-based dominance is not transitive; pairwise "
                    "merging of flagged partials is unsound")
    if dimensions_nullable:
        return flat("nullable skyline dimension(s): incomplete rows make "
                    "dominance non-transitive")
    if algorithm not in ("distributed-complete", "sfs"):
        return flat("single global task only (no local skylines to merge)")
    if forced == "flat":
        return flat("forced by session configuration")
    if est_partials < 2:
        return flat("a single local skyline needs no merging")
    if forced != "hierarchical":
        if num_executors < 2:
            return flat("one executor: merge rounds cannot run in parallel")
        if est_partials < MERGE_MIN_PARTIALS:
            return flat(f"only {est_partials} local skylines "
                        f"(< {MERGE_MIN_PARTIALS}); per-stage overhead "
                        f"would dominate")
        if estimated_rows is not None and estimated_rows < MERGE_MIN_ROWS:
            return flat(f"~{estimated_rows} input rows "
                        f"(< {MERGE_MIN_ROWS}); the flat merge is "
                        f"already cheap")
    # Late import: repro.core.merge pulls in the engine batch plane,
    # which this module otherwise does not need at import time.
    from ..core.merge import merge_round_sizes, tree_shape
    chosen = fan_in if fan_in is not None else max(
        2, min(MERGE_MAX_FAN_IN,
               math.ceil(est_partials / max(1, num_executors))))
    chosen = max(2, int(chosen))
    reason = "forced by session configuration" \
        if forced == "hierarchical" else (
            f"~{est_partials} local skylines over {num_executors} "
            f"executors amortise the serial merge tail")
    return MergeDecision(
        strategy="hierarchical", fan_in=chosen,
        est_partials=est_partials,
        est_rounds=len(merge_round_sizes(est_partials, chosen)) - 1,
        tree=tree_shape(est_partials, chosen), reason=reason)


# ---------------------------------------------------------------------------
# Execution mode (staged vs. pipelined)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionDecision:
    """How the local phase executes, for EXPLAIN.

    ``mode`` is ``"staged"`` (bulk-synchronous: every operator finishes
    before the next starts) or ``"pipelined"`` (morsel-driven: scan,
    filter/project and the local-skyline fold overlap under
    per-operator memory budgets with backpressure and out-of-core
    spill).  The global phase is staged either way -- the pipelined
    local phase drains into the same global merge.
    """

    mode: str
    reason: str
    estimated_rows: int | None
    operator_memory_mb: float | None
    forced: bool

    def describe(self) -> str:
        lines = [f"execution    = {self.mode:<26} -- {self.reason}"]
        if self.mode == "pipelined":
            budget = "default" if self.operator_memory_mb is None \
                else f"{self.operator_memory_mb:g} MB"
            lines.append(
                f"op budget    = {budget:<26} -- per-operator byte "
                f"budget (backpressure + spill threshold)")
        return "\n".join(lines)


def choose_execution_mode(algorithm: str, *, backend: str,
                          estimated_rows: int | None,
                          operator_memory_mb: float | None = None,
                          forced: str = "auto") -> ExecutionDecision:
    """Pick staged vs. pipelined execution for one skyline operator.

    An explicit session setting always wins (a pipelined request on an
    unsupported plan shape falls back per node at run time, recorded in
    the pipeline report).  ``auto`` only pipelines when overlap can
    actually pay: a parallel backend, a distributed algorithm with a
    local phase to fold incrementally, and enough rows to amortise the
    per-wave scheduling overhead.
    """

    def staged(reason: str, is_forced: bool = False) -> ExecutionDecision:
        return ExecutionDecision(
            mode="staged", reason=reason, estimated_rows=estimated_rows,
            operator_memory_mb=operator_memory_mb, forced=is_forced)

    if forced == "staged":
        return staged("forced by session configuration", is_forced=True)
    if forced == "pipelined":
        return ExecutionDecision(
            mode="pipelined", reason="forced by session configuration",
            estimated_rows=estimated_rows,
            operator_memory_mb=operator_memory_mb, forced=True)
    if backend == "local":
        return staged("sequential local backend: operators cannot "
                      "overlap, so pipelining only adds overhead")
    if algorithm == "non-distributed-complete":
        return staged("single global task only (no local phase to "
                      "pipeline)")
    if estimated_rows is not None and estimated_rows < PIPELINE_MIN_ROWS:
        return staged(f"~{estimated_rows} input rows "
                      f"(< {PIPELINE_MIN_ROWS}); per-wave scheduling "
                      f"overhead would dominate")
    return ExecutionDecision(
        mode="pipelined",
        reason=f"parallel '{backend}' backend and "
               f"{'unknown' if estimated_rows is None else f'~{estimated_rows}'} "
               f"input rows: scan/filter/fold overlap pays",
        estimated_rows=estimated_rows,
        operator_memory_mb=operator_memory_mb, forced=False)


# ---------------------------------------------------------------------------
# Plan walking
# ---------------------------------------------------------------------------


def estimate_input_rows(plan: L.LogicalPlan) -> int | None:
    """Upper-bound row estimate by walking to the leaves.

    Filters and skylines only shrink; projections/sorts preserve; joins
    and aggregates change cardinality unpredictably -> None (unknown).
    """
    if isinstance(plan, L.LogicalRelation):
        return plan.table.num_rows
    if isinstance(plan, L.LocalRelation):
        return len(plan.rows)
    if isinstance(plan, (L.Project, L.Filter, L.Distinct, L.Sort,
                         L.SubqueryAlias, L.SkylineOperator)):
        return estimate_input_rows(plan.children[0])
    if isinstance(plan, L.Limit):
        below = estimate_input_rows(plan.children[0])
        return plan.limit if below is None else min(plan.limit, below)
    return None


def _leaf_plan(plan: L.LogicalPlan) -> L.LogicalPlan | None:
    """The single leaf under cardinality-preserving operators, if any."""
    while isinstance(plan, _PRESERVING):
        plan = plan.children[0]
    if isinstance(plan, (L.LogicalRelation, L.LocalRelation)):
        return plan
    return None


def _operators_above_leaf(plan: L.LogicalPlan) -> list[L.LogicalPlan]:
    """The preserving operators between ``plan`` and its leaf, in order."""
    chain = []
    while isinstance(plan, _PRESERVING):
        chain.append(plan)
        plan = plan.children[0]
    return chain


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


class CostModel:
    """Chooses algorithm, partitioning and parallelism from statistics.

    ``catalog`` supplies cached :class:`~repro.stats.TableStats` for
    registered tables; unregistered leaves (``LocalRelation``, detached
    tables) fall back to an uncached one-shot collection over the leaf
    rows, so the model degrades gracefully rather than guessing blind.
    """

    def __init__(self, catalog=None, num_executors: int = 2,
                 max_workers: int | None = None,
                 vectorized: bool = False,
                 columnar: bool = False) -> None:
        self.catalog = catalog
        self.num_executors = num_executors
        self.max_workers = max_workers
        #: Vectorized kernels shift the BNL-vs-SFS crossover: block-BNL
        #: absorbs dense windows far more cheaply than scalar BNL.
        self.vectorized = vectorized
        #: The batch data plane makes the non-skyline pipeline cheap
        #: (:data:`COLUMNAR_FILTER_COST_FACTOR` /
        #: :data:`COLUMNAR_PROJECT_COST_FACTOR`) and makes row-oriented
        #: repartition shuffles comparatively more expensive.
        self.columnar = columnar
        self.dense_fraction = DENSE_SKYLINE_FRACTION_VECTORIZED \
            if vectorized else DENSE_SKYLINE_FRACTION
        self.repartition_break_even = \
            REPARTITION_BREAK_EVEN_WINDOW_VECTORIZED if vectorized \
            else REPARTITION_BREAK_EVEN_WINDOW
        if columnar and vectorized:
            self.repartition_break_even *= COLUMNAR_REPARTITION_PENALTY

    # -- statistics plumbing ----------------------------------------------

    def _table_stats(self, leaf: L.LogicalPlan) -> TableStats | None:
        if isinstance(leaf, L.LogicalRelation):
            table = leaf.table
            if self.catalog is not None and \
                    self.catalog.exists(table.name) and \
                    self.catalog.lookup(table.name) is table:
                return self.catalog.statistics(table.name)
            # Detached table (dropped/replaced in the catalog, or no
            # catalog at all): bounded one-shot profiling.
            return self._bounded_stats(
                table.name, [f.name for f in table.schema], table.rows)
        if isinstance(leaf, L.LocalRelation):
            names = [a.name for a in leaf.output]
            return self._bounded_stats("local", names, leaf.rows)
        return None

    @staticmethod
    def _bounded_stats(name: str, names: list[str],
                       rows: list[tuple]) -> TableStats:
        """Uncached profiling bounded by a strided sample, so planning
        over detached data never scans an unbounded input."""
        if len(rows) <= LOCAL_STATS_MAX_ROWS:
            return collect_table_stats(name, names, rows)
        step = math.ceil(len(rows) / LOCAL_STATS_MAX_ROWS)
        stats = collect_table_stats(name, names, rows[::step])
        stats.num_rows = len(rows)
        return stats

    def _bound_dimensions(self, node: L.SkylineOperator,
                          leaf: L.LogicalPlan
                          ) -> list[BoundDimension] | None:
        """Skyline dimensions as leaf-tuple ordinals, or ``None`` when a
        dimension is computed (not a direct leaf column)."""
        index_by_id = {a.expr_id: i for i, a in enumerate(leaf.output)}
        dims = []
        for item in node.skyline_items:
            child = item.child
            if isinstance(child, E.Alias):
                child = child.to_attribute()
            if not isinstance(child, E.AttributeReference):
                return None
            if child.expr_id not in index_by_id:
                return None
            dims.append(BoundDimension(index_by_id[child.expr_id],
                                       item.kind))
        return dims

    def _filter_selectivity(self, node: L.SkylineOperator,
                            leaf: L.LogicalPlan,
                            stats: TableStats) -> float:
        """Combined selectivity of the filters between node and leaf.

        Conjuncts of the form ``column <cmp> literal`` (either side) are
        estimated from the column histogram / distinct count; anything
        else is assumed non-reducing (conservative upper bound).
        """
        name_by_id = {a.expr_id: a.name for a in leaf.output}
        selectivity = 1.0
        for op in _operators_above_leaf(node.child):
            if isinstance(op, L.Filter):
                for conjunct in E.split_conjuncts(op.condition):
                    selectivity *= self._conjunct_selectivity(
                        conjunct, name_by_id, stats)
        return selectivity

    def _conjunct_selectivity(self, conjunct: E.Expression,
                              name_by_id: dict, stats: TableStats
                              ) -> float:
        column, op, value = _comparison_parts(conjunct, name_by_id)
        if column is None:
            return DEFAULT_SELECTIVITY
        column_stats = stats.column(column)
        if column_stats is None:
            return DEFAULT_SELECTIVITY
        if op == "=":
            distinct = column_stats.num_distinct
            return 1.0 / distinct if distinct else DEFAULT_SELECTIVITY
        histogram = column_stats.histogram
        if histogram is None or not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            return DEFAULT_SELECTIVITY
        if op in ("<", "<="):
            return histogram.selectivity_below(float(value))
        if op in (">", ">="):
            return histogram.selectivity_above(float(value))
        return DEFAULT_SELECTIVITY

    # -- the decision -----------------------------------------------------

    def decide(self, node: L.SkylineOperator) -> PlanDecision:
        """The full adaptive decision for one skyline operator."""
        leaf = _leaf_plan(node.child)
        stats = self._table_stats(leaf) if leaf is not None else None
        dims = self._bound_dimensions(node, leaf) \
            if leaf is not None else None

        # Estimated input rows: table stats scaled by filter selectivity,
        # falling back to the plain plan walk.
        estimated = estimate_input_rows(node.child)
        if stats is not None and leaf is not None:
            selectivity = self._filter_selectivity(node, leaf, stats)
            refined = int(math.ceil(stats.num_rows * selectivity))
            estimated = refined if estimated is None \
                else min(estimated, refined)

        density = stats.skyline_density(dims) \
            if stats is not None and dims is not None else None

        stats_lines: tuple[str, ...] = ()
        if stats is not None:
            dim_names = None
            if dims is not None and leaf is not None:
                output = leaf.output
                dim_names = [output[d.index].name for d in dims]
            stats_lines = tuple(stats.summary_lines(dim_names))
            if density is not None:
                stats_lines += (
                    f"sampled skyline density = {density:.2f}",)
            if estimated is not None:
                stats_lines += (f"estimated input rows = {estimated}",)
            if self.columnar:
                stats_lines += (
                    f"batch data plane: filter/project cost factors "
                    f"{COLUMNAR_FILTER_COST_FACTOR:.2f}/"
                    f"{COLUMNAR_PROJECT_COST_FACTOR:.2f} of row plane",)

        # (1) Correctness first: Listing 8's nullability rule.
        if not node.complete and node.dimensions_nullable:
            return PlanDecision(
                algorithm="distributed-incomplete",
                algorithm_reason="nullable dimensions without COMPLETE "
                                 "require the incomplete algorithm",
                partitioning="keep",
                partitioning_reason="null-bitmap partitioning is fixed "
                                    "by the incomplete algorithm",
                num_partitions=None,
                partitions_reason="one partition per distinct null "
                                  "bitmap",
                grid_cells_per_dim=None, estimated_rows=estimated,
                skyline_density=density, stats_lines=stats_lines)

        # (2) Tiny inputs: distribution overhead cannot pay off.
        if estimated is not None and estimated <= SMALL_INPUT_ROWS:
            return PlanDecision(
                algorithm="non-distributed-complete",
                algorithm_reason=f"input of ~{estimated} rows is below "
                                 f"the distribution threshold "
                                 f"({SMALL_INPUT_ROWS})",
                partitioning="keep",
                partitioning_reason="no local stage to partition for",
                num_partitions=1,
                partitions_reason="single global task",
                grid_cells_per_dim=None, estimated_rows=estimated,
                skyline_density=density, stats_lines=stats_lines)

        # (3) Algorithm: dense skylines pay many window comparisons
        # under BNL; presorting (SFS) then wins.
        value_dims = [] if dims is None else \
            [d for d in dims if d.kind is not DimensionKind.DIFF]
        if density is not None and density >= self.dense_fraction \
                and len(value_dims) >= 2:
            algorithm = "sfs"
            kernels = " (vectorized-kernel crossover)" \
                if self.vectorized else ""
            algorithm_reason = (f"dense skyline (sampled density "
                                f"{density:.2f} >= "
                                f"{self.dense_fraction}{kernels}) "
                                f"favours presorting")
        else:
            algorithm = "distributed-complete"
            if density is None:
                algorithm_reason = ("no density estimate; distributed "
                                    "BNL is the robust default")
            elif self.vectorized and density >= DENSE_SKYLINE_FRACTION:
                algorithm_reason = (f"sampled density {density:.2f} is "
                                    f"dense for scalar kernels, but the "
                                    f"vectorized block-BNL crossover "
                                    f"sits at "
                                    f"{self.dense_fraction}")
            else:
                algorithm_reason = (f"sparse-to-moderate skyline "
                                    f"(sampled density {density:.2f}) "
                                    f"favours distributed BNL")

        num_partitions, partitions_reason = self._partition_count(
            estimated, density)
        scheme, scheme_reason, cells = self._partitioning(
            dims, value_dims, density, stats, leaf, num_partitions,
            estimated)
        if scheme == "grid" and cells is not None:
            num_partitions = cells ** len(value_dims)
            partitions_reason = (f"{cells} cells per dimension over "
                                 f"{len(value_dims)} dimensions")
        elif scheme == "keep":
            num_partitions = None
            partitions_reason = "inherited from the scan parallelism"
        return PlanDecision(
            algorithm=algorithm, algorithm_reason=algorithm_reason,
            partitioning=scheme, partitioning_reason=scheme_reason,
            num_partitions=num_partitions,
            partitions_reason=partitions_reason,
            grid_cells_per_dim=cells, estimated_rows=estimated,
            skyline_density=density, stats_lines=stats_lines)

    def _partition_count(self, estimated: int | None,
                         density: float | None) -> tuple[int, str]:
        cap = max(self.num_executors, self.max_workers or 0, 1)
        if density is not None and density >= self.dense_fraction:
            # Dense local skylines are compute-bound (quadratic window
            # scans): maximise parallelism regardless of row count.
            return cap, ("dense skyline: one partition per "
                         "executor/worker")
        if estimated is None:
            return cap, ("input size unknown; one partition per "
                         "executor/worker")
        ideal = max(1, math.ceil(estimated / TARGET_ROWS_PER_PARTITION))
        count = max(1, min(ideal, cap, MAX_ADAPTIVE_PARTITIONS))
        return count, (f"~{estimated} rows / "
                       f"{TARGET_ROWS_PER_PARTITION} target rows per "
                       f"partition, capped at {cap} workers")

    def _partitioning(self, dims, value_dims, density, stats, leaf,
                      num_partitions: int, estimated: int | None
                      ) -> tuple[str, str, int | None]:
        """Scheme for the local stage: keep, random, grid or angle."""
        if dims is None or stats is None or len(value_dims) < 2:
            return ("keep", "statistics unavailable or fewer than two "
                            "value dimensions: child partitioning "
                            "kept", None)
        kinds = {d.kind for d in value_dims}
        uniform = len(kinds) == 1
        if density is not None and density >= self.dense_fraction \
                and not self.vectorized:
            # Scalar kernels: dense local windows make every saved
            # window scan expensive, so a balancing repartition wins.
            # Vectorized kernels absorb dense windows block-wise and
            # fall through to the break-even test below instead.
            if uniform:
                kind = next(iter(kinds)).name
                return ("angle", f"dense skyline with uniformly "
                                 f"oriented (all-{kind}) dimensions: "
                                 f"angular slices balance local "
                                 f"skylines", None)
            return ("random", "dense skyline but mixed MIN/MAX "
                              "orientation: the angular transform does "
                              "not apply", None)
        if num_partitions < 2:
            return ("keep", "single partition: no scheme needed", None)
        # Sparse skylines mean small local windows: a repartition
        # shuffle only pays off when the per-tuple window scans it
        # saves outweigh the extra non-parallelizable pass.
        if density is None or estimated is None:
            return ("keep", "no density/cardinality estimate: child "
                            "partitioning kept", None)
        expected_window = density * estimated / num_partitions
        if expected_window < self.repartition_break_even:
            if self.columnar and self.vectorized:
                suffix = ", batch data plane"
            elif self.vectorized:
                suffix = ", vectorized kernels"
            else:
                suffix = ""
            return ("keep", f"expected local window "
                            f"~{expected_window:.0f} rows is below the "
                            f"repartition break-even "
                            f"({self.repartition_break_even}{suffix}): "
                            f"child partitioning kept", None)
        cells = self._grid_cells(value_dims, leaf, stats,
                                 num_partitions)
        if cells is not None and cells >= 2:
            return ("grid", f"moderate skyline density "
                            f"({density:.2f}): equi-width grid enables "
                            f"cell-dominance pruning; {cells} cells "
                            f"per dimension sized from the column "
                            f"histograms", cells)
        return ("random", "histograms too concentrated for a useful "
                          "grid", None)

    def _grid_cells(self, value_dims, leaf, stats,
                    num_partitions: int) -> int | None:
        """Cells per dimension, bounded by histogram occupancy.

        A dimension whose values land in few histogram buckets cannot
        support more grid cells than that -- extra cells would be empty.
        """
        output = leaf.output
        occupancy = []
        for dim in value_dims:
            column = stats.column(output[dim.index].name)
            if column is None or column.histogram is None:
                return None
            occupancy.append(column.histogram.non_empty_buckets)
        wanted = max(2, round(num_partitions
                              ** (1.0 / len(value_dims))))
        # Honour the hard cap: cells ** dims is the resulting partition
        # count, so bound the per-dimension cells accordingly (high
        # dimension counts fall back to random via the >= 2 check).
        ceiling = int(MAX_ADAPTIVE_PARTITIONS
                      ** (1.0 / len(value_dims)))
        return max(1, min(wanted, min(occupancy), ceiling))


def _comparison_parts(conjunct: E.Expression, name_by_id: dict
                      ) -> tuple[str | None, str | None, object]:
    """Decompose ``column <cmp> literal`` conjuncts (either order)."""
    operators = {E.EqualTo: "=", E.LessThan: "<",
                 E.LessThanOrEqual: "<=", E.GreaterThan: ">",
                 E.GreaterThanOrEqual: ">="}
    op = operators.get(type(conjunct))
    if op is None:
        return None, None, None
    left, right = conjunct.left, conjunct.right
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(left, E.AttributeReference) and \
            isinstance(right, E.Literal):
        name = name_by_id.get(left.expr_id)
        return name, op, right.value
    if isinstance(right, E.AttributeReference) and \
            isinstance(left, E.Literal):
        name = name_by_id.get(right.expr_id)
        return name, flipped[op], left.value
    return None, None, None


def choose_strategy(node: L.SkylineOperator, catalog=None,
                    num_executors: int = 2) -> CostDecision:
    """Pick the best-suited *algorithm* for this skyline operator.

    The legacy ``cost-based`` entry point: algorithm only, no
    partitioning (use :meth:`CostModel.decide` for the full adaptive
    decision).
    """
    decision = CostModel(catalog, num_executors).decide(node)
    return CostDecision(
        strategy=decision.algorithm,
        estimated_rows=decision.estimated_rows,
        sample_skyline_fraction=decision.skyline_density,
        reason=decision.algorithm_reason)
