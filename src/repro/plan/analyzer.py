"""The analyzer: resolves an unresolved logical plan against the catalog.

Closely mirrors Spark's analyzer (Section 4, Figure 2) with the skyline
extensions of Section 5.3:

* ``ResolveMissingReferences`` gains a ``SkylineOperator`` case
  (Listing 6): skyline dimensions not present in the final projection are
  added to the child and trimmed back by an extra ``Project``.
* ``ResolveAggregateFunctions`` gains a ``SkylineOperator`` case
  (Listing 7): aggregate expressions used as skyline dimensions are
  propagated into the ``Aggregate`` below, also through an intervening
  HAVING ``Filter``.
* ``PreventPrematureProjections`` (Listing 9 / Appendix B) repairs the
  Sort-over-Filter-over-Aggregate resolution bug of stock Spark.

Correlated ``EXISTS`` subqueries (needed for the plain-SQL reference
formulation of skyline queries, Listing 4) are resolved with the outer
plan's attributes in scope.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..engine import expressions as E
from ..engine.catalog import Catalog
from ..errors import AnalysisError
from . import logical as L

#: Scalar functions the analyzer knows how to resolve.
_SCALAR_FUNCTIONS: dict[str, Callable[..., E.Expression]] = {
    "ifnull": lambda a, b: E.IfNull(a, b),
    "nvl": lambda a, b: E.IfNull(a, b),
    "coalesce": lambda *args: E.Coalesce(*args),
    "abs": lambda a: E.Abs(a),
}

_MAX_ITERATIONS = 50


class Analyzer:
    """Fixed-point rule executor over resolution rules."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public API -----------------------------------------------------

    def analyze(self, plan: L.LogicalPlan,
                outer_scope: Sequence[E.AttributeReference] = ()
                ) -> L.LogicalPlan:
        """Resolve ``plan`` fully, raising AnalysisError on failure."""
        rules = (
            self._resolve_relations,
            self._resolve_using_joins,
            self._resolve_references,
            self._resolve_functions,
            self._resolve_subqueries,
            self._resolve_aggregate_interactions,
            self._prevent_premature_projections,
            self._resolve_missing_references,
            self._materialize_computed_dimensions,
        )
        for _ in range(_MAX_ITERATIONS):
            before = L.tree_string(plan)
            for rule in rules:
                plan = rule(plan, tuple(outer_scope))
            if L.tree_string(plan) == before:
                break
        self._validate(plan)
        return plan

    # -- rule: relation resolution -----------------------------------------

    def _resolve_relations(self, plan: L.LogicalPlan,
                           outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if isinstance(node, L.UnresolvedRelation):
                table = self.catalog.lookup(node.name)
                return L.LogicalRelation(table)
            return node

        return plan.transform_up(rule)

    # -- rule: USING joins ----------------------------------------------------

    def _resolve_using_joins(self, plan: L.LogicalPlan,
                             outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not (isinstance(node, L.Join) and node.using_columns):
                return node
            if not (node.left.resolved and node.right.resolved):
                return node
            left_out = node.left.output
            right_out = node.right.output
            conditions = []
            left_keys: list[E.AttributeReference] = []
            right_keys: list[E.AttributeReference] = []
            for column in node.using_columns:
                left_attr = _find_attribute(left_out, column, None)
                right_attr = _find_attribute(right_out, column, None)
                if left_attr is None or right_attr is None:
                    raise AnalysisError(
                        f"USING column {column!r} not found on both sides")
                conditions.append(E.EqualTo(left_attr, right_attr))
                left_keys.append(left_attr)
                right_keys.append(right_attr)
            joined = L.Join(node.left, node.right, node.join_type,
                            E.conjunction(conditions))
            if node.join_type in (L.JoinType.LEFT_SEMI, L.JoinType.LEFT_ANTI):
                return joined
            # Deduplicate the key columns like Spark: key columns once
            # (taking the left side's value, coalesced for FULL OUTER),
            # then the remaining columns of each side.
            key_ids = {a.expr_id for a in left_keys} | {
                a.expr_id for a in right_keys}
            projections: list[E.Expression] = []
            for left_attr, right_attr in zip(left_keys, right_keys):
                if node.join_type == L.JoinType.FULL_OUTER:
                    projections.append(E.Alias(
                        E.Coalesce(left_attr, right_attr), left_attr.name))
                elif node.join_type == L.JoinType.RIGHT_OUTER:
                    projections.append(right_attr)
                else:
                    projections.append(left_attr)
            for attr in joined.output:
                if attr.expr_id not in key_ids:
                    projections.append(attr)
            return L.Project(projections, joined)

        return plan.transform_up(rule)

    # -- rule: reference resolution ------------------------------------------

    def _resolve_references(self, plan: L.LogicalPlan,
                            outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not all(c.resolved for c in node.children):
                return node
            node = self._expand_stars(node)
            scope = node.input_attributes

            def resolve(expr: E.Expression) -> E.Expression:
                if isinstance(expr, E.UnresolvedAttribute):
                    attr = _find_attribute(scope, expr.name, expr.qualifier)
                    if attr is not None:
                        return attr
                    outer_attr = _find_attribute(list(outer), expr.name,
                                                 expr.qualifier)
                    if outer_attr is not None:
                        return E.OuterReference(outer_attr)
                return expr

            return node.transform_expressions_up(resolve)

        return plan.transform_up(rule)

    def _expand_stars(self, node: L.LogicalPlan) -> L.LogicalPlan:
        """Expand ``*`` / ``t.*`` in Project and Aggregate select lists."""
        if isinstance(node, L.Project):
            if not any(isinstance(p, E.UnresolvedStar)
                       for p in node.projections):
                return node
            expanded: list[E.Expression] = []
            for projection in node.projections:
                if isinstance(projection, E.UnresolvedStar):
                    expanded.extend(
                        _star_attributes(node.child.output,
                                         projection.qualifier))
                else:
                    expanded.append(projection)
            return L.Project(expanded, node.child)
        if isinstance(node, L.Aggregate):
            if not any(isinstance(a, E.UnresolvedStar)
                       for a in node.aggregate_expressions):
                return node
            raise AnalysisError("* is not allowed in an aggregate query")
        return node

    # -- rule: function resolution ----------------------------------------------

    def _resolve_functions(self, plan: L.LogicalPlan,
                           outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            return node.transform_expressions_up(_resolve_function_call)

        return plan.transform_up(rule)

    # -- rule: subquery resolution --------------------------------------------

    def _resolve_subqueries(self, plan: L.LogicalPlan,
                            outer: tuple) -> L.LogicalPlan:
        analyzer = self

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not all(c.resolved for c in node.children):
                return node
            scope = tuple(node.input_attributes) + outer

            def resolve(expr: E.Expression) -> E.Expression:
                if isinstance(expr, E.SubqueryExpression) and \
                        not getattr(expr.plan, "resolved", False):
                    resolved_plan = analyzer.analyze(expr.plan,
                                                     outer_scope=scope)
                    return expr.with_plan(resolved_plan)
                return expr

            return node.transform_expressions_up(resolve)

        return plan.transform_up(rule)

    # -- rule: aggregates referenced above an Aggregate --------------------------
    #
    # Implements ResolveAggregateFunctions including the skyline case of
    # Listing 7 and the Sort/Filter/Aggregate case of Listing 10.

    def _resolve_aggregate_interactions(self, plan: L.LogicalPlan,
                                        outer: tuple) -> L.LogicalPlan:
        def needs_pull(node: L.LogicalPlan) -> bool:
            if not node.resolved:
                return True
            return any(e.contains_aggregate() for e in node.expressions())

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            # HAVING:  Filter over Aggregate.
            if isinstance(node, L.Filter) and \
                    isinstance(node.child, L.Aggregate) and \
                    node.child.resolved and needs_pull(node):
                return self._pull_aggregates_through(
                    node, [node.condition], node.child,
                    lambda exprs, agg: L.Filter(exprs[0], agg))
            # Sort over Aggregate (or over HAVING-Filter over Aggregate).
            if isinstance(node, L.Sort) and needs_pull(node):
                target, wrap = _aggregate_below(node.child)
                if target is not None and target.resolved:
                    return self._pull_aggregates_through(
                        node, [o.child for o in node.order], target,
                        lambda exprs, agg: node.copy(
                            order=[o.copy(child=e) for o, e in
                                   zip(node.order, exprs)],
                            child=wrap(agg)))
            # Skyline over Aggregate (Listing 7), also through HAVING.
            if isinstance(node, L.SkylineOperator) and needs_pull(node):
                target, wrap = _aggregate_below(node.child)
                if target is not None and target.resolved:
                    return self._pull_aggregates_through(
                        node, [i.child for i in node.skyline_items], target,
                        lambda exprs, agg: node.copy(
                            skyline_items=[i.copy(child=e) for i, e in
                                           zip(node.skyline_items, exprs)],
                            child=wrap(agg)))
            return node

        return plan.transform_up(rule)

    def _pull_aggregates_through(
            self, node: L.LogicalPlan, exprs: list[E.Expression],
            agg: L.Aggregate,
            rebuild: Callable[[list[E.Expression], L.LogicalPlan],
                              L.LogicalPlan]) -> L.LogicalPlan:
        """Resolve ``exprs`` against ``agg``, extending it when needed.

        The Spark pattern (``resolveOperatorWithAggregate``): expressions
        may reference the aggregate's output aliases, its grouping
        columns, or *new* aggregate functions that must be added to the
        Aggregate; in the latter cases the operator is rebuilt on top of
        an extended Aggregate and a Project trims the output back.
        """
        original_output = agg.output
        extra: list[E.Alias] = []

        agg_output = agg.output
        child_scope = agg.child.output

        def resolve_one(expr: E.Expression) -> E.Expression | None:
            def step(e: E.Expression) -> E.Expression:
                if isinstance(e, E.UnresolvedAttribute):
                    found = _find_attribute(agg_output, e.name, e.qualifier)
                    if found is not None:
                        return found
                    found = _find_attribute(child_scope, e.name, e.qualifier)
                    if found is not None:
                        return found
                return e

            resolved = expr.transform_up(step)
            resolved = resolved.transform_up(_resolve_function_call)

            def lift(e: E.Expression) -> E.Expression:
                if isinstance(e, E.AggregateFunction):
                    if not e.resolved:
                        return e
                    # Reuse an existing identical aggregate output.
                    for existing in agg.aggregate_expressions:
                        if isinstance(existing, E.Alias) and \
                                isinstance(existing.child,
                                           E.AggregateFunction) and \
                                existing.child.sql() == e.sql():
                            return existing.to_attribute()
                    for added in extra:
                        if added.child.sql() == e.sql():
                            return added.to_attribute()
                    alias = E.Alias(e, e.sql())
                    extra.append(alias)
                    return alias.to_attribute()
                return e

            lifted = resolved.transform_up(lift)
            # Any reference to the aggregate child that is neither a
            # grouping column nor an aggregate output must be lifted via
            # grouping passthrough; only legal if it IS a grouping expr.
            agg_ids = {a.expr_id for a in agg_output} | {
                a.expr_id for alias in extra
                for a in [alias.to_attribute()]}
            grouping_refs = {
                g.expr_id for g in agg.grouping_expressions
                if isinstance(g, E.AttributeReference)}
            for ref in lifted.references():
                if ref.expr_id in agg_ids:
                    continue
                if ref.expr_id in grouping_refs:
                    alias = E.Alias(ref, ref.name)
                    extra.append(alias)
                    replacement = alias.to_attribute()

                    def swap(e: E.Expression,
                             target=ref, new=replacement) -> E.Expression:
                        if isinstance(e, E.AttributeReference) and \
                                e.expr_id == target.expr_id:
                            return new
                        return e

                    lifted = lifted.transform_up(swap)
                    continue
                return None  # cannot resolve here; leave for other rules
            return lifted

        new_exprs: list[E.Expression] = []
        for expr in exprs:
            resolved = resolve_one(expr)
            if resolved is None:
                return node
            new_exprs.append(resolved)
        if not extra:
            rebuilt = rebuild(new_exprs, agg)
            return rebuilt
        extended = agg.copy(
            aggregates=list(agg.aggregate_expressions) + extra)
        rebuilt = rebuild(new_exprs, extended)
        return L.Project(original_output, rebuilt)

    # -- rule: PreventPrematureProjections (Appendix B, Listing 9) ----------------

    def _prevent_premature_projections(self, plan: L.LogicalPlan,
                                       outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not (isinstance(node, (L.Sort, L.SkylineOperator))
                    and not node.resolved):
                return node
            child = node.children[0]
            if not (isinstance(child, L.Project) and
                    isinstance(child.child, L.Filter) and
                    isinstance(child.child.child, L.Aggregate)):
                return node
            project, filter_node = child, child.child
            if not (filter_node.resolved and filter_node.child.resolved):
                return node
            # Retry resolution with the Project removed; if that helps,
            # reintroduce the Project on top (Listing 9).
            without_project = node.with_children([filter_node])
            retried = self._resolve_aggregate_interactions(without_project,
                                                           outer)
            if L.tree_string(retried) != L.tree_string(without_project):
                return L.Project(project.projections, retried)
            return node

        return plan.transform_up(rule)

    # -- rule: ResolveMissingReferences (Listing 6) -------------------------------

    def _resolve_missing_references(self, plan: L.LogicalPlan,
                                    outer: tuple) -> L.LogicalPlan:
        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not isinstance(node, (L.Sort, L.SkylineOperator)):
                return node
            if node.resolved or not node.children[0].resolved:
                return node
            child = node.children[0]
            exprs = node.expressions()
            new_exprs, new_child = _resolve_exprs_adding_missing(
                exprs, child)
            if new_exprs is None:
                return node
            if isinstance(node, L.SkylineOperator):
                dimensions = [e if isinstance(e, E.SkylineDimension)
                              else i.copy(child=e)
                              for i, e in zip(node.skyline_items, new_exprs)]
                if [a.expr_id for a in child.output] == \
                        [a.expr_id for a in new_child.output]:
                    return node.copy(skyline_items=dimensions)
                new_skyline = node.copy(skyline_items=dimensions,
                                        child=new_child)
                return L.Project(child.output, new_skyline)
            # Sort case
            new_order = [o.copy(child=e) if not isinstance(e, L.SortOrder)
                         else e for o, e in zip(node.order, new_exprs)]
            if [a.expr_id for a in child.output] == \
                    [a.expr_id for a in new_child.output]:
                return node.copy(order=new_order)
            new_sort = node.copy(order=new_order, child=new_child)
            return L.Project(child.output, new_sort)

        return plan.transform_up(rule)

    # -- rule: materialize computed skyline dimensions ----------------------------

    def _materialize_computed_dimensions(self, plan: L.LogicalPlan,
                                         outer: tuple) -> L.LogicalPlan:
        """Turn expression-valued skyline dimensions into child columns.

        ``SKYLINE OF price / quality MIN`` is legal syntax (the paper:
        a dimension "is usually a column but can also be a more complex
        Expression"); the physical skyline nodes compare tuple ordinals,
        so computed dimensions are evaluated once in a projection below
        the operator and trimmed back above it.
        """

        def rule(node: L.LogicalPlan) -> L.LogicalPlan:
            if not (isinstance(node, L.SkylineOperator) and node.resolved):
                return node
            if all(isinstance(i.child, E.AttributeReference)
                   for i in node.skyline_items):
                return node
            child = node.children[0]
            extra: list[E.Alias] = []
            new_items = []
            for item in node.skyline_items:
                if isinstance(item.child, E.AttributeReference):
                    new_items.append(item)
                    continue
                alias = E.Alias(item.child,
                                f"_skyline_dim_{len(extra)}")
                extra.append(alias)
                new_items.append(item.copy(child=alias.to_attribute()))
            widened = L.Project(list(child.output) + extra, child)
            new_skyline = node.copy(skyline_items=new_items, child=widened)
            return L.Project(child.output, new_skyline)

        return plan.transform_up(rule)

    # -- validation ----------------------------------------------------------------

    def _validate(self, plan: L.LogicalPlan) -> None:
        for node in plan.iter_tree():
            if isinstance(node, L.UnresolvedRelation):
                raise AnalysisError(f"table or view not found: {node.name}")
            if not node.resolved:
                unresolved = [e.sql() for e in node.expressions()
                              if not e.resolved]
                missing = {r.name for r in node.missing_input}
                detail = ""
                if unresolved:
                    detail = f"; unresolved expressions: {unresolved}"
                elif missing:
                    detail = f"; missing input columns: {sorted(missing)}"
                raise AnalysisError(
                    f"plan failed to resolve at node "
                    f"{node.node_description()}{detail}")
            if isinstance(node, L.Aggregate):
                self._validate_aggregate(node)

    def _validate_aggregate(self, agg: L.Aggregate) -> None:
        grouping_ids = {g.expr_id for g in agg.grouping_expressions
                        if isinstance(g, E.AttributeReference)}
        grouping_sql = {g.sql() for g in agg.grouping_expressions}
        for expr in agg.aggregate_expressions:
            self._check_grouping(expr, grouping_ids, grouping_sql)

    def _check_grouping(self, expr: E.Expression, grouping_ids: set,
                        grouping_sql: set) -> None:
        if isinstance(expr, E.AggregateFunction):
            return  # everything below an aggregate is fine
        if isinstance(expr, E.AttributeReference):
            if expr.expr_id not in grouping_ids and \
                    expr.sql() not in grouping_sql:
                raise AnalysisError(
                    f"column {expr.name!r} must appear in GROUP BY or be "
                    f"wrapped in an aggregate function")
            return
        if expr.sql() in grouping_sql:
            return
        for child in expr.children:
            self._check_grouping(child, grouping_ids, grouping_sql)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _resolve_function_call(expr: E.Expression) -> E.Expression:
    """Turn a resolved-argument UnresolvedFunction into a typed function."""
    if not isinstance(expr, E.UnresolvedFunction):
        return expr
    if any(isinstance(a, (E.UnresolvedAttribute, E.UnresolvedStar))
           for arg in expr.children for a in arg.iter_tree()):
        return expr  # wait until arguments are resolved
    name = expr.name
    if name in E.AGGREGATE_FUNCTIONS:
        if len(expr.children) != 1:
            raise AnalysisError(
                f"aggregate {name} expects exactly one argument")
        return E.AGGREGATE_FUNCTIONS[name](expr.children[0],
                                           expr.is_distinct)
    if name in _SCALAR_FUNCTIONS:
        try:
            return _SCALAR_FUNCTIONS[name](*expr.children)
        except TypeError:
            raise AnalysisError(
                f"wrong number of arguments for {name}()") from None
    raise AnalysisError(f"undefined function: {name}")


def _find_attribute(scope: Sequence[E.AttributeReference], name: str,
                    qualifier: str | None) -> E.AttributeReference | None:
    """Case-insensitive attribute lookup; raises on ambiguity."""
    name_l = name.lower()
    matches = []
    for attr in scope:
        if attr.name.lower() != name_l:
            continue
        if qualifier is not None:
            if attr.qualifier is None or \
                    attr.qualifier.lower() != qualifier.lower():
                continue
        matches.append(attr)
    if not matches:
        return None
    distinct_ids = {a.expr_id for a in matches}
    if len(distinct_ids) > 1:
        display = f"{qualifier}.{name}" if qualifier else name
        raise AnalysisError(f"reference {display!r} is ambiguous")
    return matches[0]


def _star_attributes(scope: Sequence[E.AttributeReference],
                     qualifier: str | None) -> list[E.AttributeReference]:
    if qualifier is None:
        return list(scope)
    result = [a for a in scope
              if a.qualifier and a.qualifier.lower() == qualifier.lower()]
    if not result:
        raise AnalysisError(f"cannot expand {qualifier}.*: unknown qualifier")
    return result


def _aggregate_below(plan: L.LogicalPlan
                     ) -> tuple[L.Aggregate | None,
                                Callable[[L.LogicalPlan], L.LogicalPlan]]:
    """Find an Aggregate directly below, possibly through a HAVING Filter.

    Returns the aggregate and a function re-wrapping a replacement
    aggregate with the intervening nodes.
    """
    if isinstance(plan, L.Aggregate):
        return plan, lambda agg: agg
    if isinstance(plan, L.Filter) and isinstance(plan.child, L.Aggregate):
        condition = plan.condition
        return plan.child, lambda agg: L.Filter(condition, agg)
    return None, lambda agg: agg


def _resolve_exprs_adding_missing(
        exprs: list[E.Expression], child: L.LogicalPlan
) -> tuple[list[E.Expression] | None, L.LogicalPlan]:
    """Spark's ``resolveExprsAndAddMissingAttrs`` for our plan shapes.

    Attempts to resolve unresolved attributes in ``exprs`` against
    descendants of ``child``; when an attribute is found below a Project,
    the Project is extended to pass it through.  Returns ``(None, child)``
    if nothing could be improved.
    """
    inner_scopes: list[tuple[L.LogicalPlan, list[E.AttributeReference]]] = []

    def gather(plan: L.LogicalPlan) -> None:
        if isinstance(plan, L.Project):
            inner_scopes.append((plan, plan.child.output))
            gather(plan.child)
        elif isinstance(plan, (L.Filter, L.Distinct, L.SubqueryAlias,
                               L.Sort, L.Limit)):
            gather(plan.children[0])

    gather(child)
    if not inner_scopes:
        return None, child

    needed: list[E.AttributeReference] = []
    child_ids = {a.expr_id for a in child.output}

    def resolve(expr: E.Expression) -> E.Expression:
        if isinstance(expr, E.UnresolvedAttribute):
            for _, scope in inner_scopes:
                attr = _find_attribute(scope, expr.name, expr.qualifier)
                if attr is not None:
                    if attr.expr_id not in child_ids and \
                            all(attr.expr_id != n.expr_id for n in needed):
                        needed.append(attr)
                    return attr
        return expr

    new_exprs = [e.transform_up(resolve) for e in exprs]
    # Also handle already-resolved references that the child output lacks.
    for expr in new_exprs:
        for ref in expr.references():
            if ref.expr_id not in child_ids and \
                    all(ref.expr_id != n.expr_id for n in needed):
                for _, scope in inner_scopes:
                    if any(a.expr_id == ref.expr_id for a in scope):
                        needed.append(ref)
                        break
    if not needed:
        changed = any(n is not o for n, o in zip(new_exprs, exprs))
        return (new_exprs, child) if changed else (None, child)

    def extend(plan: L.LogicalPlan) -> L.LogicalPlan:
        if isinstance(plan, L.Project):
            below = plan.child.output
            additions = [n for n in needed
                         if any(a.expr_id == n.expr_id for a in below)
                         and all(a.expr_id != n.expr_id
                                 for a in plan.output)]
            new_child = extend(plan.child)
            return L.Project(list(plan.projections) + additions, new_child)
        if isinstance(plan, (L.Filter, L.Distinct, L.SubqueryAlias, L.Sort,
                             L.Limit)):
            return plan.with_children([extend(plan.children[0])])
        return plan

    return new_exprs, extend(child)
