"""Row-plane vs batch-plane end-to-end ablation.

The PR-3 kernels vectorized the skyline operator itself; this ablation
measures what the **columnar data plane** adds on top: full queries
whose pipeline includes a filter, a projection with arithmetic, and a
skyline -- the non-skyline operators dominate the row-plane runtime
once the kernels are fast.  Each figure workload (airbnb, store_sales)
runs the same query on two sessions differing only in ``columnar=``;
results are asserted identical row-for-row, so the ablation doubles as
a coarse differential check at benchmark scale.

Reachable via ``python -m repro.bench --columnar``; the rendered table
is committed under ``benchmarks/results/ablation_columnar.txt``.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Sequence

from ..api.session import SkylineSession

#: (WHERE predicate, projection extras) per figure workload: a
#: selective numeric filter plus computed columns, the pipeline shape
#: of the paper's Listing 2 queries with realistic analytics on top.
QUERY_SHAPES = {
    "airbnb": (
        "price < 300.0 AND accommodates > 1 AND beds > 0",
        "price / accommodates AS price_per_person, "
        "number_of_reviews * review_scores_rating AS review_weight",
    ),
    "store_sales": (
        "ss_quantity > 20 AND ss_list_price < 150.0 "
        "AND ss_sales_price > 10.0",
        "ss_list_price - ss_wholesale_cost AS margin, "
        "ss_ext_sales_price / ss_quantity AS unit_price",
    ),
}


def _workloads(num_rows: int):
    from ..datasets import airbnb_workload, store_sales_workload
    return [airbnb_workload(num_rows), store_sales_workload(num_rows)]


def _ablation_sql(workload, num_dimensions: int) -> str:
    predicate, extra = QUERY_SHAPES[workload.table_name]
    columns = ", ".join(c[0] for c in workload.columns)
    dims = ", ".join(f"{name} {kind.upper()}"
                     for name, kind in workload.dimensions(num_dimensions))
    return (f"SELECT {columns}, {extra} FROM {workload.table_name} "
            f"WHERE {predicate} SKYLINE OF {dims}")


def measure_columnar_speedup(num_rows: int = 60_000,
                             num_dimensions: int = 3,
                             num_executors: int = 4,
                             repeats: int = 3) -> dict:
    """End-to-end figure-workload queries, row plane vs batch plane.

    Both sessions run the vectorized skyline kernels (the PR-3
    default); only the data plane differs, so the speedup isolates the
    scan/filter/projection pipeline plus the batch-vs-row kernel
    hand-off.  The best of ``repeats`` runs per side smooths scheduler
    noise.
    """
    report: dict = {
        "kind": "columnar",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "num_dimensions": num_dimensions,
        "num_executors": num_executors,
        "workloads": [],
    }
    for workload in _workloads(num_rows):
        sql = _ablation_sql(workload, num_dimensions)
        times: dict[str, float] = {}
        skylines: dict[str, list[tuple]] = {}
        for label, columnar in (("row", False), ("columnar", True)):
            session = SkylineSession(num_executors=num_executors,
                                     columnar=columnar)
            workload.register(session)
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                result = session.sql(sql).run()
                best = min(best, time.perf_counter() - start)
            times[label] = best
            skylines[label] = sorted(result.as_tuples(), key=repr)
        if skylines["row"] != skylines["columnar"]:
            raise AssertionError(
                f"row and columnar planes disagree on "
                f"{workload.table_name}")
        report["workloads"].append({
            "workload": workload.table_name,
            "sql": sql,
            "row_s": times["row"],
            "columnar_s": times["columnar"],
            "speedup": times["row"] / times["columnar"]
            if times["columnar"] > 0 else float("inf"),
            "skyline_rows": len(skylines["row"]),
        })
    report["best_speedup"] = max(w["speedup"]
                                 for w in report["workloads"])
    return report


def render_columnar_report(report: dict) -> str:
    """The ablation as a fixed-width table (committed under results/)."""
    lines = [
        f"columnar data-plane ablation -- {report['num_rows']} rows, "
        f"{report['num_dimensions']} dimensions, filter + projection + "
        f"skyline (python {report['python']})",
        "",
        f"{'workload':<14}{'row plane':>12}{'batch plane':>13}"
        f"{'speedup':>10}{'skyline rows':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    for entry in report["workloads"]:
        lines.append(
            f"{entry['workload']:<14}{entry['row_s']:>11.3f}s"
            f"{entry['columnar_s']:>12.3f}s{entry['speedup']:>9.2f}x"
            f"{entry['skyline_rows']:>14}")
    lines.append("")
    lines.append(f"best end-to-end speedup: "
                 f"{report['best_speedup']:.2f}x")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point mirroring ``repro.bench --columnar``."""
    from .smoke import main as smoke_main
    return smoke_main(["--columnar", *(argv or [])])
