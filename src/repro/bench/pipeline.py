"""Pipelined vs staged executor ablation (operator overlap + spill).

The staged executor runs scan -> filter/project -> local skyline as
bulk-synchronous stages with a barrier after each one; the pipelined
executor (``execution="pipelined"``) splits the scan into morsels and
packs fold/map/scan tasks into mixed waves, so downstream operators
start while upstream partitions are still being produced.

Two legs, both on the identical prepared store_sales query:

* **overlap** -- staged vs pipelined end-to-end wall clock and
  time-to-first-batch on the process backend.  The pipelined executor
  must either beat staged end-to-end or (the robust win) produce its
  first local-skyline partial much earlier -- the responsiveness a
  streaming consumer of partials actually observes.
* **out-of-core** -- the pipelined executor under an operator budget
  several times smaller than the input, proving backpressure + disk
  spill complete the query with bounded operator memory while results
  stay bit-identical to staged.

Reachable via ``python -m repro.bench --pipeline``; the rendered table
is committed under ``benchmarks/results/ablation_pipeline.txt``.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Sequence

from ..api.config import SessionConfig
from ..api.session import SkylineSession

#: Input-to-budget ratio the out-of-core leg must reach (the gate
#: would be vacuous if the dataset fit the operator budget).
OUT_OF_CORE_RATIO = 4.0


def _rss_mb() -> float:
    """Peak RSS of this process in MB (0.0 where unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes.
    return peak / 1024.0 if os.uname().sysname == "Linux" \
        else peak / (1024.0 * 1024.0)


def _timed_leg(workload, sql: str, repeats: int, **config) -> dict:
    """Best-of-``repeats`` execution of one session configuration."""
    session = SkylineSession(config=SessionConfig(**config))
    try:
        workload.register(session)
        prepared = session.prepare(session.sql(sql).plan)
        result = session.execute_prepared(prepared)  # warm-up
        best = float("inf")
        best_ttfb = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = session.execute_prepared(prepared)
            best = min(best, time.perf_counter() - start)
            ttfb = result.time_to_first_batch_s
            if ttfb is not None:
                best_ttfb = min(best_ttfb, ttfb)
        return {
            "seconds": best,
            "ttfb_s": best_ttfb,
            "skyline": sorted(result.as_tuples(), key=repr),
            "pipeline": result.pipeline,
            "peak_memory_mb": result.peak_memory_mb,
        }
    finally:
        session.close()


def measure_pipeline(num_rows: int = 40_000,
                     num_dimensions: int = 5,
                     num_executors: int = 8,
                     num_workers: int = 2,
                     repeats: int = 3,
                     ooc_budget_mb: float | None = None) -> dict:
    """Staged vs pipelined execution of the store_sales skyline query.

    The overlap leg runs both modes with the scalar reference kernels
    and the default operator budget (no spill): that is the regime
    where the local-skyline fold dominates and a staged consumer waits
    for the whole scan + local stage before seeing any partial, so
    overlap and time-to-first-batch are what the pipelined executor is
    for.  (Under the vectorized columnar kernels the same query
    collapses to milliseconds and per-wave scheduling overhead wins --
    the dedicated ``--columnar`` ablation covers that regime.)  The
    out-of-core leg reruns the pipelined mode on the columnar plane
    under a budget at least :data:`OUT_OF_CORE_RATIO` times smaller
    than the input, asserting the run completes, spills, and stays
    bit-identical.
    """
    from ..datasets import store_sales_workload
    from ..engine.batch import ColumnBatch

    workload = store_sales_workload(num_rows)
    sql = workload.skyline_sql(num_dimensions)
    dataset_bytes = ColumnBatch.from_rows(
        workload.rows, len(workload.columns)).nbytes
    if ooc_budget_mb is None:
        # ~1.5 morsels: the second concurrent morsel must spill, and
        # the input-to-budget ratio stays well above the >= 4x gate.
        from ..engine.pipeline import PIPELINE_MORSEL_ROWS
        morsel_mb = dataset_bytes / 1e6 * PIPELINE_MORSEL_ROWS / num_rows
        ooc_budget_mb = max(
            0.05, min(dataset_bytes / 1e6 / (OUT_OF_CORE_RATIO * 1.5),
                      1.5 * morsel_mb))
    base = dict(num_executors=num_executors, backend="process",
                num_workers=num_workers)
    report: dict = {
        "kind": "pipeline",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "num_dimensions": num_dimensions,
        "num_executors": num_executors,
        "num_workers": num_workers,
        "repeats": repeats,
        "sql": sql,
        "dataset_bytes": dataset_bytes,
    }

    scalar = dict(base, vectorized=False, columnar=False)
    staged = _timed_leg(workload, sql, repeats,
                        execution="staged", **scalar)
    pipelined = _timed_leg(workload, sql, repeats,
                           execution="pipelined", **scalar)
    overlap = {
        "staged_s": staged["seconds"],
        "pipelined_s": pipelined["seconds"],
        "speedup": (staged["seconds"] / pipelined["seconds"]
                    if pipelined["seconds"] > 0 else float("inf")),
        "staged_ttfb_s": staged["ttfb_s"],
        "pipelined_ttfb_s": pipelined["ttfb_s"],
        "ttfb_speedup": (staged["ttfb_s"] / pipelined["ttfb_s"]
                         if pipelined["ttfb_s"] > 0 else float("inf")),
        "bit_identical": staged["skyline"] == pipelined["skyline"],
        "skyline_rows": len(pipelined["skyline"]),
        "waves": (pipelined["pipeline"] or {}).get("waves"),
    }
    report["overlap"] = overlap

    staged_col = _timed_leg(workload, sql, 1, execution="staged",
                            columnar=True, **base)
    ooc = _timed_leg(workload, sql, 1, execution="pipelined",
                     operator_memory_mb=ooc_budget_mb,
                     columnar=True, **base)
    info = ooc["pipeline"] or {}
    operators = info.get("operators", {})
    budget_bytes = info.get("budget_bytes",
                            int(ooc_budget_mb * 1e6))
    report["out_of_core"] = {
        "budget_mb": ooc_budget_mb,
        "budget_bytes": budget_bytes,
        "ratio": (dataset_bytes / budget_bytes
                  if budget_bytes else float("inf")),
        "seconds": ooc["seconds"],
        "spilled_bytes": info.get("spilled_bytes", 0),
        "spill_count": info.get("spill_count", 0),
        "fold_peak_bytes": operators.get("fold", {}).get("peak_bytes"),
        "map_peak_bytes": operators.get("map", {}).get("peak_bytes"),
        "bit_identical": ooc["skyline"] == staged_col["skyline"],
        "skyline_rows": len(ooc["skyline"]),
        "rss_mb": _rss_mb(),
    }
    return report


def render_pipeline_report(report: dict) -> str:
    """The ablation as a fixed-width table (committed under results/)."""
    o = report["overlap"]
    c = report["out_of_core"]
    lines = [
        f"pipelined executor ablation -- store_sales, "
        f"{report['num_rows']} rows, {report['num_dimensions']} "
        f"dimensions, process backend ({report['num_workers']} "
        f"workers, prepared query, best of {report['repeats']}; "
        f"python {report['python']})",
        "",
        f"{'mode':<12}{'per run':>12}{'first batch':>14}"
        f"{'skyline rows':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    lines.append(f"{'staged':<12}{o['staged_s']:>11.3f}s"
                 f"{o['staged_ttfb_s']:>13.4f}s"
                 f"{o['skyline_rows']:>14}")
    lines.append(f"{'pipelined':<12}{o['pipelined_s']:>11.3f}s"
                 f"{o['pipelined_ttfb_s']:>13.4f}s"
                 f"{o['skyline_rows']:>14}")
    lines.append("")
    lines.append(
        f"end-to-end speedup {o['speedup']:.2f}x, time-to-first-batch "
        f"speedup {o['ttfb_speedup']:.2f}x over {o['waves']} waves; "
        f"bit-identical: {o['bit_identical']}")
    lines.append("")
    lines.append(
        f"out-of-core: {report['dataset_bytes'] / 1e6:.1f} MB input "
        f"through a {c['budget_mb']:.2f} MB operator budget "
        f"({c['ratio']:.1f}x) in {c['seconds']:.3f}s; "
        f"spilled {c['spilled_bytes'] / 1e6:.2f} MB in "
        f"{c['spill_count']} morsels, fold peak "
        f"{(c['fold_peak_bytes'] or 0) / 1e6:.2f} MB; "
        f"bit-identical: {c['bit_identical']}; "
        f"process peak RSS {c['rss_mb']:.0f} MB")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point mirroring ``repro.bench --pipeline``."""
    from .smoke import main as smoke_main
    return smoke_main(["--pipeline", *(argv or [])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
