"""Shared-memory vs pickled transport ablation (process backend).

The PR-4 columnar plane made batches the unit of exchange; on the
process backend every batch still crossed the worker pipe as pickled
bytes on every stage of every execution.  The PR-9 shared-memory data
plane ships a ~100-byte handle instead and keeps a prepared query's
input partitions resident in ``/dev/shm`` across executions, so the
per-execution cost drops to mapping segments that are already there.

The ablation mirrors that serving-style shape: a prepared store_sales
skyline query whose projection carries a wide block of computed
columns (the regime where transport, not the kernels, dominates --
exactly when a real deployment would reach for zero-copy).  Both legs
run the identical prepared plan on the identical process pool
configuration, differing only in ``shared_memory=``; results are
asserted bit-identical and the shm leg must leave ``/dev/shm`` clean,
so the ablation doubles as a leak check at benchmark scale.

Reachable via ``python -m repro.bench --shm``; the rendered table is
committed under ``benchmarks/results/ablation_shm.txt``.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Sequence

from ..api.config import SessionConfig
from ..api.session import SkylineSession

#: Computed projection columns widening the shipped batches.  Eight
#: physical columns pickle in ~the time they map; a serving projection
#: of derived metrics (margins, ratios, scaled prices) pushes the
#: by-value transport into copy-bound territory while the handle stays
#: a handle.
WIDE_COLUMNS = 24


def _ablation_sql(num_dimensions: int, wide_columns: int) -> str:
    extras = ", ".join(
        f"ss_list_price * {k + 1} AS x{k}" for k in range(wide_columns))
    dims = ", ".join(("ss_quantity MAX", "ss_wholesale_cost MIN",
                      "ss_list_price MIN")[:num_dimensions])
    return (f"SELECT ss_quantity, ss_wholesale_cost, ss_list_price, "
            f"{extras} FROM store_sales WHERE ss_quantity > 5 "
            f"SKYLINE OF {dims}")


def measure_shm_speedup(num_rows: int = 60_000,
                        num_dimensions: int = 2,
                        num_executors: int = 8,
                        num_workers: int = 2,
                        repeats: int = 5,
                        wide_columns: int = WIDE_COLUMNS) -> dict:
    """Prepared store_sales query, pickled vs zero-copy transport.

    Each leg prepares once, runs one warm-up execution (the shm leg
    registers and pins its input segments there), then takes the best
    of ``repeats`` timed executions -- the steady state a serving
    deployment sees.  Raises if the platform cannot serve shared
    memory: the ablation would silently compare pickle to pickle.
    """
    from ..datasets import store_sales_workload
    from ..engine.shm import leaked_segments, shared_memory_available

    if not shared_memory_available():
        raise RuntimeError(
            "shared memory unavailable on this platform; the shm "
            "ablation cannot run")

    sql = _ablation_sql(num_dimensions, wide_columns)
    workload = store_sales_workload(num_rows)
    report: dict = {
        "kind": "shm",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "num_dimensions": num_dimensions,
        "num_executors": num_executors,
        "num_workers": num_workers,
        "wide_columns": wide_columns,
        "repeats": repeats,
        "sql": sql,
    }
    times: dict[str, float] = {}
    skylines: dict[str, list[tuple]] = {}
    baseline_segments = set(leaked_segments())
    for label, shared in (("pickle", False), ("shm", True)):
        session = SkylineSession(config=SessionConfig(
            num_executors=num_executors, backend="process",
            num_workers=num_workers, columnar=True,
            shared_memory=shared))
        try:
            workload.register(session)
            prepared = session.prepare(session.sql(sql).plan)
            result = session.execute_prepared(prepared)  # warm-up
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                result = session.execute_prepared(prepared)
                best = min(best, time.perf_counter() - start)
            times[label] = best
            skylines[label] = sorted(result.as_tuples(), key=repr)
            if label == "shm":
                report["shm_stats"] = result.context.shm_stats
        finally:
            session.close()
    report["leaked_segments"] = sorted(
        set(leaked_segments()) - baseline_segments)
    report["bit_identical"] = skylines["pickle"] == skylines["shm"]
    report["pickle_s"] = times["pickle"]
    report["shm_s"] = times["shm"]
    report["speedup"] = (times["pickle"] / times["shm"]
                         if times["shm"] > 0 else float("inf"))
    report["skyline_rows"] = len(skylines["shm"])
    return report


def render_shm_report(report: dict) -> str:
    """The ablation as a fixed-width table (committed under results/)."""
    stats = report.get("shm_stats") or {}
    lines = [
        f"shared-memory transport ablation -- store_sales, "
        f"{report['num_rows']} rows x "
        f"{3 + report['wide_columns']} shipped columns, "
        f"{report['num_dimensions']} dimensions, process backend "
        f"({report['num_workers']} workers, prepared query, best of "
        f"{report['repeats']}; python {report['python']})",
        "",
        f"{'transport':<12}{'per run':>12}{'speedup':>10}"
        f"{'skyline rows':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    lines.append(f"{'pickle':<12}{report['pickle_s']:>11.3f}s"
                 f"{1.0:>9.2f}x{report['skyline_rows']:>14}")
    lines.append(f"{'shm':<12}{report['shm_s']:>11.3f}s"
                 f"{report['speedup']:>9.2f}x{report['skyline_rows']:>14}")
    lines.append("")
    lines.append(
        f"bit-identical: {report['bit_identical']}; "
        f"leaked segments after close: "
        f"{len(report['leaked_segments'])}")
    if stats:
        lines.append(
            f"segments created {stats['segments_created']}, handles "
            f"served {stats['handles_served']}, pickle fallbacks "
            f"{stats['pickle_fallbacks']}, "
            f"{stats['bytes_shared'] / 1e6:.1f} MB shared")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point mirroring ``repro.bench --shm``."""
    from .smoke import main as smoke_main
    return smoke_main(["--shm", *(argv or [])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
