"""Serving-layer benchmark: throughput scaling and cache effectiveness.

Three measurements over one in-process :class:`~repro.serve.SkylineServer`:

1. **Cache latency** -- one skyline query cold, then answered from the
   result cache (exact preference set) and via containment re-filtering
   (a subset preference set).  The CI gate asserts the cache-hit
   speedup; the answers are verified bit-identical against a fresh
   cache-less service first.
2. **Throughput scaling** -- N concurrent clients (1/4/16) issue a
   rotating mix of skyline queries over their own tenants through the
   admission scheduler; reported as queries per second.
3. **Cache ablation** -- the same mix with the result cache disabled,
   so the report shows what the dominance-aware cache buys end to end.

Run via ``python -m repro.bench --serving``.
"""

from __future__ import annotations

import asyncio
import random
import time

from ..engine.types import DOUBLE, INTEGER
from ..serve import CatalogService, SkylineServer

#: The preference-set rotation the clients draw from: the full set
#: first (populates the cache), then every two- and one-dimensional
#: subset (all answerable from the full entry by containment).
QUERY_MIX = (
    "SELECT * FROM pts SKYLINE OF a MIN, b MIN, c MIN",
    "SELECT * FROM pts SKYLINE OF a MIN, b MIN",
    "SELECT * FROM pts SKYLINE OF b MIN, c MIN",
    "SELECT * FROM pts SKYLINE OF a MIN, c MIN",
    "SELECT * FROM pts SKYLINE OF a MIN",
    "SELECT * FROM pts SKYLINE OF c MIN",
)

_COLUMNS = [("id", INTEGER, False), ("a", DOUBLE, False),
            ("b", DOUBLE, False), ("c", DOUBLE, False)]


def _make_rows(num_rows: int, seed: int = 7) -> list[tuple]:
    rng = random.Random(seed)
    return [(i, rng.uniform(0, 1000), rng.uniform(0, 1000),
             rng.uniform(0, 1000)) for i in range(num_rows)]


def _new_server(rows: list[tuple], *, max_inflight: int,
                use_cache: bool = True) -> SkylineServer:
    service = CatalogService()
    service.result_cache_enabled = use_cache
    server = SkylineServer(service, max_inflight=max_inflight)
    server.tenant("default").session.create_table("pts", _COLUMNS, rows)
    return server


def _check_bit_identical(rows: list[tuple]) -> None:
    """Cached subset answers must equal cold execution, row for row."""
    cached = _new_server(rows, max_inflight=2)
    cold = _new_server(rows, max_inflight=2, use_cache=False)

    async def run(server: SkylineServer, sql: str) -> list[tuple]:
        result = await server.execute("default", sql)
        return sorted(result.as_tuples())

    async def check() -> None:
        await run(cached, QUERY_MIX[0])  # populate the cache
        for sql in QUERY_MIX[1:]:
            hot = await run(cached, sql)
            ref = await run(cold, sql)
            if hot != ref:
                raise AssertionError(
                    f"cache answer differs from cold execution for "
                    f"{sql!r}: {len(hot)} vs {len(ref)} rows")

    asyncio.run(check())


def _measure_latencies(rows: list[tuple], repeats: int = 3) -> dict:
    server = _new_server(rows, max_inflight=2)

    async def timed(sql: str) -> "tuple[float, bool, int]":
        start = time.perf_counter()
        result = await server.execute("default", sql)
        return (time.perf_counter() - start, result.cache_hit,
                len(result.rows))

    async def run() -> dict:
        cold_s, hit, skyline_rows = await timed(QUERY_MIX[0])
        assert not hit
        exact = min([(await timed(QUERY_MIX[0]))[0]
                     for _ in range(repeats)])
        refilter = min([(await timed(QUERY_MIX[1]))[0]
                        for _ in range(repeats)])
        cached_s = max(exact, refilter)
        return {
            "cold_latency_s": cold_s,
            "exact_hit_latency_s": exact,
            "refilter_hit_latency_s": refilter,
            "cache_speedup": cold_s / cached_s if cached_s > 0
            else float("inf"),
            "skyline_rows": skyline_rows,
        }

    return asyncio.run(run())


def _measure_qps(rows: list[tuple], clients: int,
                 queries_per_client: int, *, use_cache: bool,
                 max_inflight: int) -> dict:
    server = _new_server(rows, max_inflight=max_inflight,
                         use_cache=use_cache)

    async def client(name: str, offset: int) -> None:
        for i in range(queries_per_client):
            sql = QUERY_MIX[(offset + i) % len(QUERY_MIX)]
            await server.execute(name, sql)

    async def run() -> float:
        start = time.perf_counter()
        await asyncio.gather(*(client(f"tenant-{c}", c)
                               for c in range(clients)))
        return time.perf_counter() - start

    wall_s = asyncio.run(run())
    total = clients * queries_per_client
    return {
        "clients": clients,
        "queries": total,
        "wall_s": wall_s,
        "qps": total / wall_s if wall_s > 0 else float("inf"),
        "use_cache": use_cache,
        "scheduler": server.scheduler.stats.as_dict(),
        "cache": server.service.result_cache.stats.as_dict(),
    }


def run_serving_bench(num_rows: int = 6000,
                      client_counts: "tuple[int, ...]" = (1, 4, 16),
                      queries_per_client: int = 12,
                      max_inflight: int = 4) -> dict:
    """The full serving benchmark; returns the ``BENCH_serving`` report."""
    rows = _make_rows(num_rows)
    _check_bit_identical(rows)
    report: dict = {"num_rows": num_rows,
                    "queries_per_client": queries_per_client,
                    "max_inflight": max_inflight,
                    "bit_identical": True}
    report.update(_measure_latencies(rows))
    report["qps"] = [
        _measure_qps(rows, clients, queries_per_client,
                     use_cache=True, max_inflight=max_inflight)
        for clients in client_counts]
    report["qps_no_cache"] = [
        _measure_qps(rows, clients, queries_per_client,
                     use_cache=False, max_inflight=max_inflight)
        for clients in client_counts]
    return report


def render_serving_report(report: dict) -> str:
    lines = [
        "serving benchmark "
        f"({report['num_rows']} rows, skyline "
        f"{report['skyline_rows']} rows, max_inflight "
        f"{report['max_inflight']})",
        f"  cold latency        {report['cold_latency_s'] * 1e3:8.2f} ms",
        f"  exact cache hit     "
        f"{report['exact_hit_latency_s'] * 1e3:8.2f} ms",
        f"  refilter cache hit  "
        f"{report['refilter_hit_latency_s'] * 1e3:8.2f} ms",
        f"  cache-hit speedup   {report['cache_speedup']:8.1f} x",
        "",
        "  clients   qps(cached)   qps(no cache)   gain",
    ]
    for cached, baseline in zip(report["qps"], report["qps_no_cache"]):
        gain = cached["qps"] / baseline["qps"] if baseline["qps"] > 0 \
            else float("inf")
        lines.append(f"  {cached['clients']:>7}   "
                     f"{cached['qps']:>11.1f}   "
                     f"{baseline['qps']:>13.1f}   {gain:>5.1f}x")
    return "\n".join(lines)
