"""Fast benchmark smoke runs for CI.

Two entry points, both reachable via ``python -m repro.bench``:

* :func:`run_smoke` -- a tiny airbnb + store_sales workload executed on
  every backend; emits ``BENCH_smoke.json`` with real and simulated
  times so CI archives a machine-readable health snapshot per commit.
* :func:`measure_speedup` -- the local-skyline phase of the bundled
  store_sales workload executed on the local vs the process backend,
  reporting the real wall-clock speedup.  On a multi-core runner the
  process backend must beat sequential execution; single-core machines
  report a speedup near (or below) 1.0, which is why the threshold is
  opt-in.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Sequence

from ..core.algorithms import Algorithm, local_bnl_task, make_dimensions
from ..core.bnl import bnl_skyline
from ..engine.backends import (LocalBackend, ProcessBackend, StageTask,
                               default_num_workers)
from ..engine.rdd import RDD
from ..datasets import airbnb_workload, store_sales_workload
from .harness import backends_sweep

SMOKE_BACKENDS = ("local", "thread", "process")


def _result_record(result) -> dict:
    return {
        "algorithm": result.algorithm.value,
        "backend": result.backend,
        "num_dimensions": result.num_dimensions,
        "num_tuples": result.num_tuples,
        "num_executors": result.num_executors,
        "result_rows": result.result_rows,
        "dominance_comparisons": result.dominance_comparisons,
        "simulated_time_s": result.simulated_time_s,
        "real_time_s": result.real_time_s,
        "wall_time_s": result.wall_time_s,
        "time_to_first_batch_s": result.time_to_first_batch_s,
        "timed_out": result.timed_out,
    }


def run_smoke(num_rows: int = 400, num_executors: int = 4,
              num_dimensions: int = 3,
              backends: Sequence[str] = SMOKE_BACKENDS,
              num_workers: int | None = None) -> dict:
    """Tiny airbnb + store_sales workload on every backend.

    Returns a JSON-serialisable report; every backend must produce the
    same skyline size (a cheap cross-backend consistency check that runs
    on every CI commit, complementing the full property-test suite).
    """
    workloads = [airbnb_workload(num_rows), store_sales_workload(num_rows)]
    report: dict = {
        "kind": "smoke",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "num_executors": num_executors,
        "num_dimensions": num_dimensions,
        "runs": [],
    }
    for workload in workloads:
        results = backends_sweep(
            workload, Algorithm.DISTRIBUTED_COMPLETE, num_dimensions,
            num_executors, backends=backends, num_workers=num_workers)
        sizes = {r.result_rows for r in results.values()}
        if len(sizes) != 1:
            raise AssertionError(
                f"backends disagree on {workload.table_name}: "
                f"{ {b: r.result_rows for b, r in results.items()} }")
        report["runs"].extend(_result_record(r) for r in results.values())
    return report


def measure_speedup(num_rows: int = 50_000, num_partitions: int | None = None,
                    num_dimensions: int = 6,
                    num_workers: int | None = None) -> dict:
    """Local-skyline phase: sequential vs process-pool wall clock.

    Uses the bundled store_sales workload, split evenly like the engine's
    scan would, and runs the exact per-partition kernel
    (:func:`~repro.core.algorithms.local_bnl_task`) under the
    :class:`LocalBackend` and the :class:`ProcessBackend`.  The global
    phase is excluded on purpose: it is the non-parallelizable tail that
    bounds scaling (Section 6.4), while this measurement validates that
    the parallelizable phase really parallelizes.
    """
    num_workers = num_workers or default_num_workers()
    num_partitions = num_partitions or num_workers
    workload = store_sales_workload(num_rows)
    col_index = {c[0]: i for i, c in enumerate(workload.columns)}
    dims = make_dimensions([
        (col_index[name], kind)
        for name, kind in workload.dimensions(num_dimensions)])
    partitions = RDD.from_rows(workload.rows, num_partitions).partitions
    tasks = [StageTask(partition=i, rows_in=len(p),
                       func=local_bnl_task, args=(p, dims, False))
             for i, p in enumerate(partitions)]

    def timed(backend) -> tuple[float, list]:
        with backend:
            if isinstance(backend, ProcessBackend):
                # Full warm-up pass: ProcessPoolExecutor spawns workers
                # on demand, so anything less leaves forks inside the
                # timed run.  Sequential backends have nothing to warm.
                backend.run_stage(tasks)
            start = time.perf_counter()
            outcomes = backend.run_stage(tasks)
            elapsed = time.perf_counter() - start
        return elapsed, [o.result[0] for o in outcomes]

    local_s, local_rows = timed(LocalBackend())
    process_s, process_rows = timed(ProcessBackend(num_workers))
    if local_rows != process_rows:
        raise AssertionError("process backend produced different skylines")
    # Sanity anchor: the union of local skylines must reduce to the same
    # global skyline regardless of how the phase executed.
    union = [row for rows in local_rows for row in rows]
    global_skyline = bnl_skyline(union, dims)
    return {
        "kind": "speedup",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "num_partitions": num_partitions,
        "num_workers": num_workers,
        "num_dimensions": num_dimensions,
        "local_s": local_s,
        "process_s": process_s,
        "speedup": local_s / process_s if process_s > 0 else float("inf"),
        "global_skyline_rows": len(global_skyline),
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro.bench --smoke`` / ``--speedup``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark smoke runs (full figure suite: pytest "
                    "benchmarks/)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the tiny airbnb+store_sales workload on "
                             "every backend and emit BENCH_smoke.json")
    parser.add_argument("--speedup", action="store_true",
                        help="measure local-skyline-phase speedup of the "
                             "process backend over sequential execution")
    parser.add_argument("--adaptive", action="store_true",
                        help="run the mixed workload under the adaptive "
                             "planner and every fixed algorithm x "
                             "partitioning combination")
    parser.add_argument("--vectorized", action="store_true",
                        help="measure the columnar NumPy kernels against "
                             "the scalar reference kernels (local phase "
                             "and full queries) and emit "
                             "BENCH_vectorized.json")
    parser.add_argument("--min-vec-speedup", type=float, default=None,
                        help="fail unless the best local-phase vectorized "
                             "speedup reaches this factor")
    parser.add_argument("--columnar", action="store_true",
                        help="measure the batch data plane against the "
                             "row plane on full filter+projection+skyline "
                             "queries and emit BENCH_columnar.json")
    parser.add_argument("--min-col-speedup", type=float, default=None,
                        help="fail unless the best end-to-end columnar "
                             "speedup reaches this factor")
    parser.add_argument("--serving", action="store_true",
                        help="benchmark the multi-tenant serving layer "
                             "(qps at 1/4/16 clients, result-cache "
                             "latency) and emit BENCH_serving.json")
    parser.add_argument("--min-cache-speedup", type=float, default=None,
                        help="fail unless the result-cache hit speedup "
                             "reaches this factor")
    parser.add_argument("--global-merge", action="store_true",
                        dest="global_merge",
                        help="measure the hierarchical tournament-tree "
                             "global merge against the flat single-task "
                             "merge on store_sales and emit "
                             "BENCH_global_merge.json")
    parser.add_argument("--min-merge-speedup", type=float, default=None,
                        help="fail unless the hierarchical global-phase "
                             "speedup reaches this factor")
    parser.add_argument("--chaos", action="store_true",
                        help="run the query mix clean and under a seeded "
                             "fault plan (crashes/errors/delays), assert "
                             "bit-identical answers, and emit "
                             "BENCH_chaos.json")
    parser.add_argument("--chaos-crash-p", type=float, default=0.10,
                        help="injected per-task crash probability for "
                             "--chaos")
    parser.add_argument("--max-chaos-overhead", type=float, default=None,
                        help="fail if the chaos wall-clock overhead "
                             "exceeds this factor")
    parser.add_argument("--shm", action="store_true",
                        help="measure the zero-copy shared-memory "
                             "transport against pickled batches on a "
                             "prepared process-backend query and emit "
                             "BENCH_shm.json")
    parser.add_argument("--min-shm-speedup", type=float, default=None,
                        help="fail unless the shared-memory transport "
                             "speedup reaches this factor")
    parser.add_argument("--pipeline", action="store_true",
                        help="measure the pipelined executor against the "
                             "staged one (operator overlap + "
                             "time-to-first-batch) plus an out-of-core "
                             "leg under a tiny operator budget, and "
                             "emit BENCH_pipeline.json")
    parser.add_argument("--min-pipeline-speedup", type=float, default=None,
                        help="overlap gate: pass if the end-to-end "
                             "pipelined speedup reaches this factor (OR "
                             "the --min-ttfb-speedup gate passes)")
    parser.add_argument("--min-ttfb-speedup", type=float, default=None,
                        help="overlap gate: pass if the time-to-first-"
                             "batch speedup reaches this factor (OR the "
                             "--min-pipeline-speedup gate passes)")
    parser.add_argument("--max-pipeline-rss-mb", type=float, default=None,
                        help="fail the out-of-core leg if process peak "
                             "RSS exceeds this many MB")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for the adaptive mix")
    parser.add_argument("--rows", type=int, default=None,
                        help="workload size override")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for parallel backends")
    parser.add_argument("--out", default="BENCH_smoke.json",
                        help="output path for the smoke report")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the measured speedup reaches "
                             "this factor (use on multi-core CI runners)")
    args = parser.parse_args(argv)
    if not (args.smoke or args.speedup or args.adaptive
            or args.vectorized or args.columnar or args.serving
            or args.global_merge or args.chaos or args.shm
            or args.pipeline):
        parser.error("nothing to do: pass --smoke, --speedup, "
                     "--adaptive, --vectorized, --columnar, --serving, "
                     "--global-merge, --chaos, --shm and/or --pipeline")

    status = 0
    if args.smoke:
        report = run_smoke(num_rows=args.rows or 400,
                           num_workers=args.workers)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"smoke report written to {args.out}")
        for run in report["runs"]:
            print(f"  {run['algorithm']} on {run['backend']:>7}: "
                  f"real {run['real_time_s']:.4f}s  "
                  f"simulated {run['simulated_time_s']:.4f}s  "
                  f"first batch {run['time_to_first_batch_s']:.4f}s  "
                  f"rows {run['result_rows']}")
    if args.speedup:
        result = measure_speedup(num_rows=args.rows or 50_000,
                                 num_workers=args.workers)
        print(f"local-skyline phase on {result['num_rows']} rows, "
              f"{result['num_partitions']} partitions, "
              f"{result['num_workers']} workers "
              f"({result['cpu_count']} cores): "
              f"local {result['local_s']:.3f}s, "
              f"process {result['process_s']:.3f}s, "
              f"speedup {result['speedup']:.2f}x")
        if args.min_speedup is not None and \
                result["speedup"] < args.min_speedup:
            print(f"FAIL: speedup below required {args.min_speedup:.2f}x",
                  file=sys.stderr)
            status = 1
    if args.adaptive:
        from .adaptive import render_report, run_adaptive_bench
        report = run_adaptive_bench(scale=args.scale)
        print(render_report(report))
        print(f"best fixed: {report['best_fixed']} "
              f"({report['fixed_totals'][report['best_fixed']]:.3f}s), "
              f"adaptive: {report['adaptive_total']:.3f}s")
    if args.vectorized:
        from .vectorized import (measure_vectorized_speedup,
                                 render_vectorized_report)
        report = measure_vectorized_speedup(num_rows=args.rows or 40_000)
        with open("BENCH_vectorized.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_vectorized_report(report))
        if args.min_vec_speedup is not None and \
                report["best_local_speedup"] < args.min_vec_speedup:
            print(f"FAIL: best local-phase speedup below required "
                  f"{args.min_vec_speedup:.2f}x", file=sys.stderr)
            status = 1
    if args.columnar:
        from .columnar import (measure_columnar_speedup,
                               render_columnar_report)
        report = measure_columnar_speedup(num_rows=args.rows or 60_000)
        with open("BENCH_columnar.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_columnar_report(report))
        if args.min_col_speedup is not None and \
                report["best_speedup"] < args.min_col_speedup:
            print(f"FAIL: best end-to-end columnar speedup below "
                  f"required {args.min_col_speedup:.2f}x",
                  file=sys.stderr)
            status = 1
    if args.serving:
        from .serving import render_serving_report, run_serving_bench
        report = run_serving_bench(num_rows=args.rows or 6000)
        with open("BENCH_serving.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_serving_report(report))
        if args.min_cache_speedup is not None and \
                report["cache_speedup"] < args.min_cache_speedup:
            print(f"FAIL: cache-hit speedup below required "
                  f"{args.min_cache_speedup:.2f}x", file=sys.stderr)
            status = 1
    if args.global_merge:
        from .global_merge import measure_merge_speedup, render_merge_report
        report = measure_merge_speedup(num_rows=args.rows or 180_000)
        with open("BENCH_global_merge.json", "w",
                  encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_merge_report(report))
        if not report["bit_identical"]:
            print("FAIL: hierarchical merge produced different answers "
                  "than the flat merge", file=sys.stderr)
            status = 1
        if args.min_merge_speedup is not None and \
                report["speedup"] < args.min_merge_speedup:
            print(f"FAIL: global-phase speedup below required "
                  f"{args.min_merge_speedup:.2f}x", file=sys.stderr)
            status = 1
    if args.chaos:
        from .chaos import render_chaos_report, run_chaos_bench
        report = run_chaos_bench(num_rows=args.rows or 12_000,
                                 crash_p=args.chaos_crash_p)
        with open("BENCH_chaos.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_chaos_report(report))
        if not report["bit_identical"]:
            print("FAIL: chaos run produced different answers than the "
                  "clean run", file=sys.stderr)
            status = 1
        if not report["faults_injected"]:
            print("FAIL: the fault plan injected nothing (gate would be "
                  "vacuous)", file=sys.stderr)
            status = 1
        if args.max_chaos_overhead is not None and \
                report["overhead"] > args.max_chaos_overhead:
            print(f"FAIL: chaos overhead above allowed "
                  f"{args.max_chaos_overhead:.2f}x", file=sys.stderr)
            status = 1
    if args.shm:
        from .shm import measure_shm_speedup, render_shm_report
        report = measure_shm_speedup(
            num_rows=args.rows or 60_000,
            num_workers=args.workers or 2)
        with open("BENCH_shm.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_shm_report(report))
        if not report["bit_identical"]:
            print("FAIL: shared-memory transport produced different "
                  "answers than the pickled transport", file=sys.stderr)
            status = 1
        if report["leaked_segments"]:
            print(f"FAIL: {len(report['leaked_segments'])} /dev/shm "
                  f"segments leaked after session close",
                  file=sys.stderr)
            status = 1
        if args.min_shm_speedup is not None and \
                report["speedup"] < args.min_shm_speedup:
            print(f"FAIL: shared-memory transport speedup below "
                  f"required {args.min_shm_speedup:.2f}x",
                  file=sys.stderr)
            status = 1
    if args.pipeline:
        from .pipeline import measure_pipeline, render_pipeline_report
        report = measure_pipeline(num_rows=args.rows or 40_000,
                                  num_workers=args.workers or 2)
        with open("BENCH_pipeline.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(render_pipeline_report(report))
        overlap = report["overlap"]
        ooc = report["out_of_core"]
        if not overlap["bit_identical"] or not ooc["bit_identical"]:
            print("FAIL: pipelined execution produced different answers "
                  "than staged execution", file=sys.stderr)
            status = 1
        if ooc["ratio"] < 4.0:
            print(f"FAIL: out-of-core input only {ooc['ratio']:.1f}x "
                  f"the operator budget (need >= 4x)", file=sys.stderr)
            status = 1
        if not ooc["spilled_bytes"]:
            print("FAIL: the out-of-core leg never spilled (gate would "
                  "be vacuous)", file=sys.stderr)
            status = 1
        if args.min_pipeline_speedup is not None or \
                args.min_ttfb_speedup is not None:
            e2e_ok = (args.min_pipeline_speedup is not None
                      and overlap["speedup"] >= args.min_pipeline_speedup)
            ttfb_ok = (args.min_ttfb_speedup is not None
                       and overlap["ttfb_speedup"] >= args.min_ttfb_speedup)
            if not (e2e_ok or ttfb_ok):
                print(f"FAIL: overlap gate missed -- end-to-end "
                      f"{overlap['speedup']:.2f}x, time-to-first-batch "
                      f"{overlap['ttfb_speedup']:.2f}x", file=sys.stderr)
                status = 1
        if args.max_pipeline_rss_mb is not None and \
                ooc["rss_mb"] > args.max_pipeline_rss_mb:
            print(f"FAIL: out-of-core peak RSS {ooc['rss_mb']:.0f} MB "
                  f"above allowed {args.max_pipeline_rss_mb:.0f} MB",
                  file=sys.stderr)
            status = 1
    return status
